//! Canonical counter and span names used across the pipeline.
//!
//! Keeping them in one module prevents drift between the code that
//! increments a counter and the code (tests, exporters, bench tables)
//! that reads it back by name.

/// Units compiled (recompiled or first-compiled) during a build.
pub const UNITS_COMPILED: &str = "irm.units_compiled";
/// Units reused untouched (bin valid, no import pid changed).
pub const UNITS_REUSED: &str = "irm.units_reused";
/// Cutoff hits: a dependency recompiled but its export pid was unchanged,
/// so the dependent was *not* recompiled.
pub const CUTOFF_HITS: &str = "irm.cutoff_hits";

/// Dependency-analysis cache hits (source pid unchanged).
pub const DEPS_CACHE_HITS: &str = "irm.deps_cache_hits";
/// Dependency-analysis cache misses (new or changed source).
pub const DEPS_CACHE_MISSES: &str = "irm.deps_cache_misses";

/// Rehydration environment-cache hits (same export pid already forced).
pub const ENV_CACHE_HITS: &str = "irm.env_cache_hits";
/// Rehydration environment-cache misses.
pub const ENV_CACHE_MISSES: &str = "irm.env_cache_misses";

/// Bytes written by `save_bins`.
pub const BIN_BYTES_WRITTEN: &str = "irm.bin_bytes_written";
/// Bytes read by `load_bins`.
pub const BIN_BYTES_READ: &str = "irm.bin_bytes_read";

/// Artifact-store hits: a recompile verdict satisfied by a verified
/// store object instead of a compile.
pub const STORE_HITS: &str = "store.hit";
/// Artifact-store misses (no object, unreadable, or failed verification).
pub const STORE_MISSES: &str = "store.miss";
/// Objects evicted by store garbage collection.
pub const STORE_EVICTIONS: &str = "store.evict";
/// Payload bytes served by verified store reads.
pub const STORE_BYTES_READ: &str = "store.bytes_read";
/// Payload bytes published into the store.
pub const STORE_BYTES_WRITTEN: &str = "store.bytes_written";
/// Objects that failed digest verification and were quarantined.
pub const STORE_QUARANTINED: &str = "store.quarantined";
/// Event: one per quarantined object, with its `key`.
pub const STORE_QUARANTINE_EVENT: &str = "store.quarantine";
/// Event: a store object matched the key but failed semantic validation
/// against the requesting unit (e.g. a different unit name); treated as
/// a miss without quarantining.
pub const STORE_REJECT_EVENT: &str = "store.reject";

/// Units whose compile (or rehydration) failed this build.
pub const UNITS_FAILED: &str = "irm.units_failed";
/// Units skipped because a transitive import failed (keep-going mode).
pub const UNITS_SKIPPED: &str = "irm.units_skipped";
/// Event: one per unit whose compile panicked; fields `unit`, `payload`.
/// The panic is caught per unit and surfaced as an internal error —
/// it fails the unit (and its dependents), never the worker pool.
pub const UNIT_PANIC_EVENT: &str = "irm.unit_panic";
/// Corrupt or unreadable bin files skipped by `load_bins` (the unit
/// recompiles instead of poisoning the whole cache load).
pub const BIN_CORRUPT: &str = "irm.bin_corrupt";

/// The store flipped into degraded (no-store) mode after repeated IO or
/// lock failures; builds continue correctly without it.
pub const STORE_DEGRADED: &str = "store.degraded";
/// Transient store IO/lock failures that were retried.
pub const STORE_RETRIES: &str = "store.retry";
/// Stale (crashed-owner) lock files broken by a later acquirer.
pub const STORE_LOCK_BROKEN: &str = "store.lock_broken";

/// Nodes visited while dehydrating (pickling) export environments.
pub const PICKLE_NODES: &str = "pickle.nodes";
/// Import stubs emitted while dehydrating.
pub const PICKLE_STUBS: &str = "pickle.stubs";
/// Back-references emitted while dehydrating (structure sharing).
pub const PICKLE_BACKREFS: &str = "pickle.backrefs";
/// Nodes rebuilt while rehydrating (unpickling).
pub const REHYDRATE_NODES: &str = "pickle.rehydrate_nodes";
/// Import stubs resolved while rehydrating.
pub const REHYDRATE_STUBS: &str = "pickle.rehydrate_stubs";
/// Owned heap allocations made for string or byte payloads while
/// rehydrating. The zero-copy reader interns symbols straight from the
/// pickle buffer, so a healthy warm build keeps this at zero; any
/// nonzero value means a copy crept back onto the hot path.
pub const REHYDRATE_ALLOCS: &str = "rehydrate.allocs";
/// Pickle bytes decoded by rehydration (borrowed, not copied).
pub const PICKLE_BYTES: &str = "pickle.bytes";

/// Stamp-cache hits: `(path, mtime_ns, size)` matched, so the source was
/// neither read nor re-digested (timestamps are a hint; the recorded
/// digest is the truth and `--paranoid` re-verifies it).
pub const STAMP_HITS: &str = "stamp.hits";
/// Stamp-cache saves skipped because no entry changed since load: a
/// fully warm build rewrites nothing, no matter how many entries the
/// cache holds.
pub const STAMP_SAVES_SKIPPED: &str = "stamp.saves_skipped";
/// Stamp-cache misses: a new, touched, or resized file that had to be
/// read and digested (also counted when running `--paranoid`).
pub const STAMP_MISSES: &str = "stamp.misses";
/// Source files actually read from disk (forced lazy texts). A warm
/// no-op build keeps this at zero.
pub const SOURCE_READS: &str = "source.reads";

/// Units whose bin metadata was served from the `bins.pack` footer index
/// alone — no pickle body was read or parsed for the rebuild decision.
pub const BIN_INDEX_ONLY: &str = "bin.index_only";
/// Pack bodies lazily sliced, digest-verified, and parsed on first use.
pub const BIN_LAZY_BODIES: &str = "bin.lazy_bodies";
/// Pack bodies that failed digest verification when first forced; the
/// unit is quarantined (dropped from the cache) and rebuilt alone.
pub const BIN_BODY_QUARANTINED: &str = "bin.body_quarantined";

/// Critical-path length of the analysis DAG (longest import chain, in
/// units) — with `build.parallelism`, the ceiling on wavefront speedup.
pub const CRITICAL_PATH: &str = "irm.critical_path";

/// Units seeding the dirty set: stamp-missed, changed, or bin-less units
/// whose rebuild decision (ignoring cascades) already says "recompile".
/// A no-op build keeps this at zero.
pub const SCHED_DIRTY_SEED: &str = "sched.dirty_seed";
/// Units in the scheduled cone: the dirty seed plus its transitive
/// dependents.  Everything outside the cone is reused without being
/// dispatched, so scheduler work is O(cone), not O(project).
pub const SCHED_DIRTY_CONE: &str = "sched.dirty_cone";

/// Import DAGs rehydrated from the `deps.pack` sidecar (no per-unit
/// import re-resolution, no full topological re-sort).
pub const DEPS_PACK_HITS: &str = "deps.pack_hits";
/// Import DAGs re-derived from per-unit analyses because the sidecar
/// was absent, stale, or corrupt (the safe fallback, never an error).
pub const DEPS_PACK_MISSES: &str = "deps.pack_misses";

/// Requests served by the resident build daemon (handshake excluded):
/// build, stats, status, stop.
pub const DAEMON_REQUESTS: &str = "daemon.requests";
/// Filesystem change events observed by the daemon's watcher (one per
/// added/modified/removed source file, post-debounce).
pub const DAEMON_WATCH_EVENTS: &str = "daemon.watch_events";
/// Project deltas the watcher fed into the resident session (units whose
/// in-memory stat was replaced or removed without a directory rescan).
pub const DAEMON_INVALIDATIONS: &str = "daemon.invalidations";

/// Build records appended to the persistent ledger (`builds.jsonl`).
pub const LEDGER_APPENDS: &str = "ledger.appends";
/// Ledger rotations (compactions to the newest records).
pub const LEDGER_ROTATIONS: &str = "ledger.rotations";

/// Event: one per parallel build, with `critical_path`, `units` and
/// `jobs` fields — total units over critical-path length is the maximum
/// parallel speedup the DAG admits.
pub const BUILD_PARALLELISM: &str = "build.parallelism";

/// Span: one whole `Irm::build` call.
pub const SPAN_BUILD: &str = "irm.build";
/// Span: loading the pack archive's index (`Irm::load_bins`).
pub const SPAN_LOAD_BINS: &str = "irm.load_bins";
/// Span: loading the stamp cache (`Irm::load_stamps`).
pub const SPAN_LOAD_STAMPS: &str = "irm.load_stamps";
/// Span: scanning a source directory (`Project::from_dir`).
pub const SPAN_SCAN: &str = "irm.scan";
/// Span: the analyze-everything phase (stamp ladder over all files).
pub const SPAN_ANALYZE_ALL: &str = "irm.analyze_all";
/// Span: dependency-graph construction (sidecar rehydrate or re-derive:
/// export map, import resolution, topological order).
pub const SPAN_GRAPH: &str = "irm.graph";
/// Span: dirty-set computation (per-unit rebuild decisions + cone).
pub const SPAN_DIRTY: &str = "irm.dirty";
/// Span: one wavefront worker's lifetime within a parallel build.
pub const SPAN_WORKER: &str = "irm.worker";
/// Span: one unit's decide/compile task on a wavefront worker.
pub const SPAN_TASK: &str = "irm.task";
/// Span: dependency analysis of one unit.
pub const SPAN_ANALYZE: &str = "irm.analyze";
/// Span: rehydrating one unit's exports.
pub const SPAN_REHYDRATE: &str = "irm.rehydrate";
/// Span: parse phase of one unit's compile.
pub const SPAN_PARSE: &str = "compile.parse";
/// Span: elaborate phase of one unit's compile.
pub const SPAN_ELABORATE: &str = "compile.elaborate";
/// Span: interface-hash phase of one unit's compile.
pub const SPAN_HASH: &str = "compile.hash";
/// Span: dehydrate phase of one unit's compile.
pub const SPAN_DEHYDRATE: &str = "compile.dehydrate";
/// Span: one artifact-store probe (read + verify).
pub const SPAN_STORE_GET: &str = "store.get";
/// Span: one artifact-store publication (stage + fsync + rename).
pub const SPAN_STORE_PUT: &str = "store.put";
/// Span: one store garbage-collection sweep.
pub const SPAN_STORE_GC: &str = "store.gc";
