//! `smlsc-trace`: structured spans, counters, histograms and
//! rebuild-decision records for the smlsc pipeline.
//!
//! The paper's claim — cutoff recompilation avoids cascading rebuilds
//! because export pids are intrinsic interface hashes — is only auditable
//! if the build can *explain itself*: which phase cost what, why each
//! unit was (or was not) recompiled, and how the caches behaved.  This
//! crate is that substrate:
//!
//! * **Spans and events** ([`span`], [`event`]) with key/value fields and
//!   a thread-local span stack.  Instrumentation is always compiled in;
//!   with no sink installed (the default) a span is a single
//!   thread-local boolean read — no clock reads, no allocation.
//! * **Pluggable sinks** ([`Sink`]): the null sink (default),
//!   [`Collector`] (aggregates spans into per-name log-scale duration
//!   [`Histogram`]s plus counters, and replays them as Chrome
//!   trace-event JSON or a JSON stats report), and [`StderrSink`]
//!   (pretty-printer for interactive debugging).
//! * **Counters and durations** ([`counter`], [`duration`]) for pipeline
//!   metrics: units compiled, cutoff hits, dependency-cache and
//!   rehydration-cache hits/misses, bin bytes, pickle node/stub/backref
//!   counts (canonical names in [`names`]).
//! * **[`RebuildDecision`]**: the per-unit verdict of a recompilation
//!   strategy (`SourceChanged`, `ImportPidChanged`, `CutOff`, …), the
//!   record behind `smlsc build --explain`'s causal chains.
//!
//! Sinks are installed *per thread* ([`install`]/[`uninstall`]), so each
//! thread owns its telemetry.  Parallel builds propagate the installed
//! sink onto their workers with [`fork_current`]: a sink that supports
//! multi-threaded use (like [`Collector`], whose state is shared behind
//! an `Arc<Mutex>`) hands out a `Send`-able handle feeding the same
//! destination, and every worker's spans land in one place, tagged with
//! a per-thread `tid`.
//!
//! # Examples
//!
//! ```
//! use smlsc_trace as trace;
//!
//! let collector = trace::Collector::new();
//! collector.install();
//! {
//!     let _build = trace::span("build").field("units", 2);
//!     trace::counter(trace::names::UNITS_COMPILED, 2);
//!     trace::duration("phase.parse", std::time::Duration::from_micros(250));
//! }
//! trace::uninstall();
//!
//! assert_eq!(collector.counter(trace::names::UNITS_COMPILED), 2);
//! assert_eq!(collector.histogram("build").unwrap().count(), 1);
//! let chrome = collector.chrome_trace_json();
//! assert!(chrome.starts_with('['));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod chrome;
pub mod decision;
pub mod histogram;
pub(crate) mod json;
pub mod names;
pub mod sink;

use std::cell::{Cell, RefCell};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

pub use decision::RebuildDecision;
pub use histogram::Histogram;
pub use sink::{Collector, EventRecord, NullSink, Sink, SpanRecord, StderrSink};

thread_local! {
    static ENABLED: Cell<bool> = const { Cell::new(false) };
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
    static THREAD_TAG: Cell<u64> = const { Cell::new(0) };
}

struct ThreadState {
    sink: Box<dyn Sink>,
    depth: usize,
}

/// A small dense id for the current thread (1, 2, 3, … in first-use
/// order), used as the `tid` of emitted records.
fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| {
        let mut tag = t.get();
        if tag == 0 {
            static NEXT: AtomicU64 = AtomicU64::new(1);
            tag = NEXT.fetch_add(1, Ordering::Relaxed);
            t.set(tag);
        }
        tag
    })
}

/// Installs `sink` as the current thread's sink, enabling tracing on
/// this thread.  Replaces any previously installed sink.
///
/// Sinks must not themselves call back into this crate's recording API
/// (spans emitted from inside a sink are dropped).
pub fn install(sink: Box<dyn Sink>) {
    STATE.with(|s| *s.borrow_mut() = Some(ThreadState { sink, depth: 0 }));
    ENABLED.with(|e| e.set(true));
}

/// Removes the current thread's sink, restoring the zero-cost null
/// behaviour.
pub fn uninstall() {
    ENABLED.with(|e| e.set(false));
    STATE.with(|s| *s.borrow_mut() = None);
}

/// True when a sink is installed on this thread.
pub fn enabled() -> bool {
    ENABLED.with(Cell::get)
}

/// A `Send`-able handle to the current thread's sink, for [`install`]ing
/// on a worker thread so its records reach the same destination.  `None`
/// when no sink is installed or the sink does not support multi-threaded
/// use (see [`Sink::fork`]).
pub fn fork_current() -> Option<Box<dyn Sink + Send>> {
    if !enabled() {
        return None;
    }
    STATE.with(|s| s.borrow().as_ref().and_then(|st| st.sink.fork()))
}

/// Runs `f` with `sink` installed, uninstalling afterwards (also on
/// panic-free early return paths; panics propagate with the sink left
/// installed).
pub fn with_sink<R>(sink: Box<dyn Sink>, f: impl FnOnce() -> R) -> R {
    install(sink);
    let r = f();
    uninstall();
    r
}

/// An in-flight span; records itself to the sink when dropped.
///
/// Obtained from [`span`].  With no sink installed this is inert.
#[must_use = "a span measures the scope it is bound to; bind it to a named local"]
pub struct Span {
    active: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    start: Instant,
    fields: Vec<(&'static str, String)>,
}

/// Opens a span.  Bind the result to a local (`let _span = …`); the span
/// ends — and is recorded — when the guard drops.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { active: None };
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.depth += 1;
        }
    });
    Span {
        active: Some(SpanInner {
            name,
            start: Instant::now(),
            fields: Vec::new(),
        }),
    }
}

impl Span {
    /// Attaches a key/value field (rendered via `Display`).
    pub fn field(mut self, key: &'static str, value: impl fmt::Display) -> Self {
        if let Some(inner) = &mut self.active {
            inner.fields.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(inner) = self.active.take() else {
            return;
        };
        let dur = inner.start.elapsed();
        let tid = thread_tag();
        STATE.with(|s| {
            if let Some(st) = s.borrow_mut().as_mut() {
                st.depth = st.depth.saturating_sub(1);
                let record = SpanRecord {
                    name: inner.name,
                    start: inner.start,
                    dur,
                    depth: st.depth,
                    tid,
                    fields: inner.fields,
                };
                st.sink.span(&record);
            }
        });
    }
}

/// An in-flight event; records itself when dropped.  Obtained from
/// [`event`].
pub struct Event {
    active: Option<EventInner>,
}

struct EventInner {
    name: &'static str,
    fields: Vec<(&'static str, String)>,
}

/// Emits an instantaneous event (recorded when the returned handle
/// drops, so fields can be chained on).
pub fn event(name: &'static str) -> Event {
    if !enabled() {
        return Event { active: None };
    }
    Event {
        active: Some(EventInner {
            name,
            fields: Vec::new(),
        }),
    }
}

impl Event {
    /// Attaches a key/value field (rendered via `Display`).
    pub fn field(mut self, key: &'static str, value: impl fmt::Display) -> Self {
        if let Some(inner) = &mut self.active {
            inner.fields.push((key, value.to_string()));
        }
        self
    }
}

impl Drop for Event {
    fn drop(&mut self) {
        let Some(inner) = self.active.take() else {
            return;
        };
        let tid = thread_tag();
        STATE.with(|s| {
            if let Some(st) = s.borrow_mut().as_mut() {
                let record = EventRecord {
                    name: inner.name,
                    at: Instant::now(),
                    depth: st.depth,
                    tid,
                    fields: inner.fields,
                };
                st.sink.event(&record);
            }
        });
    }
}

/// Adds `delta` to the named counter.
pub fn counter(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.sink.counter(name, delta);
        }
    });
}

/// Records a duration sample into the named histogram (for costs
/// measured externally; spans feed their own name's histogram
/// automatically).
pub fn duration(name: &'static str, d: Duration) {
    if !enabled() {
        return;
    }
    STATE.with(|s| {
        if let Some(st) = s.borrow_mut().as_mut() {
            st.sink.duration(name, d);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_inert() {
        assert!(!enabled());
        let s = span("nothing").field("k", 1);
        assert!(s.active.is_none());
        drop(s);
        counter("c", 1);
        duration("d", Duration::from_micros(5));
    }

    #[test]
    fn collector_sees_spans_counters_durations() {
        let c = Collector::new();
        with_sink(Box::new(c.clone()), || {
            {
                let _outer = span("outer").field("unit", "a");
                let _inner = span("inner");
            }
            event("decided").field("verdict", "reused");
            counter("hits", 2);
            counter("hits", 3);
            duration("phase", Duration::from_micros(123));
        });
        assert!(!enabled());
        assert_eq!(c.counter("hits"), 5);
        assert_eq!(c.histogram("outer").unwrap().count(), 1);
        assert_eq!(c.histogram("inner").unwrap().count(), 1);
        assert_eq!(c.histogram("phase").unwrap().count(), 1);
        let spans = c.spans();
        assert_eq!(spans.len(), 2);
        // Inner closed first, at depth 1; outer at depth 0.
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[1].fields, vec![("unit".to_string(), "a".to_string())]);
        assert_eq!(c.events().len(), 1);
    }

    #[test]
    fn uninstall_mid_span_is_safe() {
        let c = Collector::new();
        install(Box::new(c.clone()));
        let s = span("orphan");
        uninstall();
        drop(s); // sink is gone; the record is discarded without panicking
        assert_eq!(c.spans().len(), 0);
    }

    #[test]
    fn forked_collector_feeds_the_same_store() {
        let c = Collector::new();
        c.install();
        let forked = fork_current().expect("collector forks");
        std::thread::spawn(move || {
            install(forked);
            {
                let _s = span("worker.span");
            }
            counter("worker.count", 7);
            uninstall();
        })
        .join()
        .unwrap();
        uninstall();
        assert_eq!(c.counter("worker.count"), 7);
        let spans = c.spans();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "worker.span");
        assert!(spans[0].tid > 0);
        // With nothing installed there is nothing to fork.
        assert!(fork_current().is_none());
    }

    #[test]
    fn stderr_sink_does_not_panic() {
        with_sink(Box::new(StderrSink), || {
            let _s = span("demo").field("unit", "x");
            counter("c", 1);
        });
    }
}
