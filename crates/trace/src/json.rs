//! A minimal JSON writer — just enough for the exporters, keeping this
//! crate dependency-free.  Only object/array/string/u64 shapes are
//! needed; all keys and values the exporters emit are ASCII-safe after
//! escaping.

use std::fmt::Write as _;

/// Escapes `s` as the *contents* of a JSON string (no surrounding
/// quotes).
pub(crate) fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// `"s"` with escaping.
pub(crate) fn string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// A growable `{...}` object writer.
pub(crate) struct Obj {
    buf: String,
    first: bool,
}

impl Obj {
    pub(crate) fn new() -> Obj {
        Obj {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        self.buf.push_str(&string(k));
        self.buf.push(':');
    }

    /// Adds `"k": <raw>` where `raw` is already-valid JSON.
    pub(crate) fn raw(&mut self, k: &str, raw: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    pub(crate) fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(&string(v));
        self
    }

    pub(crate) fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    pub(crate) fn finish(&mut self) -> String {
        let mut s = std::mem::take(&mut self.buf);
        s.push('}');
        s
    }
}

/// Joins already-valid JSON values into `[...]`.
pub(crate) fn array(items: impl IntoIterator<Item = String>) -> String {
    let mut out = String::from("[");
    for (i, item) in items.into_iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&item);
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping() {
        assert_eq!(string("a\"b\\c\nd"), r#""a\"b\\c\nd""#);
        assert_eq!(string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn objects_and_arrays() {
        let mut o = Obj::new();
        o.str("name", "x").u64("n", 3).raw("inner", "[1,2]");
        assert_eq!(o.finish(), r#"{"name":"x","n":3,"inner":[1,2]}"#);
        assert_eq!(array(["1".to_string(), "2".to_string()]), "[1,2]");
        assert_eq!(array(std::iter::empty::<String>()), "[]");
    }
}
