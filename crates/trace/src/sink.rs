//! Sinks: where spans, events and metrics go.
//!
//! * [`NullSink`] — discards everything (never actually reached: with no
//!   sink installed the recording API short-circuits on a thread-local
//!   boolean before building any record).
//! * [`Collector`] — aggregates counters and per-name duration
//!   histograms, and retains every span/event for export as Chrome
//!   trace-event JSON ([`Collector::chrome_trace_json`]) or a JSON stats
//!   report ([`Collector::stats_json`]).
//! * [`StderrSink`] — pretty-prints span ends and events to stderr,
//!   indented by span depth, for interactive debugging.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::histogram::Histogram;
use crate::{chrome, json};

/// A finished span as handed to sinks.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// Span name (e.g. `compile.parse`).
    pub name: &'static str,
    /// When the span opened.
    pub start: Instant,
    /// How long it lasted.
    pub dur: Duration,
    /// Nesting depth at the span's own level (0 = top level).
    pub depth: usize,
    /// Dense thread tag (1-based, first-use order).
    pub tid: u64,
    /// Key/value fields attached via [`Span::field`](crate::Span::field).
    pub fields: Vec<(&'static str, String)>,
}

/// An instantaneous event as handed to sinks.
#[derive(Debug, Clone)]
pub struct EventRecord {
    /// Event name.
    pub name: &'static str,
    /// When it happened.
    pub at: Instant,
    /// Span-stack depth at emission time.
    pub depth: usize,
    /// Dense thread tag.
    pub tid: u64,
    /// Key/value fields.
    pub fields: Vec<(&'static str, String)>,
}

/// Destination for telemetry.  Implementations must not call back into
/// the recording API.
pub trait Sink {
    /// A span closed.
    fn span(&self, record: &SpanRecord);
    /// An event fired.
    fn event(&self, record: &EventRecord);
    /// A counter was incremented.
    fn counter(&self, name: &'static str, delta: u64);
    /// An externally measured duration sample.
    fn duration(&self, name: &'static str, d: Duration);
    /// A `Send`-able handle feeding the same destination, for installing
    /// on a worker thread (see [`fork_current`](crate::fork_current)).
    /// `None` (the default) means the sink is single-threaded and workers
    /// run untraced.
    fn fork(&self) -> Option<Box<dyn Sink + Send>> {
        None
    }
}

/// Discards everything.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl Sink for NullSink {
    fn span(&self, _: &SpanRecord) {}
    fn event(&self, _: &EventRecord) {}
    fn counter(&self, _: &'static str, _: u64) {}
    fn duration(&self, _: &'static str, _: Duration) {}
    fn fork(&self) -> Option<Box<dyn Sink + Send>> {
        Some(Box::new(NullSink))
    }
}

/// A span retained by a [`Collector`], timestamped relative to the
/// collector's epoch.
#[derive(Debug, Clone)]
pub struct CollectedSpan {
    /// Span name.
    pub name: &'static str,
    /// Start offset from the collector's epoch, µs.
    pub ts_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
    /// Nesting depth.
    pub depth: usize,
    /// Thread tag.
    pub tid: u64,
    /// Fields (owned copies).
    pub fields: Vec<(String, String)>,
}

/// An event retained by a [`Collector`].
#[derive(Debug, Clone)]
pub struct CollectedEvent {
    /// Event name.
    pub name: &'static str,
    /// Offset from the collector's epoch, µs.
    pub ts_us: u64,
    /// Thread tag.
    pub tid: u64,
    /// Fields (owned copies).
    pub fields: Vec<(String, String)>,
}

#[derive(Debug)]
struct CollectorInner {
    epoch: Instant,
    spans: Vec<CollectedSpan>,
    events: Vec<CollectedEvent>,
    counters: BTreeMap<&'static str, u64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// The collecting sink: cheap to clone (shared interior), aggregates
/// counters and histograms, retains spans/events for export.
///
/// # Examples
///
/// ```
/// use smlsc_trace as trace;
/// let c = trace::Collector::new();
/// trace::with_sink(Box::new(c.clone()), || {
///     let _s = trace::span("work");
/// });
/// assert_eq!(c.spans().len(), 1);
/// let report: String = c.stats_json();
/// assert!(report.contains("histograms"));
/// ```
#[derive(Debug, Clone)]
pub struct Collector {
    inner: Arc<Mutex<CollectorInner>>,
}

impl Default for Collector {
    fn default() -> Self {
        Collector::new()
    }
}

impl Collector {
    /// A fresh collector; its epoch (trace time zero) is now.
    pub fn new() -> Collector {
        Collector {
            inner: Arc::new(Mutex::new(CollectorInner {
                epoch: Instant::now(),
                spans: Vec::new(),
                events: Vec::new(),
                counters: BTreeMap::new(),
                histograms: BTreeMap::new(),
            })),
        }
    }

    /// Installs a clone of this collector as the current thread's sink.
    pub fn install(&self) {
        crate::install(Box::new(self.clone()));
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, CollectorInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Current value of a counter (0 if never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        self.lock().counters.get(name).copied().unwrap_or(0)
    }

    /// All counters, sorted by name.
    pub fn counters(&self) -> Vec<(String, u64)> {
        self.lock()
            .counters
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect()
    }

    /// The histogram for `name`, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<Histogram> {
        self.lock().histograms.get(name).cloned()
    }

    /// Names of all histograms, sorted.
    pub fn histogram_names(&self) -> Vec<String> {
        self.lock()
            .histograms
            .keys()
            .map(|k| k.to_string())
            .collect()
    }

    /// All retained spans, in completion order.
    pub fn spans(&self) -> Vec<CollectedSpan> {
        self.lock().spans.clone()
    }

    /// All retained events, in emission order.
    pub fn events(&self) -> Vec<CollectedEvent> {
        self.lock().events.clone()
    }

    /// Chrome trace-event JSON (the array form): one `ph:"X"` complete
    /// event per span and one `ph:"i"` instant event per event, loadable
    /// in `chrome://tracing` or Perfetto.
    pub fn chrome_trace_json(&self) -> String {
        let inner = self.lock();
        chrome::trace_json(&inner.spans, &inner.events)
    }

    /// A JSON stats report: counters, per-name histograms (count,
    /// total/min/max/mean, p50/p90/p99, non-empty buckets), and
    /// span/event totals.
    pub fn stats_json(&self) -> String {
        let inner = self.lock();
        let mut counters = json::Obj::new();
        for (k, v) in &inner.counters {
            counters.u64(k, *v);
        }
        let mut histograms = json::Obj::new();
        for (k, h) in &inner.histograms {
            let buckets = json::array(h.nonzero_buckets().into_iter().map(|(le, n)| {
                let mut b = json::Obj::new();
                b.u64("le_us", le).u64("count", n);
                b.finish()
            }));
            let mut o = json::Obj::new();
            o.u64("count", h.count())
                .u64("total_us", h.total_us())
                .u64("min_us", h.min_us())
                .u64("max_us", h.max_us())
                .u64("mean_us", h.mean_us())
                .u64("p50_us", h.quantile_us(0.50))
                .u64("p90_us", h.quantile_us(0.90))
                .u64("p99_us", h.quantile_us(0.99))
                .raw("buckets", &buckets);
            histograms.raw(k, &o.finish());
        }
        let mut root = json::Obj::new();
        root.raw("counters", &counters.finish())
            .raw("histograms", &histograms.finish())
            .u64("spans", inner.spans.len() as u64)
            .u64("events", inner.events.len() as u64);
        root.finish()
    }
}

impl Sink for Collector {
    fn span(&self, record: &SpanRecord) {
        let mut inner = self.lock();
        let ts_us = duration_us(record.start.saturating_duration_since(inner.epoch));
        inner
            .histograms
            .entry(record.name)
            .or_default()
            .record(record.dur);
        inner.spans.push(CollectedSpan {
            name: record.name,
            ts_us,
            dur_us: duration_us(record.dur),
            depth: record.depth,
            tid: record.tid,
            fields: record
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    fn event(&self, record: &EventRecord) {
        let mut inner = self.lock();
        let ts_us = duration_us(record.at.saturating_duration_since(inner.epoch));
        inner.events.push(CollectedEvent {
            name: record.name,
            ts_us,
            tid: record.tid,
            fields: record
                .fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        });
    }

    fn counter(&self, name: &'static str, delta: u64) {
        *self.lock().counters.entry(name).or_insert(0) += delta;
    }

    fn duration(&self, name: &'static str, d: Duration) {
        self.lock().histograms.entry(name).or_default().record(d);
    }

    fn fork(&self) -> Option<Box<dyn Sink + Send>> {
        Some(Box::new(self.clone()))
    }
}

fn duration_us(d: Duration) -> u64 {
    u64::try_from(d.as_micros()).unwrap_or(u64::MAX)
}

/// Pretty-prints spans and events to stderr, indented by nesting depth.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

fn render_fields(fields: &[(&'static str, String)]) -> String {
    fields
        .iter()
        .map(|(k, v)| format!(" {k}={v}"))
        .collect::<String>()
}

impl Sink for StderrSink {
    fn span(&self, r: &SpanRecord) {
        eprintln!(
            "[trace] {:indent$}{} {:.3}ms{}",
            "",
            r.name,
            r.dur.as_secs_f64() * 1e3,
            render_fields(&r.fields),
            indent = r.depth * 2
        );
    }

    fn event(&self, r: &EventRecord) {
        eprintln!(
            "[trace] {:indent$}• {}{}",
            "",
            r.name,
            render_fields(&r.fields),
            indent = r.depth * 2
        );
    }

    fn counter(&self, _: &'static str, _: u64) {}

    fn duration(&self, _: &'static str, _: Duration) {}

    fn fork(&self) -> Option<Box<dyn Sink + Send>> {
        Some(Box::new(StderrSink))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collector_aggregates_directly() {
        let c = Collector::new();
        c.counter_add_for_test("hits", 3);
        assert_eq!(c.counter("hits"), 3);
        assert_eq!(c.counter("misses"), 0);
    }

    impl Collector {
        fn counter_add_for_test(&self, name: &'static str, delta: u64) {
            Sink::counter(self, name, delta);
        }
    }

    #[test]
    fn stats_json_is_well_formed() {
        let c = Collector::new();
        Sink::counter(&c, "n", 1);
        Sink::duration(&c, "phase", Duration::from_micros(7));
        let s = c.stats_json();
        assert!(s.contains(r#""counters":{"n":1}"#), "{s}");
        assert!(s.contains(r#""phase":{"count":1"#), "{s}");
        assert!(s.ends_with('}'));
    }

    #[test]
    fn stats_json_keys_are_sorted_regardless_of_bump_order() {
        // Counters and histograms live in BTreeMaps, so the report is a
        // pure function of the collected data — whatever order a
        // parallel build's workers bumped them in.
        let c = Collector::new();
        for name in ["zeta", "alpha", "mid"] {
            Sink::counter(&c, name, 1);
            Sink::duration(&c, name, Duration::from_micros(5));
        }
        let d = Collector::new();
        for name in ["mid", "zeta", "alpha"] {
            Sink::counter(&d, name, 1);
            Sink::duration(&d, name, Duration::from_micros(5));
        }
        let s = c.stats_json();
        assert_eq!(s, d.stats_json());
        assert!(
            s.contains(r#""counters":{"alpha":1,"mid":1,"zeta":1}"#),
            "{s}"
        );
    }
}
