//! Chrome trace-event exporter.
//!
//! Emits the JSON *array* format understood by `chrome://tracing` and
//! Perfetto (<https://ui.perfetto.dev>): one `ph:"X"` complete event per
//! span (with `ts`/`dur` in microseconds) and one `ph:"i"` instant event
//! per trace event.  Span fields land in `args` so they show up in the
//! selection panel.

use crate::json;
use crate::sink::{CollectedEvent, CollectedSpan};

/// The process id reported in trace events; there is only one process.
const PID: u64 = 1;

fn args_json(fields: &[(String, String)]) -> String {
    let mut o = json::Obj::new();
    for (k, v) in fields {
        o.str(k, v);
    }
    o.finish()
}

fn span_json(s: &CollectedSpan) -> String {
    let mut o = json::Obj::new();
    o.str("name", s.name)
        .str("ph", "X")
        .u64("ts", s.ts_us)
        .u64("dur", s.dur_us)
        .u64("pid", PID)
        .u64("tid", s.tid)
        .raw("args", &args_json(&s.fields));
    o.finish()
}

fn event_json(e: &CollectedEvent) -> String {
    let mut o = json::Obj::new();
    o.str("name", e.name)
        .str("ph", "i")
        .u64("ts", e.ts_us)
        .u64("pid", PID)
        .u64("tid", e.tid)
        .str("s", "t")
        .raw("args", &args_json(&e.fields));
    o.finish()
}

/// Renders spans and events as one Chrome trace-event JSON array, sorted
/// by timestamp so viewers need no preprocessing.  Entries with equal
/// timestamps tie-break on their rendered JSON, so the output is a pure
/// function of the collected data — parallel builds whose workers
/// finish in a different order serialize identically.
pub(crate) fn trace_json(spans: &[CollectedSpan], events: &[CollectedEvent]) -> String {
    let mut entries: Vec<(u64, String)> = spans
        .iter()
        .map(|s| (s.ts_us, span_json(s)))
        .chain(events.iter().map(|e| (e.ts_us, event_json(e))))
        .collect();
    entries.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
    json::array(entries.into_iter().map(|(_, j)| j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_and_events_render_sorted() {
        let spans = vec![CollectedSpan {
            name: "compile.parse",
            ts_us: 10,
            dur_us: 5,
            depth: 1,
            tid: 1,
            fields: vec![("unit".to_string(), "a".to_string())],
        }];
        let events = vec![CollectedEvent {
            name: "decided",
            ts_us: 3,
            tid: 1,
            fields: vec![],
        }];
        let out = trace_json(&spans, &events);
        assert!(out.starts_with('[') && out.ends_with(']'), "{out}");
        // The earlier event sorts first.
        let first_event = out.find(r#""name":"decided""#).unwrap();
        let first_span = out.find(r#""name":"compile.parse""#).unwrap();
        assert!(first_event < first_span, "{out}");
        assert!(
            out.contains(r#""ph":"X","ts":10,"dur":5,"pid":1,"tid":1"#),
            "{out}"
        );
        assert!(out.contains(r#""args":{"unit":"a"}"#), "{out}");
    }

    #[test]
    fn empty_trace_is_empty_array() {
        assert_eq!(trace_json(&[], &[]), "[]");
    }

    #[test]
    fn equal_timestamps_serialize_deterministically() {
        // Two spans completing at the same tick on different workers:
        // whatever order the collector recorded them in, the rendered
        // trace is byte-identical.
        let span = |name: &'static str, tid: u64| CollectedSpan {
            name,
            ts_us: 7,
            dur_us: 2,
            depth: 1,
            tid,
            fields: vec![],
        };
        let forward = vec![span("compile.parse", 1), span("compile.elaborate", 2)];
        let reversed: Vec<CollectedSpan> = forward.iter().rev().cloned().collect();
        let event = CollectedEvent {
            name: "decided",
            ts_us: 7,
            tid: 3,
            fields: vec![],
        };
        assert_eq!(
            trace_json(&forward, std::slice::from_ref(&event)),
            trace_json(&reversed, std::slice::from_ref(&event))
        );
    }
}
