//! Log-scale duration histograms.
//!
//! Fixed power-of-two buckets over microseconds: bucket 0 holds samples
//! of 0 µs, bucket *i* (i ≥ 1) holds samples in `[2^(i-1), 2^i)` µs.
//! Forty buckets reach 2³⁹ µs ≈ 6.4 days, far beyond any build phase;
//! larger samples clamp into the last bucket.  Fixed buckets make
//! histograms mergeable across builds and trivially serializable.

use std::time::Duration;

/// Number of buckets; the last bucket absorbs everything ≥ 2³⁸ µs.
pub const BUCKETS: usize = 40;

/// A log-scale histogram of durations, with count/total/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    total_us: u64,
    min_us: u64,
    max_us: u64,
    buckets: [u64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            total_us: 0,
            min_us: u64::MAX,
            max_us: 0,
            buckets: [0; BUCKETS],
        }
    }
}

/// The bucket a sample of `us` microseconds falls into.
fn bucket_index(us: u64) -> usize {
    if us == 0 {
        0
    } else {
        ((64 - us.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound (µs) of bucket `i`.
fn bucket_upper_us(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, d: Duration) {
        let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
        self.count += 1;
        self.total_us = self.total_us.saturating_add(us);
        self.min_us = self.min_us.min(us);
        self.max_us = self.max_us.max(us);
        self.buckets[bucket_index(us)] += 1;
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        self.count += other.count;
        self.total_us = self.total_us.saturating_add(other.total_us);
        self.min_us = self.min_us.min(other.min_us);
        self.max_us = self.max_us.max(other.max_us);
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples, µs.
    pub fn total_us(&self) -> u64 {
        self.total_us
    }

    /// Smallest sample, µs (0 when empty).
    pub fn min_us(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min_us
        }
    }

    /// Largest sample, µs.
    pub fn max_us(&self) -> u64 {
        self.max_us
    }

    /// Mean sample, µs (0 when empty).
    pub fn mean_us(&self) -> u64 {
        self.total_us.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate `q`-quantile (0.0–1.0) in µs: the inclusive upper
    /// bound of the bucket containing the target rank, clamped to the
    /// observed max.  Resolution is the bucket width (a factor of two).
    pub fn quantile_us(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= target {
                return bucket_upper_us(i).min(self.max_us);
            }
        }
        self.max_us
    }

    /// The non-empty buckets as `(inclusive upper bound µs, count)`.
    pub fn nonzero_buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_upper_us(i), n))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_upper_us(0), 0);
        assert_eq!(bucket_upper_us(1), 1);
        assert_eq!(bucket_upper_us(10), 1023);
    }

    #[test]
    fn record_and_stats() {
        let mut h = Histogram::new();
        for us in [0u64, 1, 10, 100, 1000, 1000] {
            h.record(Duration::from_micros(us));
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.total_us(), 2111);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.max_us(), 1000);
        assert_eq!(h.mean_us(), 351);
        // Median rank 3 → the 10 µs sample's bucket [8,15].
        assert_eq!(h.quantile_us(0.5), 15);
        // p100 clamps to the observed max.
        assert_eq!(h.quantile_us(1.0), 1000);
    }

    #[test]
    fn empty_histogram_is_calm() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.min_us(), 0);
        assert_eq!(h.quantile_us(0.99), 0);
        assert!(h.nonzero_buckets().is_empty());
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        a.record(Duration::from_micros(5));
        let mut b = Histogram::new();
        b.record(Duration::from_micros(500));
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_us(), 5);
        assert_eq!(a.max_us(), 500);
        assert_eq!(a.nonzero_buckets().len(), 2);
    }
}
