//! Rebuild decisions: the per-unit verdict of a recompilation strategy.
//!
//! Every unit visited by a build gets exactly one [`RebuildDecision`],
//! recording *why* it was recompiled or reused.  `smlsc build --explain`
//! prints them as a causal chain; tests assert exact decision sequences
//! per strategy.  Pids are carried as preformatted strings (the trace
//! crate is deliberately ignorant of the pid representation).

use crate::json;
use std::fmt;

/// Why a unit was (or was not) recompiled in one build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RebuildDecision {
    /// No bin existed for this unit: first compile.
    NewUnit,
    /// The unit's own source changed (source pid differs).
    SourceChanged {
        /// Source pid of the previous bin.
        old: String,
        /// Source pid of the current source.
        new: String,
    },
    /// An imported unit's export pid changed, so this unit's view of the
    /// world changed and it must be recompiled.
    ImportPidChanged {
        /// The import whose interface changed.
        import: String,
        /// Its previous export pid.
        old: String,
        /// Its new export pid.
        new: String,
    },
    /// A dependency was recompiled; under a non-cutoff strategy
    /// (classical/timestamp) that alone forces recompilation, without
    /// consulting export pids.
    DependencyRebuilt {
        /// The recompiled import that triggered this.
        import: String,
    },
    /// A dependency was recompiled but produced an identical export pid;
    /// the cutoff strategy proves this unit's inputs are unchanged and
    /// skips it.
    CutOff {
        /// The recompiled import whose interface survived.
        import: String,
        /// That import's (unchanged) export pid.
        export_pid: String,
    },
    /// Nothing relevant changed; the existing bin is reused as-is.
    Reused,
    /// The strategy demanded a recompile, but a shared artifact store
    /// held a verified object for the unit's exact compile inputs; the
    /// unit was rehydrated from the store instead of being compiled.
    StoreHit {
        /// The cache key the store satisfied.
        key: String,
        /// The verdict that would otherwise have caused a compile.
        cause: Box<RebuildDecision>,
    },
    /// The unit was not attempted: under keep-going scheduling, one or
    /// more of its (transitive) imports failed, so no trustworthy
    /// compile inputs exist for it this build.
    Skipped {
        /// The direct imports that failed or were themselves skipped.
        blocked_on: Vec<String>,
    },
}

impl RebuildDecision {
    /// True when this decision causes a recompile.
    pub fn requires_recompile(&self) -> bool {
        match self {
            RebuildDecision::NewUnit
            | RebuildDecision::SourceChanged { .. }
            | RebuildDecision::ImportPidChanged { .. }
            | RebuildDecision::DependencyRebuilt { .. } => true,
            RebuildDecision::CutOff { .. }
            | RebuildDecision::Reused
            | RebuildDecision::StoreHit { .. }
            | RebuildDecision::Skipped { .. } => false,
        }
    }

    /// Short machine-readable tag (stable; used in JSON and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            RebuildDecision::NewUnit => "new_unit",
            RebuildDecision::SourceChanged { .. } => "source_changed",
            RebuildDecision::ImportPidChanged { .. } => "import_pid_changed",
            RebuildDecision::DependencyRebuilt { .. } => "dependency_rebuilt",
            RebuildDecision::CutOff { .. } => "cutoff",
            RebuildDecision::Reused => "reused",
            RebuildDecision::StoreHit { .. } => "store_hit",
            RebuildDecision::Skipped { .. } => "skipped",
        }
    }

    /// Renders this decision as a JSON object (kind plus variant fields).
    pub fn to_json(&self) -> String {
        let mut o = json::Obj::new();
        o.str("kind", self.kind());
        match self {
            RebuildDecision::NewUnit | RebuildDecision::Reused => {}
            RebuildDecision::SourceChanged { old, new } => {
                o.str("old", old).str("new", new);
            }
            RebuildDecision::ImportPidChanged { import, old, new } => {
                o.str("import", import).str("old", old).str("new", new);
            }
            RebuildDecision::DependencyRebuilt { import } => {
                o.str("import", import);
            }
            RebuildDecision::CutOff { import, export_pid } => {
                o.str("import", import).str("export_pid", export_pid);
            }
            RebuildDecision::StoreHit { key, cause } => {
                o.str("key", key).str("cause", cause.kind());
            }
            RebuildDecision::Skipped { blocked_on } => {
                o.str("blocked_on", &blocked_on.join(","));
            }
        }
        o.finish()
    }
}

impl fmt::Display for RebuildDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RebuildDecision::NewUnit => write!(f, "compiled: new unit (no bin on record)"),
            RebuildDecision::SourceChanged { old, new } => {
                write!(f, "recompiled: source changed (pid {old} -> {new})")
            }
            RebuildDecision::ImportPidChanged { import, old, new } => write!(
                f,
                "recompiled: interface of import `{import}` changed (pid {old} -> {new})"
            ),
            RebuildDecision::DependencyRebuilt { import } => write!(
                f,
                "recompiled: import `{import}` was rebuilt (strategy does not compare pids)"
            ),
            RebuildDecision::CutOff { import, export_pid } => write!(
                f,
                "cut off: import `{import}` was rebuilt but its export pid {export_pid} is unchanged"
            ),
            RebuildDecision::Reused => write!(f, "reused: no relevant change"),
            RebuildDecision::StoreHit { key, cause } => {
                write!(f, "from store (key {key}), instead of: {cause}")
            }
            RebuildDecision::Skipped { blocked_on } => {
                let list: Vec<String> = blocked_on.iter().map(|u| format!("`{u}`")).collect();
                write!(f, "skipped: blocked on failed import(s) {}", list.join(", "))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recompile_classification() {
        assert!(RebuildDecision::NewUnit.requires_recompile());
        assert!(RebuildDecision::SourceChanged {
            old: "a".into(),
            new: "b".into()
        }
        .requires_recompile());
        assert!(!RebuildDecision::Reused.requires_recompile());
        assert!(!RebuildDecision::CutOff {
            import: "m".into(),
            export_pid: "p".into()
        }
        .requires_recompile());
    }

    #[test]
    fn display_is_causal() {
        let d = RebuildDecision::CutOff {
            import: "lexer".into(),
            export_pid: "deadbeef".into(),
        };
        let s = d.to_string();
        assert!(s.contains("lexer"), "{s}");
        assert!(s.contains("deadbeef"), "{s}");
        assert!(s.contains("unchanged"), "{s}");
    }

    #[test]
    fn json_round_shape() {
        let d = RebuildDecision::ImportPidChanged {
            import: "ast".into(),
            old: "1".into(),
            new: "2".into(),
        };
        assert_eq!(
            d.to_json(),
            r#"{"kind":"import_pid_changed","import":"ast","old":"1","new":"2"}"#
        );
        assert_eq!(RebuildDecision::Reused.to_json(), r#"{"kind":"reused"}"#);
    }
}
