//! End-to-end tests for smlsc-trace: span nesting, collector exports,
//! and the shape of the Chrome trace / stats JSON.

use smlsc_trace as trace;
use std::time::Duration;

#[test]
fn collector_end_to_end_exports() {
    let c = trace::Collector::new();
    trace::with_sink(Box::new(c.clone()), || {
        let _build = trace::span(trace::names::SPAN_BUILD).field("units", 2);
        for unit in ["a", "b"] {
            let _parse = trace::span(trace::names::SPAN_PARSE).field("unit", unit);
            trace::counter(trace::names::UNITS_COMPILED, 1);
        }
        drop(trace::event("cutoff").field("unit", "c"));
        trace::duration("phase.link", Duration::from_micros(42));
    });

    assert_eq!(c.counter(trace::names::UNITS_COMPILED), 2);
    assert_eq!(c.histogram(trace::names::SPAN_PARSE).unwrap().count(), 2);
    assert_eq!(c.histogram("phase.link").unwrap().count(), 1);

    // Chrome export: a JSON array whose entries carry the complete-event
    // shape (name/ph/ts/dur/pid/tid/args).
    let chrome = c.chrome_trace_json();
    assert!(chrome.starts_with('[') && chrome.ends_with(']'));
    assert!(chrome.contains(r#""name":"irm.build""#), "{chrome}");
    assert!(chrome.contains(r#""ph":"X""#), "{chrome}");
    assert!(chrome.contains(r#""ph":"i""#), "{chrome}");
    assert!(chrome.contains(r#""args":{"unit":"a"}"#), "{chrome}");
    assert_eq!(chrome.matches(r#""ph":"X""#).count(), 3); // build + 2 parses

    // Stats export: counters and histograms by name.
    let stats = c.stats_json();
    assert!(stats.contains(r#""irm.units_compiled":2"#), "{stats}");
    assert!(stats.contains(r#""compile.parse":{"count":2"#), "{stats}");
    assert!(stats.contains(r#""spans":3"#), "{stats}");
    assert!(stats.contains(r#""events":1"#), "{stats}");
}

#[test]
fn span_depth_reflects_nesting() {
    let c = trace::Collector::new();
    trace::with_sink(Box::new(c.clone()), || {
        let _a = trace::span("a");
        {
            let _b = trace::span("b");
            let _c = trace::span("c");
        }
    });
    let spans = c.spans();
    let depth_of = |name: &str| spans.iter().find(|s| s.name == name).unwrap().depth;
    assert_eq!(depth_of("a"), 0);
    assert_eq!(depth_of("b"), 1);
    assert_eq!(depth_of("c"), 2);
}

#[test]
fn null_path_records_nothing_and_is_reentrant() {
    // No sink: everything is inert, including field construction.
    let s = trace::span("x").field("k", "v");
    drop(s);
    trace::counter("n", 1);

    // Install, uninstall, reinstall: the collector only sees the middle.
    let c = trace::Collector::new();
    c.install();
    trace::counter("n", 1);
    trace::uninstall();
    trace::counter("n", 10);
    assert_eq!(c.counter("n"), 1);
}

#[test]
fn decisions_have_stable_kinds() {
    use trace::RebuildDecision as D;
    let all = [
        D::NewUnit,
        D::SourceChanged {
            old: "1".into(),
            new: "2".into(),
        },
        D::ImportPidChanged {
            import: "m".into(),
            old: "1".into(),
            new: "2".into(),
        },
        D::DependencyRebuilt { import: "m".into() },
        D::CutOff {
            import: "m".into(),
            export_pid: "p".into(),
        },
        D::Reused,
    ];
    let kinds: Vec<&str> = all.iter().map(|d| d.kind()).collect();
    assert_eq!(
        kinds,
        [
            "new_unit",
            "source_changed",
            "import_pid_changed",
            "dependency_rebuilt",
            "cutoff",
            "reused"
        ]
    );
    let recompiles: Vec<bool> = all.iter().map(|d| d.requires_recompile()).collect();
    assert_eq!(recompiles, [true, true, true, true, false, false]);
    // Each decision renders as one line of causal prose and one JSON object.
    for d in &all {
        assert!(!d.to_string().is_empty());
        assert!(d
            .to_json()
            .starts_with(&format!(r#"{{"kind":"{}""#, d.kind())));
    }
}
