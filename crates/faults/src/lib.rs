//! `smlsc-faults`: deterministic fault injection for the build pipeline.
//!
//! Crash-safety claims — atomic publication, quarantine-on-corruption,
//! stale-lock breaking, keep-going scheduling — are only real if they
//! are *exercised* by design rather than by luck.  This crate gives the
//! pipeline named **fault points** (see [`points`]) and a seeded,
//! parseable **fault plan** that can fire IO errors, torn writes,
//! delays, and panics at those points.
//!
//! The hooks are compiled in unconditionally: with no plan installed
//! (the default), [`check`] is a single relaxed atomic load, so chaos
//! suites run against the same release binaries users get.
//!
//! # Spec grammar
//!
//! A plan is parsed from `--inject-faults <spec>` or the `SMLSC_FAULTS`
//! environment variable:
//!
//! ```text
//! spec    := clause ( ';' clause )*
//! clause  := 'seed=' u64
//!          | point '=' action
//! point   := 'store.publish' | 'store.fetch' | 'store.lock'
//!          | 'bin.save' | 'bin.load' | 'compile.unit'
//!          | 'ledger.append' | 'ledger.rotate' | 'stamp.save'
//!          | 'pack.save' | 'deps.save' | 'daemon.accept'
//!          | 'daemon.watch' | 'daemon.lock'
//! action  := kind [ '(' filter ')' ] [ '@' nth ] [ '%' percent ] [ '*' count ]
//! kind    := 'io' | 'torn' | 'delay:' millis | 'panic' | 'crash'
//! ```
//!
//! * `filter` — fire only when the call's detail string (unit name,
//!   lock file name, object key) contains `filter`;
//! * `@nth` — fire starting at the nth matching call (1-based);
//! * `%percent` — fire with this probability per call, decided
//!   deterministically from `(seed, point, call index)`;
//! * `*count` — fire at most `count` times.
//!
//! Examples: `compile.unit=panic(M3)@1*1` panics the first compile of
//! unit `M3`; `seed=42;store.publish=torn%30;store.fetch=io%25` tears
//! 30% of store writes and fails 25% of store reads, reproducibly;
//! `stamp.save=crash(staged)@1` aborts the process the first time a
//! stamp save has staged its tmp file but not yet renamed it.
//!
//! # Semantics at the point
//!
//! [`check`] executes `Delay` (sleeps), `Panic` (panics with an
//! `"injected fault"` message), and `Crash` (calls
//! `std::process::abort()`, skipping every destructor — exactly the
//! debris a SIGKILL or power loss leaves) itself; `Io` and `Torn` are
//! returned to the caller, which interprets them in context — an
//! injected IO error for `Io`, a deliberately truncated write (or
//! read) for `Torn`.
//!
//! Durable-write points check several times per operation with a
//! *stage* detail string (`begin`, `staged`, `renamed`, and for ledger
//! appends `mid`), so a `crash(<stage>)` filter selects exactly which
//! half-finished state the process dies in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, RwLock};
use std::time::Duration;

use smlsc_trace as trace;

/// Canonical fault-point names.  Keeping them here prevents drift
/// between the code that checks a point and the specs that name it.
pub mod points {
    /// `Store::put`: staging, fsync, and rename of one object.
    pub const STORE_PUBLISH: &str = "store.publish";
    /// `Store::get`: read + digest verification of one object.
    pub const STORE_FETCH: &str = "store.fetch";
    /// Advisory lock acquisition (fires while holding the lock file,
    /// so a `panic` here models an owner that dies mid-critical-section).
    pub const STORE_LOCK: &str = "store.lock";
    /// `Irm::save_bins`: persisting one unit's bin.
    pub const BIN_SAVE: &str = "bin.save";
    /// `Irm::load_bins`: reading one bin file back.
    pub const BIN_LOAD: &str = "bin.load";
    /// One unit's compile (after the rebuild decision and store probe).
    pub const COMPILE_UNIT: &str = "compile.unit";
    /// `Ledger::append`: the single `O_APPEND` write of one build
    /// record to `builds.jsonl` (`io` fails the write, `torn` truncates
    /// the record mid-line, modelling a crash during the append).
    pub const LEDGER_APPEND: &str = "ledger.append";
    /// The daemon's accept loop: one client connection being accepted
    /// (`io` drops the connection before any frame is exchanged, so
    /// clients must fall back to an in-process build).
    pub const DAEMON_ACCEPT: &str = "daemon.accept";
    /// One poll sweep of the daemon's filesystem watcher (`io` skips the
    /// sweep; invalidation is deferred, never lost, because the next
    /// sweep re-diffs against the same snapshot).
    pub const DAEMON_WATCH: &str = "daemon.watch";
    /// `StampCache::save`: the tmp+fsync+rename publication of
    /// `stamps.json`.  Checked at stages `begin`, `staged`, `renamed`.
    pub const STAMP_SAVE: &str = "stamp.save";
    /// `PackWriter::finish`: sealing and renaming `bins.pack` into
    /// place.  Checked at stages `begin`, `staged`, `renamed`.
    pub const PACK_SAVE: &str = "pack.save";
    /// `Ledger::rotate_if_needed`: the tmp+rename that truncates an
    /// over-long `builds.jsonl`.  Checked at stages `begin`, `staged`,
    /// `renamed`.
    pub const LEDGER_ROTATE: &str = "ledger.rotate";
    /// `DepGraph::save`: the tmp+fsync+rename publication of the
    /// `deps.pack` import-DAG sidecar.  Checked at stages `begin`,
    /// `staged`, `renamed`.
    pub const DEPS_SAVE: &str = "deps.save";
    /// Daemon lockfile acquisition (fires after the lockfile is
    /// created, so a `crash` here models a daemon that dies holding
    /// the lock — the stale state `doctor` and lock takeover must
    /// clear).
    pub const DAEMON_LOCK: &str = "daemon.lock";
    /// Every fault point, for specs that want blanket coverage.
    pub const ALL: &[&str] = &[
        STORE_PUBLISH,
        STORE_FETCH,
        STORE_LOCK,
        BIN_SAVE,
        BIN_LOAD,
        COMPILE_UNIT,
        LEDGER_APPEND,
        LEDGER_ROTATE,
        STAMP_SAVE,
        PACK_SAVE,
        DEPS_SAVE,
        DAEMON_ACCEPT,
        DAEMON_WATCH,
        DAEMON_LOCK,
    ];
}

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an injected IO error.
    Io,
    /// The write (or read) is deliberately truncated mid-payload.
    Torn,
    /// The call stalls for the given duration before proceeding.
    Delay(Duration),
    /// The call panics, as an internal compiler bug would.
    Panic,
    /// The process aborts on the spot (`std::process::abort()`): no
    /// unwinding, no destructors — the state a SIGKILL or power loss
    /// leaves behind.  Only meaningful in a subprocess under test.
    Crash,
}

/// One armed fault: a kind plus its firing conditions.
#[derive(Debug, Clone)]
pub struct FaultRule {
    /// The fault point this rule arms.
    pub point: &'static str,
    /// What happens when it fires.
    pub kind: FaultKind,
    /// Fire only when the call's detail contains this substring.
    pub filter: Option<String>,
    /// First matching call (1-based) at which the rule may fire.
    pub from_nth: u64,
    /// Per-call firing probability in percent (`None` = always).
    pub percent: Option<u8>,
    /// Maximum number of firings.
    pub max_fires: u64,
}

impl FaultRule {
    /// A rule firing on every matching call at `point`.
    pub fn new(point: &'static str, kind: FaultKind) -> FaultRule {
        FaultRule {
            point,
            kind,
            filter: None,
            from_nth: 1,
            percent: None,
            max_fires: u64::MAX,
        }
    }

    /// Restricts the rule to calls whose detail contains `filter`.
    pub fn filtered(mut self, filter: impl Into<String>) -> FaultRule {
        self.filter = Some(filter.into());
        self
    }

    /// Fires with `percent`% probability per matching call.
    pub fn percent(mut self, percent: u8) -> FaultRule {
        self.percent = Some(percent.min(100));
        self
    }

    /// Fires at most `n` times.
    pub fn times(mut self, n: u64) -> FaultRule {
        self.max_fires = n;
        self
    }

    /// Starts firing at the `nth` matching call (1-based).
    pub fn from_nth(mut self, nth: u64) -> FaultRule {
        self.from_nth = nth.max(1);
        self
    }
}

/// A seeded set of fault rules.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Seed for probabilistic (`%`) rules.
    pub seed: u64,
    /// The armed rules.
    pub rules: Vec<FaultRule>,
}

impl FaultPlan {
    /// An empty plan with the given seed.
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            rules: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    #[must_use]
    pub fn with(mut self, rule: FaultRule) -> FaultPlan {
        self.rules.push(rule);
        self
    }

    /// Parses a plan from the spec grammar (see the crate docs).
    ///
    /// # Errors
    ///
    /// A human-readable message naming the offending clause.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for clause in spec.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            if let Some(seed) = clause.strip_prefix("seed=") {
                plan.seed = seed
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad seed `{seed}` (expected an unsigned integer)"))?;
                continue;
            }
            let (point_str, action) = clause
                .split_once('=')
                .ok_or_else(|| format!("bad clause `{clause}` (expected `point=action`)"))?;
            let point_str = point_str.trim();
            let point = points::ALL
                .iter()
                .find(|p| **p == point_str)
                .copied()
                .ok_or_else(|| {
                    format!(
                        "unknown fault point `{point_str}` (expected one of {})",
                        points::ALL.join(", ")
                    )
                })?;
            plan.rules.push(parse_action(point, action.trim())?);
        }
        Ok(plan)
    }
}

fn parse_action(point: &'static str, action: &str) -> Result<FaultRule, String> {
    // Split trailing modifiers (`@nth`, `%percent`, `*count`) off the
    // kind.  Modifiers never contain '(' so the filter is unambiguous.
    let mut rest = action;
    let mut rule_kind: Option<FaultKind> = None;
    for (name, prefix_len) in [
        ("io", 2),
        ("torn", 4),
        ("panic", 5),
        ("crash", 5),
        ("delay:", 6),
    ] {
        if rest.starts_with(name) {
            if name == "delay:" {
                let tail = &rest[prefix_len..];
                let end = tail
                    .find(|c: char| !c.is_ascii_digit())
                    .unwrap_or(tail.len());
                let ms: u64 = tail[..end]
                    .parse()
                    .map_err(|_| format!("bad delay millis in `{action}`"))?;
                rule_kind = Some(FaultKind::Delay(Duration::from_millis(ms)));
                rest = &tail[end..];
            } else {
                rule_kind = Some(match name {
                    "io" => FaultKind::Io,
                    "torn" => FaultKind::Torn,
                    "crash" => FaultKind::Crash,
                    _ => FaultKind::Panic,
                });
                rest = &rest[prefix_len..];
            }
            break;
        }
    }
    let kind = rule_kind.ok_or_else(|| {
        format!("unknown fault kind in `{action}` (expected io, torn, delay:<ms>, panic, or crash)")
    })?;
    let mut rule = FaultRule::new(point, kind);
    if let Some(after_paren) = rest.strip_prefix('(') {
        let close = after_paren
            .find(')')
            .ok_or_else(|| format!("unclosed filter in `{action}`"))?;
        rule.filter = Some(after_paren[..close].to_string());
        rest = &after_paren[close + 1..];
    }
    while !rest.is_empty() {
        let (tag, tail) = rest.split_at(1);
        let end = tail
            .find(|c: char| !c.is_ascii_digit())
            .unwrap_or(tail.len());
        let num: u64 = tail[..end]
            .parse()
            .map_err(|_| format!("bad modifier `{rest}` in `{action}`"))?;
        match tag {
            "@" => rule.from_nth = num.max(1),
            "%" => rule.percent = Some(u8::try_from(num.min(100)).expect("<= 100")),
            "*" => rule.max_fires = num,
            _ => return Err(format!("bad modifier `{rest}` in `{action}`")),
        }
        rest = &tail[end..];
    }
    Ok(rule)
}

/// Per-rule firing state (call and fire counters).
#[derive(Debug)]
struct RuleState {
    rule: FaultRule,
    calls: AtomicU64,
    fires: AtomicU64,
}

#[derive(Debug)]
struct PlanState {
    seed: u64,
    rules: Vec<RuleState>,
}

static ACTIVE: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<PlanState>>> = RwLock::new(None);
/// Serializes scoped installs so in-process tests cannot interleave
/// plans; poisoning is expected (panic faults) and benign.
static GATE: Mutex<()> = Mutex::new(());

/// Installs `plan` process-wide, replacing any previous plan.  Intended
/// for binaries (`--inject-faults` / `SMLSC_FAULTS`); tests should use
/// [`install_scoped`], which also serializes concurrent installers.
pub fn install_global(plan: FaultPlan) {
    let state = PlanState {
        seed: plan.seed,
        rules: plan
            .rules
            .into_iter()
            .map(|rule| RuleState {
                rule,
                calls: AtomicU64::new(0),
                fires: AtomicU64::new(0),
            })
            .collect(),
    };
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = Some(Arc::new(state));
    ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the installed plan, restoring the zero-cost no-op behaviour.
pub fn clear() {
    ACTIVE.store(false, Ordering::SeqCst);
    *PLAN.write().unwrap_or_else(|e| e.into_inner()) = None;
}

/// A scoped plan installation; the plan is cleared when dropped, and a
/// process-wide gate is held so concurrent scoped installs serialize.
#[derive(Debug)]
pub struct ScopedFaults {
    _gate: MutexGuard<'static, ()>,
}

/// Installs `plan` for the lifetime of the returned guard.  Concurrent
/// callers block until the previous guard drops, so tests sharing the
/// process cannot see each other's faults.
pub fn install_scoped(plan: FaultPlan) -> ScopedFaults {
    let gate = GATE.lock().unwrap_or_else(|e| e.into_inner());
    install_global(plan);
    ScopedFaults { _gate: gate }
}

impl Drop for ScopedFaults {
    fn drop(&mut self) {
        clear();
    }
}

/// True when a plan is installed.
pub fn active() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

/// Checks a fault point.  With no plan installed this is a single
/// relaxed atomic load.  `Delay` faults sleep here and return `None`;
/// `Panic` faults panic here (with a message naming the point); `Io`
/// and `Torn` are returned for the caller to interpret.
pub fn check(point: &'static str, detail: &str) -> Option<FaultKind> {
    if !ACTIVE.load(Ordering::Relaxed) {
        return None;
    }
    let state = PLAN
        .read()
        .unwrap_or_else(|e| e.into_inner())
        .as_ref()
        .cloned()?;
    for rs in &state.rules {
        if rs.rule.point != point {
            continue;
        }
        if let Some(f) = &rs.rule.filter {
            if !detail.contains(f.as_str()) {
                continue;
            }
        }
        let n = rs.calls.fetch_add(1, Ordering::Relaxed) + 1;
        if n < rs.rule.from_nth {
            continue;
        }
        if rs.fires.load(Ordering::Relaxed) >= rs.rule.max_fires {
            continue;
        }
        if let Some(p) = rs.rule.percent {
            // Deterministic per (seed, point, call index): the *set* of
            // firing calls is fixed no matter how threads interleave.
            let roll = splitmix64(state.seed ^ str_hash(point) ^ n.wrapping_mul(0x9E37_79B9)) % 100;
            if roll >= u64::from(p) {
                continue;
            }
        }
        rs.fires.fetch_add(1, Ordering::Relaxed);
        trace::counter(names::FAULTS_INJECTED, 1);
        trace::event(names::FAULT_EVENT)
            .field("point", point)
            .field("detail", detail)
            .field("kind", kind_name(rs.rule.kind));
        match rs.rule.kind {
            FaultKind::Delay(d) => {
                std::thread::sleep(d);
                return None;
            }
            FaultKind::Panic => panic!("injected fault: panic at {point} ({detail})"),
            FaultKind::Crash => {
                // Announce the kill on stderr so a harness can tell an
                // injected crash from an organic abort, then die
                // without unwinding — no Drop handler runs, exactly as
                // if the process had been SIGKILLed here.
                eprintln!("injected fault: crash at {point} ({detail})");
                std::process::abort();
            }
            k @ (FaultKind::Io | FaultKind::Torn) => return Some(k),
        }
    }
    None
}

/// The IO error callers raise for an injected [`FaultKind::Io`].
pub fn io_error(point: &'static str, detail: &str) -> std::io::Error {
    std::io::Error::other(format!("injected fault: io at {point} ({detail})"))
}

fn kind_name(k: FaultKind) -> &'static str {
    match k {
        FaultKind::Io => "io",
        FaultKind::Torn => "torn",
        FaultKind::Delay(_) => "delay",
        FaultKind::Panic => "panic",
        FaultKind::Crash => "crash",
    }
}

/// Trace names emitted by this crate.
pub mod names {
    /// Counter: faults fired so far.
    pub const FAULTS_INJECTED: &str = "faults.injected";
    /// Event: one per fired fault, with `point`, `detail`, `kind`.
    pub const FAULT_EVENT: &str = "fault.injected";
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

fn str_hash(s: &str) -> u64 {
    s.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ u64::from(b)).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inactive_is_no_op() {
        assert!(!active());
        assert!(check(points::STORE_FETCH, "anything").is_none());
    }

    #[test]
    fn parse_full_grammar() {
        let plan = FaultPlan::parse(
            "seed=42; store.publish=torn%30; compile.unit=panic(M3)@2*1; store.lock=delay:50; bin.load=io",
        )
        .unwrap();
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rules.len(), 4);
        let r = &plan.rules[1];
        assert_eq!(r.point, points::COMPILE_UNIT);
        assert_eq!(r.kind, FaultKind::Panic);
        assert_eq!(r.filter.as_deref(), Some("M3"));
        assert_eq!(r.from_nth, 2);
        assert_eq!(r.max_fires, 1);
        assert_eq!(plan.rules[0].percent, Some(30));
        assert_eq!(
            plan.rules[2].kind,
            FaultKind::Delay(Duration::from_millis(50))
        );
        assert_eq!(plan.rules[3].kind, FaultKind::Io);
    }

    #[test]
    fn parse_crash_rules_at_every_durable_write_point() {
        let plan = FaultPlan::parse(
            "stamp.save=crash(staged)@1; pack.save=crash(renamed); ledger.rotate=crash; \
             ledger.append=crash(mid)@2*1; store.publish=crash(begin); daemon.lock=crash",
        )
        .unwrap();
        assert_eq!(plan.rules.len(), 6);
        assert!(plan.rules.iter().all(|r| r.kind == FaultKind::Crash));
        assert_eq!(plan.rules[0].point, points::STAMP_SAVE);
        assert_eq!(plan.rules[0].filter.as_deref(), Some("staged"));
        assert_eq!(plan.rules[1].point, points::PACK_SAVE);
        assert_eq!(plan.rules[2].point, points::LEDGER_ROTATE);
        assert_eq!(plan.rules[3].point, points::LEDGER_APPEND);
        assert_eq!(plan.rules[3].from_nth, 2);
        assert_eq!(plan.rules[3].max_fires, 1);
        assert_eq!(plan.rules[4].point, points::STORE_PUBLISH);
        assert_eq!(plan.rules[5].point, points::DAEMON_LOCK);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("bogus.point=io").is_err());
        assert!(FaultPlan::parse("store.fetch=explode").is_err());
        assert!(FaultPlan::parse("store.fetch").is_err());
        assert!(FaultPlan::parse("seed=notanumber").is_err());
        assert!(FaultPlan::parse("compile.unit=panic(unclosed").is_err());
    }

    #[test]
    fn filter_nth_and_count_fire_deterministically() {
        let plan = FaultPlan::default().with(
            FaultRule::new(points::BIN_SAVE, FaultKind::Io)
                .filtered("target")
                .from_nth(2)
                .times(1),
        );
        let _guard = install_scoped(plan);
        assert!(check(points::BIN_SAVE, "other").is_none(), "filter misses");
        assert!(
            check(points::BIN_SAVE, "target").is_none(),
            "1st call skipped"
        );
        assert_eq!(
            check(points::BIN_SAVE, "target"),
            Some(FaultKind::Io),
            "2nd call fires"
        );
        assert!(
            check(points::BIN_SAVE, "target").is_none(),
            "count exhausted"
        );
    }

    #[test]
    fn percent_is_seed_deterministic() {
        let fired = |seed: u64| -> Vec<bool> {
            let plan = FaultPlan::seeded(seed)
                .with(FaultRule::new(points::STORE_FETCH, FaultKind::Io).percent(40));
            let _guard = install_scoped(plan);
            (0..64)
                .map(|_| check(points::STORE_FETCH, "k").is_some())
                .collect()
        };
        let a = fired(7);
        let b = fired(7);
        let c = fired(8);
        assert_eq!(a, b, "same seed, same firing set");
        assert_ne!(a, c, "different seed, different firing set");
        let hits = a.iter().filter(|x| **x).count();
        assert!(hits > 10 && hits < 45, "~40% of 64, got {hits}");
    }

    #[test]
    fn panic_kind_panics_at_the_point() {
        let plan =
            FaultPlan::default().with(FaultRule::new(points::COMPILE_UNIT, FaultKind::Panic));
        let _guard = install_scoped(plan);
        let err = std::panic::catch_unwind(|| check(points::COMPILE_UNIT, "m")).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("injected fault"), "{msg}");
        assert!(msg.contains("compile.unit"), "{msg}");
    }

    #[test]
    fn scope_clears_on_drop() {
        {
            let _guard = install_scoped(
                FaultPlan::default().with(FaultRule::new(points::BIN_LOAD, FaultKind::Io)),
            );
            assert!(active());
            assert_eq!(check(points::BIN_LOAD, "x"), Some(FaultKind::Io));
        }
        assert!(!active());
        assert!(check(points::BIN_LOAD, "x").is_none());
    }
}
