//! Interned source-level identifiers.
//!
//! Every identifier that appears in mini-SML source — value variables,
//! type constructors, structure/signature/functor names, type variables —
//! is interned into a global table so that symbols compare and hash in
//! O(1).  The interner leaks the backing strings (they live for the whole
//! process), which matches how a compiler session uses them.

use std::fmt;
use std::sync::OnceLock;

use parking_lot::Mutex;
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// An interned identifier.
///
/// Two `Symbol`s are equal iff they intern the same string.  `Symbol` is
/// `Copy`, 4 bytes, and cheap to hash, so it is used pervasively as a map
/// key across the compiler.
///
/// Serialization round-trips through the string form so pickled data does
/// not depend on interner numbering (which varies between processes).
///
/// # Examples
///
/// ```
/// use smlsc_ids::Symbol;
/// let a = Symbol::intern("sort");
/// let b = Symbol::intern("sort");
/// assert_eq!(a, b);
/// assert_eq!(a.as_str(), "sort");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

struct Interner {
    map: std::collections::HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: std::collections::HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `s`, returning its canonical `Symbol`.
    pub fn intern(s: &str) -> Symbol {
        let mut i = interner().lock();
        if let Some(&ix) = i.map.get(s) {
            return Symbol(ix);
        }
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        let ix = u32::try_from(i.strings.len()).expect("interner overflow");
        i.strings.push(leaked);
        i.map.insert(leaked, ix);
        Symbol(ix)
    }

    /// Returns the interned string.
    pub fn as_str(self) -> &'static str {
        interner().lock().strings[self.0 as usize]
    }

    /// Returns `true` if this symbol starts with an uppercase ASCII letter —
    /// the convention our workload generator uses for module names.
    pub fn is_capitalized(self) -> bool {
        self.as_str()
            .chars()
            .next()
            .is_some_and(|c| c.is_ascii_uppercase())
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.as_str())
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl Serialize for Symbol {
    fn serialize<S: Serializer>(&self, ser: S) -> Result<S::Ok, S::Error> {
        ser.serialize_str(self.as_str())
    }
}

impl<'de> Deserialize<'de> for Symbol {
    fn deserialize<D: Deserializer<'de>>(de: D) -> Result<Self, D::Error> {
        let s = String::deserialize(de)?;
        if s.is_empty() {
            return Err(D::Error::custom("empty symbol"));
        }
        Ok(Symbol::intern(&s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("foo");
        let b = Symbol::intern("foo");
        let c = Symbol::intern("bar");
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.as_str(), "foo");
        assert_eq!(c.as_str(), "bar");
    }

    #[test]
    fn display_matches_source() {
        let s = Symbol::intern("TopSort");
        assert_eq!(s.to_string(), "TopSort");
        assert!(s.is_capitalized());
        assert!(!Symbol::intern("sort").is_capitalized());
    }

    #[test]
    fn debug_is_nonempty() {
        assert_eq!(format!("{:?}", Symbol::intern("x")), "Symbol(\"x\")");
    }

    #[test]
    fn ordering_is_stable_per_symbol() {
        let a = Symbol::intern("aaa-order");
        let b = Symbol::intern("bbb-order");
        // Ordering is by interner index; all we promise is consistency.
        assert_eq!(a.cmp(&b), a.cmp(&b));
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn many_symbols_do_not_collide() {
        let syms: Vec<Symbol> = (0..1000)
            .map(|i| Symbol::intern(&format!("s{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("s{i}"));
        }
    }
}
