//! Identifiers for the `smlsc` separate-compilation system.
//!
//! This crate provides the three kinds of names that Appel & MacQueen's
//! *Separate Compilation for Standard ML* (PLDI 1994) builds on:
//!
//! * [`Symbol`] — interned source-level identifiers (`List`, `sort`, `'a`).
//! * [`Stamp`] — generative time-stamps attached to every "significant"
//!   static object (structures, signatures, type constructors, functors).
//!   Stamps give object *identity* inside one elaboration session and serve
//!   as indices for the indexed environments of §5 of the paper.
//! * [`Pid`] — 128-bit *persistent identifiers*: content digests of static
//!   environments.  Pids are the paper's central device: a unit's export
//!   interface is named by the hash of its digested static environment, so
//!   two compilations that produce the same interface produce the same pid,
//!   and *cutoff recompilation* can stop a rebuild cascade by comparing pids.
//!
//! The digest itself lives in [`digest`]: a streaming 128-bit hash with the
//! same role as the paper's 128-bit CRC, plus truncated-width variants used
//! by the collision experiments (E2 in `EXPERIMENTS.md`).
//!
//! # Examples
//!
//! ```
//! use smlsc_ids::{Symbol, Pid, digest::Digest128};
//!
//! let s = Symbol::intern("TopSort");
//! assert_eq!(s.as_str(), "TopSort");
//! assert_eq!(s, Symbol::intern("TopSort")); // interned: O(1) equality
//!
//! let mut d = Digest128::new();
//! d.write_str("signature SORT");
//! let pid: Pid = d.finish_pid();
//! assert_ne!(pid, Pid::NULL);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod digest;
pub mod pid_cell;
pub mod stamp;
pub mod symbol;

pub use digest::{Digest128, Pid};
pub use pid_cell::PidCell;
pub use stamp::{Stamp, StampGenerator};
pub use symbol::Symbol;
