//! Generative stamps for "significant" static objects.
//!
//! §4 of the paper: *"Every 'significant' object (module, signature, or
//! type constructor) has its own 'stamp'"*.  Stamps are generated fresh by
//! the elaborator whenever a generative construct is elaborated (a
//! `datatype` declaration, a `structure` expression, an opaque ascription)
//! and serve three roles:
//!
//! 1. **identity** — two type constructors are the same type iff their
//!    stamps are equal;
//! 2. **indexing** — the indexed context environments of §5 map stamps to
//!    objects so the rehydrater can find the real pointer for a stub;
//! 3. **alpha-conversion during hashing** — intrinsic-pid computation
//!    renumbers the stamps *bound* by a unit 1..n in traversal order so the
//!    hash is independent of the session's global stamp counter.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use serde::{Deserialize, Serialize};

/// A generative stamp.
///
/// Stamps are totally ordered and hashable; their numeric value is
/// meaningless outside the session that generated them (which is exactly
/// why pid hashing alpha-converts them; see `smlsc-core`'s hasher).
///
/// # Examples
///
/// ```
/// use smlsc_ids::StampGenerator;
/// let mut g = StampGenerator::new();
/// let a = g.fresh();
/// let b = g.fresh();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Stamp(u64);

impl Stamp {
    /// Constructs a stamp from a raw number.
    ///
    /// Intended for the pickler (which renumbers stamps on rehydration) and
    /// the pid hasher (which alpha-converts them); ordinary elaboration
    /// should go through [`StampGenerator::fresh`].
    pub fn from_raw(n: u64) -> Stamp {
        Stamp(n)
    }

    /// The raw numeric value.
    pub fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Stamp({})", self.0)
    }
}

impl fmt::Display for Stamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// A source of fresh stamps.
///
/// Each elaboration session owns one generator; the global process-wide
/// generator ([`StampGenerator::global_fresh`]) backs convenience
/// constructors in tests.  Generators hand out stamps from disjoint ranges
/// of a process-global counter so that stamps from different sessions never
/// collide (mirroring the paper's "stamps are unique within a process").
#[derive(Debug)]
pub struct StampGenerator(());

static NEXT_STAMP: AtomicU64 = AtomicU64::new(1);

impl StampGenerator {
    /// Creates a generator.
    pub fn new() -> StampGenerator {
        StampGenerator(())
    }

    /// Returns a stamp never returned before in this process.
    pub fn fresh(&mut self) -> Stamp {
        Stamp(NEXT_STAMP.fetch_add(1, Ordering::Relaxed))
    }

    /// Process-global fresh stamp, for contexts without a generator handle.
    pub fn global_fresh() -> Stamp {
        Stamp(NEXT_STAMP.fetch_add(1, Ordering::Relaxed))
    }

    /// The raw value the *next* stamp would get.  Used to delimit
    /// generative stamp ranges (functor bodies, signature templates): all
    /// stamps created between two `peek_raw` calls on one thread of
    /// elaboration fall in `[lo, hi)`.
    pub fn peek_raw() -> u64 {
        NEXT_STAMP.load(Ordering::Relaxed)
    }
}

impl Default for StampGenerator {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_stamps_are_distinct() {
        let mut g = StampGenerator::new();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            assert!(seen.insert(g.fresh()));
        }
    }

    #[test]
    fn global_and_local_share_counter() {
        let mut g = StampGenerator::new();
        let a = g.fresh();
        let b = StampGenerator::global_fresh();
        let c = g.fresh();
        assert!(a < b && b < c);
    }

    #[test]
    fn raw_round_trip() {
        let s = Stamp::from_raw(42);
        assert_eq!(s.as_raw(), 42);
        assert_eq!(s.to_string(), "s42");
    }
}
