//! 128-bit content digests and persistent identifiers.
//!
//! The paper names interfaces by a 128-bit CRC of the digested static
//! environment and argues (§5) that at 2¹³ pids the collision probability
//! is about 2⁻¹⁰², so pids may be treated as intrinsic names.  We keep the
//! contract (streaming, deterministic, 128 bits, uniform) but use two
//! independent 64-bit mixing lanes with a strong finalizer instead of a
//! table-driven CRC; the collision analysis depends only on uniformity and
//! width, which experiment E2 checks empirically at truncated widths.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A 128-bit persistent identifier: the digest of a static environment.
///
/// Pids are *intrinsic* names (§5): equal interfaces get equal pids, so
/// comparing pids implements cutoff recompilation, and the linker's
/// import/export pid check implements type-safe linkage.
///
/// # Examples
///
/// ```
/// use smlsc_ids::{Digest128, Pid};
/// let mut d = Digest128::new();
/// d.write_str("val sort : t list -> t list");
/// let p1 = d.finish_pid();
///
/// let mut d = Digest128::new();
/// d.write_str("val sort : t list -> t list");
/// assert_eq!(p1, d.finish_pid()); // deterministic
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Pid(u128);

impl Pid {
    /// The all-zero pid, used as a placeholder before hashing completes.
    pub const NULL: Pid = Pid(0);

    /// Constructs a pid from its raw 128-bit value.
    pub fn from_raw(v: u128) -> Pid {
        Pid(v)
    }

    /// The raw 128-bit value.
    pub fn as_raw(self) -> u128 {
        self.0
    }

    /// Digest of a byte string, as a convenience for source-text pids.
    pub fn of_bytes(bytes: &[u8]) -> Pid {
        let mut d = Digest128::new();
        d.write_bytes(bytes);
        d.finish_pid()
    }

    /// Truncates the pid to its low `bits` bits (1..=128).
    ///
    /// Used by the collision experiment (E2) to make birthday collisions
    /// reachable at small widths.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is 0 or greater than 128.
    pub fn truncate(self, bits: u32) -> u128 {
        assert!((1..=128).contains(&bits), "bits must be in 1..=128");
        if bits == 128 {
            self.0
        } else {
            self.0 & ((1u128 << bits) - 1)
        }
    }
}

impl fmt::Debug for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pid({:032x})", self.0)
    }
}

impl fmt::Display for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

impl fmt::LowerHex for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Pid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

const LANE0_SEED: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
const LANE1_SEED: u64 = 0x9e37_79b9_7f4a_7c15; // golden-ratio increment
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

#[inline]
fn splitmix_finalize(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A streaming 128-bit hasher.
///
/// Two independent 64-bit lanes are updated per byte (an FNV-1a lane and a
/// rotate-multiply lane) and cross-mixed by a splitmix64 finalizer; the
/// result plays the role of the paper's 128-bit CRC.  The hasher also
/// counts bytes so that distinct-length inputs sharing a prefix digest
/// differently.
#[derive(Debug, Clone)]
pub struct Digest128 {
    lane0: u64,
    lane1: u64,
    len: u64,
}

impl Digest128 {
    /// Creates a fresh hasher.
    pub fn new() -> Digest128 {
        Digest128 {
            lane0: LANE0_SEED,
            lane1: LANE1_SEED,
            len: 0,
        }
    }

    /// Absorbs raw bytes.
    ///
    /// The lane recurrences are strictly sequential, so the fast path does
    /// not change the math — it loads eight bytes as one little-endian word
    /// (one load, no per-byte bounds checks) and lets the constant-trip
    /// inner loop unroll.  Output is byte-for-byte identical to the scalar
    /// loop; the golden-value tests below pin every produced digest.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        let mut lane0 = self.lane0;
        let mut lane1 = self.lane1;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let mut word = u64::from_le_bytes(chunk.try_into().unwrap());
            for _ in 0..8 {
                let b = word & 0xff;
                lane0 = (lane0 ^ b).wrapping_mul(FNV_PRIME);
                lane1 = lane1
                    .rotate_left(13)
                    .wrapping_mul(0xff51_afd7_ed55_8ccd)
                    .wrapping_add(b);
                word >>= 8;
            }
        }
        for &b in chunks.remainder() {
            let b = u64::from(b);
            lane0 = (lane0 ^ b).wrapping_mul(FNV_PRIME);
            lane1 = lane1
                .rotate_left(13)
                .wrapping_mul(0xff51_afd7_ed55_8ccd)
                .wrapping_add(b);
        }
        self.lane0 = lane0;
        self.lane1 = lane1;
        self.len = self.len.wrapping_add(bytes.len() as u64);
    }

    /// Absorbs a string (length-prefixed, so `"ab" + "c"` ≠ `"a" + "bc"`).
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Absorbs a little-endian `u64`.
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a little-endian `u128` (e.g. another pid).
    pub fn write_u128(&mut self, v: u128) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Absorbs a single tag byte; used to separate constructor cases so
    /// that structurally different values cannot collide by concatenation.
    pub fn write_tag(&mut self, tag: u8) {
        self.write_bytes(&[tag]);
    }

    /// Absorbs another pid.
    pub fn write_pid(&mut self, p: Pid) {
        self.write_u128(p.as_raw());
    }

    /// Finishes the digest, producing the raw 128-bit value.
    pub fn finish(&self) -> u128 {
        let a = splitmix_finalize(self.lane0 ^ self.len);
        let b = splitmix_finalize(self.lane1.wrapping_add(self.len));
        // Cross-mix so each output bit depends on both lanes.
        let hi = splitmix_finalize(a ^ b.rotate_left(32));
        let lo = splitmix_finalize(b ^ a.rotate_left(17));
        (u128::from(hi) << 64) | u128::from(lo)
    }

    /// Finishes the digest as a [`Pid`].
    pub fn finish_pid(&self) -> Pid {
        Pid(self.finish())
    }
}

impl Default for Digest128 {
    fn default() -> Self {
        Self::new()
    }
}

/// The birthday-bound collision probability of §5, computed in log₂ space
/// so it is meaningful even for w = 128.
///
/// The paper counts "2¹³ pids, 2²⁶ pairs" — i.e. it bounds by `n²/2^w`
/// (ordered pairs, a factor-2-conservative birthday bound); we reproduce
/// that arithmetic: 2¹³ pids at 128 bits ⇒ log₂ p = −102.
///
/// # Examples
///
/// ```
/// use smlsc_ids::digest::log2_collision_probability;
/// let lg = log2_collision_probability(1 << 13, 128);
/// assert!((lg - (-102.0)).abs() < 1.0);
/// ```
pub fn log2_collision_probability(n: u64, width_bits: u32) -> f64 {
    if n < 2 {
        return f64::NEG_INFINITY;
    }
    2.0 * (n as f64).log2() - f64::from(width_bits)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Digest128::new();
        a.write_str("hello");
        a.write_u64(7);
        let mut b = Digest128::new();
        b.write_str("hello");
        b.write_u64(7);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn length_prefix_separates_concatenations() {
        let mut a = Digest128::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Digest128::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn empty_input_is_not_null() {
        assert_ne!(Digest128::new().finish_pid(), Pid::NULL);
    }

    #[test]
    fn truncate_masks_low_bits() {
        let p = Pid::from_raw(u128::MAX);
        assert_eq!(p.truncate(8), 0xff);
        assert_eq!(p.truncate(128), u128::MAX);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=128")]
    fn truncate_zero_panics() {
        let _ = Pid::from_raw(1).truncate(0);
    }

    #[test]
    fn paper_collision_figure() {
        // §5: "perhaps 2^13 pids ... probability of collision is 2^-102".
        let lg = log2_collision_probability(1 << 13, 128);
        assert!((lg + 102.0).abs() < 1.0, "got {lg}");
    }

    #[test]
    fn distinct_inputs_rarely_collide() {
        use std::collections::HashSet;
        let mut seen = HashSet::new();
        for i in 0..100_000u64 {
            let mut d = Digest128::new();
            d.write_u64(i);
            assert!(seen.insert(d.finish()), "collision at {i}");
        }
    }

    #[test]
    fn low_bits_are_uniformish() {
        // Rough chi-square sanity check on the low byte.
        let mut counts = [0u32; 256];
        let n = 256 * 200;
        for i in 0..n {
            let mut d = Digest128::new();
            d.write_u64(i as u64);
            counts[(d.finish() & 0xff) as usize] += 1;
        }
        let expected = (n / 256) as f64;
        let chi2: f64 = counts
            .iter()
            .map(|&c| {
                let d = f64::from(c) - expected;
                d * d / expected
            })
            .sum();
        // 255 degrees of freedom; mean 255, sd ~22.6. Allow 6 sigma.
        assert!(chi2 < 255.0 + 6.0 * 22.6, "chi2 = {chi2}");
    }

    #[test]
    fn display_is_32_hex_digits() {
        let p = Pid::of_bytes(b"x");
        assert_eq!(p.to_string().len(), 32);
    }

    /// Golden digests captured from the original byte-at-a-time
    /// `write_bytes` loop.  Any change to these values silently changes
    /// every pid on disk (bin caches, stamp caches, the shared store), so
    /// a failure here means "you changed the hash function", not "update
    /// the constants".
    #[test]
    fn golden_values_are_stable() {
        let cases: [(&[u8], u128); 6] = [
            (b"", 0xdcecd1ded843e81eaa3841e77928af5e),
            (b"a", 0xd5b9c5d08c50741baa156805f982cfec),
            (b"hello, world", 0x0c045df2987eea398ee7b7ef3c72570b),
            (&BYTES_0_TO_255, 0x482c82ecafd3e187206da9132cd5fa82),
            (&[0xab; 4096], 0x2b9b7267d3c086b5e9027563bce72230),
            (
                b"structure A = struct fun f x = x + 1 end",
                0x0700508c359a50d92c31e85011ab3318,
            ),
        ];
        for (input, want) in cases {
            let mut d = Digest128::new();
            d.write_bytes(input);
            assert_eq!(
                d.finish(),
                want,
                "digest of {}-byte input changed",
                input.len()
            );
        }
    }

    const BYTES_0_TO_255: [u8; 256] = {
        let mut a = [0u8; 256];
        let mut i = 0;
        while i < 256 {
            a[i] = i as u8;
            i += 1;
        }
        a
    };

    #[test]
    fn golden_mixed_writes_are_stable() {
        let mut d = Digest128::new();
        d.write_str("val sort : t list -> t list");
        d.write_u64(1994);
        d.write_tag(7);
        d.write_u128(0xdead_beef);
        assert_eq!(d.finish(), 0xa8737134693890eb98f3a14f6d4961d0);
    }

    /// The word-at-a-time fast path and the byte remainder path must agree
    /// for every split of the input, including lengths that are not a
    /// multiple of 8 and writes that straddle chunk boundaries.
    #[test]
    fn split_writes_match_single_write() {
        let data: Vec<u8> = (0..64u32)
            .map(|i| (i.wrapping_mul(37) & 0xff) as u8)
            .collect();
        for len in 0..data.len() {
            let mut whole = Digest128::new();
            whole.write_bytes(&data[..len]);
            for cut in 0..=len {
                let mut split = Digest128::new();
                split.write_bytes(&data[..cut]);
                split.write_bytes(&data[cut..len]);
                assert_eq!(
                    whole.finish(),
                    split.finish(),
                    "len {len} split at {cut} diverged"
                );
            }
        }
    }

    #[test]
    fn tag_bytes_separate_constructors() {
        let mut a = Digest128::new();
        a.write_tag(1);
        a.write_u64(5);
        let mut b = Digest128::new();
        b.write_tag(2);
        b.write_u64(5);
        assert_ne!(a.finish(), b.finish());
    }
}

#[cfg(test)]
mod avalanche_tests {
    use super::*;

    /// Flipping one input bit should flip roughly half the output bits —
    /// the uniformity E2's collision analysis assumes.
    #[test]
    fn single_bit_avalanche() {
        let base = {
            let mut d = Digest128::new();
            d.write_u64(0xdead_beef_cafe_f00d);
            d.finish()
        };
        let mut total = 0u32;
        let trials = 64;
        for bit in 0..trials {
            let mut d = Digest128::new();
            d.write_u64(0xdead_beef_cafe_f00d ^ (1u64 << bit));
            total += (d.finish() ^ base).count_ones();
        }
        let mean = f64::from(total) / f64::from(trials);
        // Expected 64 of 128 bits; allow a generous band.
        assert!((44.0..=84.0).contains(&mean), "mean flipped bits = {mean}");
    }

    /// No trivial relationship between digests of sequential inputs.
    #[test]
    fn sequential_inputs_are_uncorrelated() {
        let mut prev: Option<u128> = None;
        for i in 0..256u64 {
            let mut d = Digest128::new();
            d.write_u64(i);
            let h = d.finish();
            if let Some(p) = prev {
                let diff: u32 = (h ^ p).count_ones();
                assert!(diff > 20, "digests of {i} and {} too similar", i - 1);
            }
            prev = Some(h);
        }
    }
}
