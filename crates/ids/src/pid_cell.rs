//! A thread-safe, late-filled pid slot.
//!
//! Static entities (tycons, structures, signatures, functors) are born
//! without a persistent identity; the compilation manager fills the pid
//! when the entity is first exported (§5).  The slot used to be a
//! `Cell<Option<Pid>>`, which kept environments `!Sync`; [`PidCell`]
//! offers the same get/set surface over a mutex so shared environments
//! can cross threads.

use std::fmt;

use parking_lot::Mutex;

use crate::Pid;

/// A mutable, shareable `Option<Pid>` slot.
pub struct PidCell(Mutex<Option<Pid>>);

impl PidCell {
    /// A cell holding `value`.
    pub fn new(value: Option<Pid>) -> PidCell {
        PidCell(Mutex::new(value))
    }

    /// The current pid, if one has been assigned.
    pub fn get(&self) -> Option<Pid> {
        *self.0.lock()
    }

    /// Assigns (or clears) the pid.
    pub fn set(&self, value: Option<Pid>) {
        *self.0.lock() = value;
    }
}

impl Default for PidCell {
    fn default() -> PidCell {
        PidCell::new(None)
    }
}

impl fmt::Debug for PidCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PidCell({:?})", self.get())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set_roundtrip() {
        let c = PidCell::new(None);
        assert_eq!(c.get(), None);
        let pid = Pid::of_bytes(b"x");
        c.set(Some(pid));
        assert_eq!(c.get(), Some(pid));
        c.set(None);
        assert_eq!(c.get(), None);
    }

    #[test]
    fn is_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<PidCell>();
    }
}
