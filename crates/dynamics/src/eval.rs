//! The interpreter: `execute : code × import values → export value`.
//!
//! Exceptions propagate as the `Err` side of an internal result so that
//! `handle` can intercept them; escaping exceptions and genuine runtime
//! errors (which type-checked code should never produce) surface as
//! [`EvalError`].

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use smlsc_ids::Symbol;
use smlsc_syntax::ast::PrimOp;

use crate::ir::{Ir, IrDec, IrPat, IrRule};
use crate::value::{bind, lookup, Closure, Env, ExnId, ExnPacket, FunctorClosure, Value};

/// Why execution stopped abnormally.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// An SML exception escaped to the top level.
    UncaughtException(String),
    /// The code was ill-formed (impossible for elaborator output): unbound
    /// lvar, missing import, applying a non-function, etc.
    Malformed(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UncaughtException(e) => write!(f, "uncaught exception: {e}"),
            EvalError::Malformed(m) => write!(f, "malformed code: {m}"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Abnormal control flow during evaluation.
enum Control {
    /// A raised SML exception, catchable by `handle`.
    Raise(Value),
    /// Ill-formed code; never catchable.
    Broken(String),
}

type EvalResult = Result<Value, Control>;

static NEXT_EXN_ID: AtomicU64 = AtomicU64::new(1);

fn fresh_exn(name: Symbol, has_arg: bool) -> Rc<ExnId> {
    Rc::new(ExnId {
        id: NEXT_EXN_ID.fetch_add(1, Ordering::Relaxed),
        name,
        has_arg,
    })
}

fn builtin_exn(name: &str) -> Value {
    Value::Exn(Rc::new(ExnPacket {
        con: fresh_exn(Symbol::intern(name), false),
        arg: None,
    }))
}

/// Executes a code object with the given import records.
///
/// `imports[i]` is the export record of the unit filling import slot `i`
/// (the linker established which unit that is and verified its pid).
///
/// # Errors
///
/// Returns [`EvalError::UncaughtException`] if an SML exception escapes,
/// or [`EvalError::Malformed`] if the code is not valid elaborator output.
///
/// # Examples
///
/// ```
/// use smlsc_dynamics::{execute, ir::Ir};
/// use smlsc_dynamics::value::Value;
/// let v = execute(&Ir::Int(7), &[]).unwrap();
/// assert_eq!(v, Value::Int(7));
/// ```
pub fn execute(code: &Ir, imports: &[Value]) -> Result<Value, EvalError> {
    execute_limited(code, imports, u64::MAX)
}

/// Like [`execute`], but aborts with [`EvalError::Malformed`] after
/// `max_steps` evaluation steps, and also bounds evaluation *depth* (the
/// interpreter recurses on the host stack, so runaway non-tail recursion
/// would otherwise overflow before any step budget is spent) — a guard
/// for interactive use, where an accidental `fun loop x = loop x` should
/// not take down the session.
pub fn execute_limited(code: &Ir, imports: &[Value], max_steps: u64) -> Result<Value, EvalError> {
    let max_depth = if max_steps == u64::MAX {
        u64::MAX
    } else {
        4_000
    };
    let mut ev = Evaluator {
        imports,
        steps: 0,
        max_steps,
        depth: 0,
        max_depth,
    };
    match ev.eval(code, &None) {
        Ok(v) => Ok(v),
        Err(Control::Raise(exn)) => Err(EvalError::UncaughtException(exn.to_string())),
        Err(Control::Broken(m)) => Err(EvalError::Malformed(m)),
    }
}

struct Evaluator<'a> {
    imports: &'a [Value],
    steps: u64,
    max_steps: u64,
    depth: u64,
    max_depth: u64,
}

impl<'a> Evaluator<'a> {
    fn broken(&self, msg: impl Into<String>) -> Control {
        Control::Broken(msg.into())
    }

    fn eval(&mut self, ir: &Ir, env: &Env) -> EvalResult {
        self.steps += 1;
        if self.steps > self.max_steps {
            return Err(self.broken(format!("step limit {} exceeded", self.max_steps)));
        }
        self.depth += 1;
        if self.depth > self.max_depth {
            self.depth -= 1;
            return Err(self.broken(format!("depth limit {} exceeded", self.max_depth)));
        }
        let result = self.eval_inner(ir, env);
        self.depth -= 1;
        result
    }

    fn eval_inner(&mut self, ir: &Ir, env: &Env) -> EvalResult {
        match ir {
            Ir::Int(n) => Ok(Value::Int(*n)),
            Ir::Str(s) => Ok(Value::Str(Rc::from(s.as_str()))),
            Ir::Unit => Ok(Value::Unit),
            Ir::Local(v) => lookup(env, *v).ok_or_else(|| self.broken(format!("unbound lvar {v}"))),
            Ir::Import(i) => self
                .imports
                .get(*i as usize)
                .cloned()
                .ok_or_else(|| self.broken(format!("missing import slot {i}"))),
            Ir::Select(e, slot) => match self.eval(e, env)? {
                Value::Record(fields) | Value::Tuple(fields) => fields
                    .get(*slot as usize)
                    .cloned()
                    .ok_or_else(|| self.broken(format!("select {slot} out of range"))),
                other => Err(self.broken(format!("select from non-record {other}"))),
            },
            Ir::Record(es) => {
                let mut vs = Vec::with_capacity(es.len());
                for e in es {
                    vs.push(self.eval(e, env)?);
                }
                Ok(Value::Record(Rc::new(vs)))
            }
            Ir::Tuple(es) => {
                let mut vs = Vec::with_capacity(es.len());
                for e in es {
                    vs.push(self.eval(e, env)?);
                }
                Ok(Value::Tuple(Rc::new(vs)))
            }
            Ir::Con(con, arg) => {
                let arg = match arg {
                    None => None,
                    Some(e) => Some(Rc::new(self.eval(e, env)?)),
                };
                Ok(Value::Data { con: *con, arg })
            }
            Ir::ConFn(con) => {
                // Represent the eta-expanded constructor as a closure whose
                // single rule binds lvar 0 in an empty environment; the tag
                // is baked into the body.
                Ok(Value::Closure(Rc::new(Closure {
                    rules: vec![IrRule {
                        pat: IrPat::Var(u32::MAX),
                        body: Ir::Con(*con, Some(Box::new(Ir::Local(u32::MAX)))),
                    }],
                    env: RefCell::new(None),
                })))
            }
            Ir::App(f, a) => {
                let fv = self.eval(f, env)?;
                let av = self.eval(a, env)?;
                self.apply(fv, av)
            }
            Ir::Prim(op, args) => {
                let mut vs = Vec::with_capacity(args.len());
                for a in args {
                    vs.push(self.eval(a, env)?);
                }
                self.prim(*op, vs)
            }
            Ir::Fn(rules) => Ok(Value::Closure(Rc::new(Closure {
                rules: rules.clone(),
                env: RefCell::new(env.clone()),
            }))),
            Ir::Case(scrut, rules) => {
                let v = self.eval(scrut, env)?;
                self.match_rules(&v, rules, env)?
                    .ok_or(Control::Raise(builtin_exn("Match")))
                    .and_then(|(body, env2)| self.eval(&body, &env2))
            }
            Ir::If(c, t, e) => match self.eval(c, env)?.as_bool() {
                Some(true) => self.eval(t, env),
                Some(false) => self.eval(e, env),
                None => Err(self.broken("if on non-bool")),
            },
            Ir::Let(decs, body) => {
                let mut env = env.clone();
                for d in decs {
                    env = self.eval_dec(d, &env)?;
                }
                self.eval(body, &env)
            }
            Ir::Seq(es) => {
                let mut last = Value::Unit;
                for e in es {
                    last = self.eval(e, env)?;
                }
                Ok(last)
            }
            Ir::Raise(e) => {
                let v = self.eval(e, env)?;
                match v {
                    Value::Exn(_) => Err(Control::Raise(v)),
                    other => Err(self.broken(format!("raise of non-exception {other}"))),
                }
            }
            Ir::Handle(e, rules) => match self.eval(e, env) {
                Err(Control::Raise(exn)) => {
                    match self.match_rules(&exn, rules, env)? {
                        Some((body, env2)) => self.eval(&body, &env2),
                        None => Err(Control::Raise(exn)), // re-raise
                    }
                }
                other => other,
            },
            Ir::Functor { param, body } => Ok(Value::Functor(Rc::new(FunctorClosure {
                param: *param,
                body: (**body).clone(),
                env: env.clone(),
            }))),
        }
    }

    fn apply(&mut self, f: Value, arg: Value) -> EvalResult {
        match f {
            Value::Closure(c) => {
                let env = c.env.borrow().clone();
                match self.match_rules(&arg, &c.rules, &env)? {
                    Some((body, env2)) => self.eval(&body, &env2),
                    None => Err(Control::Raise(builtin_exn("Match"))),
                }
            }
            Value::Functor(fc) => {
                let env = bind(&fc.env, fc.param, arg);
                self.eval(&fc.body.clone(), &env)
            }
            Value::ExnCon(id) => Ok(Value::Exn(Rc::new(ExnPacket {
                con: id,
                arg: Some(arg),
            }))),
            other => Err(self.broken(format!("apply of non-function {other}"))),
        }
    }

    fn eval_dec(&mut self, dec: &IrDec, env: &Env) -> Result<Env, Control> {
        match dec {
            IrDec::Val(pat, e) => {
                let v = self.eval(e, env)?;
                let mut env2 = env.clone();
                if self.match_pat(pat, &v, &mut env2, env)? {
                    Ok(env2)
                } else {
                    Err(Control::Raise(builtin_exn("Bind")))
                }
            }
            IrDec::Fix(funs) => {
                // Allocate every closure with a placeholder environment,
                // then patch each to see the whole group (knot-tying).
                let closures: Vec<Rc<Closure>> = funs
                    .iter()
                    .map(|(_, rules)| {
                        Rc::new(Closure {
                            rules: rules.clone(),
                            env: RefCell::new(None),
                        })
                    })
                    .collect();
                let mut env2 = env.clone();
                for ((lvar, _), c) in funs.iter().zip(&closures) {
                    env2 = bind(&env2, *lvar, Value::Closure(c.clone()));
                }
                for c in &closures {
                    *c.env.borrow_mut() = env2.clone();
                }
                Ok(env2)
            }
            IrDec::Exception {
                lvar,
                name,
                has_arg,
            } => {
                let id = fresh_exn(*name, *has_arg);
                let v = if *has_arg {
                    Value::ExnCon(id)
                } else {
                    Value::Exn(Rc::new(ExnPacket { con: id, arg: None }))
                };
                Ok(bind(env, *lvar, v))
            }
        }
    }

    /// Finds the first rule matching `v`; returns its body and extended
    /// environment.  Rule bodies are cloned (cheap: `Ir` is a tree of
    /// boxes) so the borrow on the rules ends before evaluation.
    fn match_rules(
        &mut self,
        v: &Value,
        rules: &[IrRule],
        env: &Env,
    ) -> Result<Option<(Ir, Env)>, Control> {
        for r in rules {
            let mut env2 = env.clone();
            if self.match_pat(&r.pat, v, &mut env2, env)? {
                return Ok(Some((r.body.clone(), env2)));
            }
        }
        Ok(None)
    }

    /// Matches `v` against `pat`, extending `binds`.  `scope` is the
    /// environment in which exception-constructor references inside the
    /// pattern are evaluated.
    fn match_pat(
        &mut self,
        pat: &IrPat,
        v: &Value,
        binds: &mut Env,
        scope: &Env,
    ) -> Result<bool, Control> {
        match pat {
            IrPat::Wild => Ok(true),
            IrPat::Var(lv) => {
                *binds = bind(binds, *lv, v.clone());
                Ok(true)
            }
            IrPat::Int(n) => Ok(matches!(v, Value::Int(m) if m == n)),
            IrPat::Str(s) => Ok(matches!(v, Value::Str(t) if t.as_ref() == s.as_str())),
            IrPat::Unit => Ok(matches!(v, Value::Unit)),
            IrPat::Tuple(ps) => match v {
                Value::Tuple(vs) if vs.len() == ps.len() => {
                    for (p, v) in ps.iter().zip(vs.iter()) {
                        if !self.match_pat(p, v, binds, scope)? {
                            return Ok(false);
                        }
                    }
                    Ok(true)
                }
                _ => Ok(false),
            },
            IrPat::Con(con, argp) => match v {
                Value::Data { con: vc, arg } if vc.tag == con.tag => match (argp, arg) {
                    (None, None) => Ok(true),
                    (Some(p), Some(a)) => self.match_pat(p, a, binds, scope),
                    _ => Ok(false),
                },
                _ => Ok(false),
            },
            IrPat::As(lv, inner) => {
                *binds = bind(binds, *lv, v.clone());
                self.match_pat(inner, v, binds, scope)
            }
            IrPat::Exn(conref, argp) => {
                let cv = self.eval(conref, scope)?;
                match (cv, v) {
                    // Nullary exception constructor: its value IS a packet.
                    (Value::Exn(want), Value::Exn(got)) if argp.is_none() => {
                        Ok(Rc::ptr_eq(&want.con, &got.con))
                    }
                    (Value::ExnCon(want), Value::Exn(got)) => {
                        if !Rc::ptr_eq(&want, &got.con) {
                            return Ok(false);
                        }
                        match (argp, &got.arg) {
                            (Some(p), Some(a)) => self.match_pat(p, a, binds, scope),
                            (None, None) => Ok(true),
                            _ => Ok(false),
                        }
                    }
                    (_, Value::Exn(_)) => Ok(false),
                    _ => Ok(false),
                }
            }
        }
    }

    fn prim(&mut self, op: PrimOp, mut args: Vec<Value>) -> EvalResult {
        use PrimOp::*;
        let arity = match op {
            Neg | ItoS | Size => 1,
            _ => 2,
        };
        if args.len() != arity {
            return Err(self.broken(format!("primitive {} arity {}", op.name(), args.len())));
        }
        let b = if arity == 2 {
            Some(args.pop().expect("arity 2"))
        } else {
            None
        };
        let a = args.pop().expect("arity >= 1");
        match op {
            Neg => match a {
                Value::Int(n) => Ok(Value::Int(-n)),
                _ => Err(self.broken("~ on non-int")),
            },
            ItoS => match a {
                // SML renders negative integers with `~`.
                Value::Int(n) => Ok(Value::Str(Rc::from(
                    if n < 0 {
                        format!("~{}", n.unsigned_abs())
                    } else {
                        n.to_string()
                    }
                    .as_str(),
                ))),
                _ => Err(self.broken("itos on non-int")),
            },
            Size => match a {
                Value::Str(s) => Ok(Value::Int(s.chars().count() as i64)),
                _ => Err(self.broken("size on non-string")),
            },
            Add | Sub | Mul | Div | Mod => {
                let (Value::Int(x), Some(Value::Int(y))) = (&a, &b) else {
                    return Err(self.broken(format!("{} on non-ints", op.name())));
                };
                let (x, y) = (*x, *y);
                match op {
                    Add => Ok(Value::Int(x.wrapping_add(y))),
                    Sub => Ok(Value::Int(x.wrapping_sub(y))),
                    Mul => Ok(Value::Int(x.wrapping_mul(y))),
                    Div | Mod => {
                        if y == 0 {
                            Err(Control::Raise(builtin_exn("Div")))
                        } else if op == Div {
                            Ok(Value::Int(x.div_euclid(y)))
                        } else {
                            Ok(Value::Int(x.rem_euclid(y)))
                        }
                    }
                    _ => unreachable!(),
                }
            }
            Concat => match (&a, &b) {
                (Value::Str(x), Some(Value::Str(y))) => {
                    Ok(Value::Str(Rc::from(format!("{x}{y}").as_str())))
                }
                _ => Err(self.broken("^ on non-strings")),
            },
            Lt | Le | Gt | Ge => {
                let cmp = match (&a, &b) {
                    (Value::Int(x), Some(Value::Int(y))) => x.cmp(y),
                    (Value::Str(x), Some(Value::Str(y))) => x.cmp(y),
                    _ => return Err(self.broken("comparison on unsupported type")),
                };
                let r = match op {
                    Lt => cmp.is_lt(),
                    Le => cmp.is_le(),
                    Gt => cmp.is_gt(),
                    Ge => cmp.is_ge(),
                    _ => unreachable!(),
                };
                Ok(Value::bool(r))
            }
            Eq | Neq => {
                let b = b.expect("arity 2");
                match a.structural_eq(&b) {
                    Some(r) => Ok(Value::bool(if op == Eq { r } else { !r })),
                    None => Err(self.broken("equality on a non-equality type")),
                }
            }
            Append => {
                let (Some(mut xs), Some(ys)) = (a.as_list(), b.as_ref().and_then(Value::as_list))
                else {
                    return Err(self.broken("@ on non-lists"));
                };
                xs.extend(ys);
                Ok(Value::list(xs))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{ConTag, Ir, IrDec, IrPat, IrRule};

    fn run(ir: Ir) -> Value {
        execute(&ir, &[]).unwrap()
    }

    fn int(n: i64) -> Ir {
        Ir::Int(n)
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            run(Ir::Prim(PrimOp::Add, vec![int(2), int(3)])),
            Value::Int(5)
        );
        assert_eq!(
            run(Ir::Prim(PrimOp::Mul, vec![int(4), int(5)])),
            Value::Int(20)
        );
        assert_eq!(run(Ir::Prim(PrimOp::Neg, vec![int(7)])), Value::Int(-7));
        assert_eq!(
            run(Ir::Prim(PrimOp::Mod, vec![int(7), int(3)])),
            Value::Int(1)
        );
    }

    #[test]
    fn division_by_zero_raises_div() {
        let err = execute(&Ir::Prim(PrimOp::Div, vec![int(1), int(0)]), &[]).unwrap_err();
        assert!(matches!(err, EvalError::UncaughtException(ref m) if m.contains("Div")));
    }

    #[test]
    fn closures_and_application() {
        // (fn x => x + 1) 41
        let f = Ir::Fn(vec![IrRule {
            pat: IrPat::Var(0),
            body: Ir::Prim(PrimOp::Add, vec![Ir::Local(0), int(1)]),
        }]);
        assert_eq!(run(Ir::App(Box::new(f), Box::new(int(41)))), Value::Int(42));
    }

    #[test]
    fn let_and_select() {
        // let val t = (1, 2) in #2 t end
        let ir = Ir::Let(
            vec![IrDec::Val(IrPat::Var(0), Ir::Tuple(vec![int(1), int(2)]))],
            Box::new(Ir::Select(Box::new(Ir::Local(0)), 1)),
        );
        assert_eq!(run(ir), Value::Int(2));
    }

    #[test]
    fn recursion_via_fix() {
        // fun fact n = if n = 0 then 1 else n * fact (n - 1); fact 6
        let fact_body = IrRule {
            pat: IrPat::Var(1),
            body: Ir::If(
                Box::new(Ir::Prim(PrimOp::Eq, vec![Ir::Local(1), int(0)])),
                Box::new(int(1)),
                Box::new(Ir::Prim(
                    PrimOp::Mul,
                    vec![
                        Ir::Local(1),
                        Ir::App(
                            Box::new(Ir::Local(0)),
                            Box::new(Ir::Prim(PrimOp::Sub, vec![Ir::Local(1), int(1)])),
                        ),
                    ],
                )),
            ),
        };
        let ir = Ir::Let(
            vec![IrDec::Fix(vec![(0, vec![fact_body])])],
            Box::new(Ir::App(Box::new(Ir::Local(0)), Box::new(int(6)))),
        );
        assert_eq!(run(ir), Value::Int(720));
    }

    #[test]
    fn generative_exceptions_differ_per_execution() {
        // let exception E in E end — two executions yield packets with
        // different identities.
        let ir = Ir::Let(
            vec![IrDec::Exception {
                lvar: 0,
                name: Symbol::intern("E"),
                has_arg: false,
            }],
            Box::new(Ir::Local(0)),
        );
        let a = run(ir.clone());
        let b = run(ir);
        let (Value::Exn(pa), Value::Exn(pb)) = (a, b) else {
            panic!()
        };
        assert!(!Rc::ptr_eq(&pa.con, &pb.con));
    }

    #[test]
    fn handle_catches_matching_exception_only() {
        // let exception A; exception B in (raise A) handle B => 1 | A => 2 end
        let ir = Ir::Let(
            vec![
                IrDec::Exception {
                    lvar: 0,
                    name: Symbol::intern("A"),
                    has_arg: false,
                },
                IrDec::Exception {
                    lvar: 1,
                    name: Symbol::intern("B"),
                    has_arg: false,
                },
            ],
            Box::new(Ir::Handle(
                Box::new(Ir::Raise(Box::new(Ir::Local(0)))),
                vec![
                    IrRule {
                        pat: IrPat::Exn(Box::new(Ir::Local(1)), None),
                        body: int(1),
                    },
                    IrRule {
                        pat: IrPat::Exn(Box::new(Ir::Local(0)), None),
                        body: int(2),
                    },
                ],
            )),
        );
        assert_eq!(run(ir), Value::Int(2));
    }

    #[test]
    fn unhandled_exception_re_raises() {
        let ir = Ir::Let(
            vec![
                IrDec::Exception {
                    lvar: 0,
                    name: Symbol::intern("A"),
                    has_arg: false,
                },
                IrDec::Exception {
                    lvar: 1,
                    name: Symbol::intern("B"),
                    has_arg: false,
                },
            ],
            Box::new(Ir::Handle(
                Box::new(Ir::Raise(Box::new(Ir::Local(0)))),
                vec![IrRule {
                    pat: IrPat::Exn(Box::new(Ir::Local(1)), None),
                    body: int(1),
                }],
            )),
        );
        let err = execute(&ir, &[]).unwrap_err();
        assert!(matches!(err, EvalError::UncaughtException(ref m) if m.contains('A')));
    }

    #[test]
    fn exception_with_argument() {
        // let exception E of int in (raise E 7) handle E n => n end
        let ir = Ir::Let(
            vec![IrDec::Exception {
                lvar: 0,
                name: Symbol::intern("E"),
                has_arg: true,
            }],
            Box::new(Ir::Handle(
                Box::new(Ir::Raise(Box::new(Ir::App(
                    Box::new(Ir::Local(0)),
                    Box::new(int(7)),
                )))),
                vec![IrRule {
                    pat: IrPat::Exn(Box::new(Ir::Local(0)), Some(Box::new(IrPat::Var(1)))),
                    body: Ir::Local(1),
                }],
            )),
        );
        assert_eq!(run(ir), Value::Int(7));
    }

    #[test]
    fn case_match_failure_raises_match() {
        let ir = Ir::Case(
            Box::new(int(5)),
            vec![IrRule {
                pat: IrPat::Int(3),
                body: int(0),
            }],
        );
        let err = execute(&ir, &[]).unwrap_err();
        assert!(matches!(err, EvalError::UncaughtException(ref m) if m.contains("Match")));
    }

    #[test]
    fn val_bind_failure_raises_bind() {
        let ir = Ir::Let(vec![IrDec::Val(IrPat::Int(1), int(2))], Box::new(int(0)));
        let err = execute(&ir, &[]).unwrap_err();
        assert!(matches!(err, EvalError::UncaughtException(ref m) if m.contains("Bind")));
    }

    #[test]
    fn constructor_values_and_patterns() {
        let some = ConTag {
            tag: 1,
            span: 2,
            has_arg: true,
            name: Symbol::intern("SOME"),
        };
        let none = ConTag {
            tag: 0,
            span: 2,
            has_arg: false,
            name: Symbol::intern("NONE"),
        };
        // case SOME 3 of NONE => 0 | SOME x => x
        let ir = Ir::Case(
            Box::new(Ir::Con(some, Some(Box::new(int(3))))),
            vec![
                IrRule {
                    pat: IrPat::Con(none, None),
                    body: int(0),
                },
                IrRule {
                    pat: IrPat::Con(some, Some(Box::new(IrPat::Var(0)))),
                    body: Ir::Local(0),
                },
            ],
        );
        assert_eq!(run(ir), Value::Int(3));
    }

    #[test]
    fn confn_is_first_class() {
        let some = ConTag {
            tag: 1,
            span: 2,
            has_arg: true,
            name: Symbol::intern("SOME"),
        };
        let ir = Ir::App(Box::new(Ir::ConFn(some)), Box::new(int(9)));
        let Value::Data { arg: Some(a), .. } = run(ir) else {
            panic!()
        };
        assert_eq!(*a, Value::Int(9));
    }

    #[test]
    fn imports_are_visible() {
        let rec = Value::Record(Rc::new(vec![Value::Int(10), Value::Int(20)]));
        let ir = Ir::Select(Box::new(Ir::Import(0)), 1);
        assert_eq!(execute(&ir, &[rec]).unwrap(), Value::Int(20));
    }

    #[test]
    fn missing_import_is_malformed() {
        let err = execute(&Ir::Import(3), &[]).unwrap_err();
        assert!(matches!(err, EvalError::Malformed(_)));
    }

    #[test]
    fn functor_application_reexecutes_body() {
        // functor F(X) = struct exception E end — two applications give
        // distinct exceptions.
        let fct = Ir::Functor {
            param: 0,
            body: Box::new(Ir::Let(
                vec![IrDec::Exception {
                    lvar: 1,
                    name: Symbol::intern("E"),
                    has_arg: false,
                }],
                Box::new(Ir::Record(vec![Ir::Local(1)])),
            )),
        };
        let ir = Ir::Let(
            vec![IrDec::Val(IrPat::Var(2), fct)],
            Box::new(Ir::Tuple(vec![
                Ir::Select(
                    Box::new(Ir::App(
                        Box::new(Ir::Local(2)),
                        Box::new(Ir::Record(vec![])),
                    )),
                    0,
                ),
                Ir::Select(
                    Box::new(Ir::App(
                        Box::new(Ir::Local(2)),
                        Box::new(Ir::Record(vec![])),
                    )),
                    0,
                ),
            ])),
        );
        let Value::Tuple(pair) = run(ir) else {
            panic!()
        };
        let (Value::Exn(a), Value::Exn(b)) = (&pair[0], &pair[1]) else {
            panic!()
        };
        assert!(!Rc::ptr_eq(&a.con, &b.con));
    }

    #[test]
    fn andalso_equivalent_if_shortcircuits() {
        // if false then diverge else 0 — uses If directly.
        let diverge = Ir::Prim(PrimOp::Div, vec![int(1), int(0)]);
        let ir = Ir::If(
            Box::new(Ir::Prim(PrimOp::Lt, vec![int(2), int(1)])),
            Box::new(diverge),
            Box::new(int(0)),
        );
        assert_eq!(run(ir), Value::Int(0));
    }

    #[test]
    fn string_ops() {
        assert_eq!(
            run(Ir::Prim(
                PrimOp::Concat,
                vec![Ir::Str("ab".into()), Ir::Str("cd".into())]
            )),
            Value::Str("abcd".into())
        );
        assert_eq!(
            run(Ir::Prim(
                PrimOp::Lt,
                vec![Ir::Str("a".into()), Ir::Str("b".into())]
            )),
            Value::bool(true)
        );
    }

    #[test]
    fn append_lists() {
        let l1 = Ir::Prim(PrimOp::Append, vec![list_ir(&[1, 2]), list_ir(&[3])]);
        assert_eq!(
            run(l1),
            Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)])
        );
    }

    fn list_ir(items: &[i64]) -> Ir {
        let nil = ConTag {
            tag: 0,
            span: 2,
            has_arg: false,
            name: Symbol::intern("nil"),
        };
        let cons = ConTag {
            tag: 1,
            span: 2,
            has_arg: true,
            name: Symbol::intern("::"),
        };
        items.iter().rev().fold(Ir::Con(nil, None), |acc, &n| {
            Ir::Con(cons, Some(Box::new(Ir::Tuple(vec![Ir::Int(n), acc]))))
        })
    }

    #[test]
    fn euclidean_div_mod() {
        // SML div/mod round toward negative infinity.
        assert_eq!(
            run(Ir::Prim(PrimOp::Div, vec![int(-7), int(2)])),
            Value::Int(-4)
        );
        assert_eq!(
            run(Ir::Prim(PrimOp::Mod, vec![int(-7), int(2)])),
            Value::Int(1)
        );
    }
}
