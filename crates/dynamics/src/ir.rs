//! The runtime intermediate representation.
//!
//! Produced by the elaborator (`smlsc-statics`), serialized into bin files
//! by the compilation manager, and executed by [`crate::eval`].  The IR is
//! *position-resolved*: identifiers are gone, replaced by `lvar` numbers
//! and record-slot indices, so executing it requires no environment other
//! than the vector of import records.

use serde::{Deserialize, Serialize};
use smlsc_ids::Symbol;
use smlsc_syntax::ast::PrimOp;

/// A local variable number, unique within one compilation unit's code.
pub type LVar = u32;

/// Runtime description of a datatype constructor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ConTag {
    /// This constructor's index within its datatype.
    pub tag: u32,
    /// Number of constructors in the datatype (for match diagnostics).
    pub span: u32,
    /// Whether the constructor carries an argument.
    pub has_arg: bool,
    /// Source name, kept for printing values.
    pub name: Symbol,
}

/// One arm of a match: pattern and body.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IrRule {
    /// The pattern.
    pub pat: IrPat,
    /// The arm's body.
    pub body: Ir,
}

/// Position-resolved patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IrPat {
    /// Matches anything, binds nothing.
    Wild,
    /// Matches anything, binds the value to an lvar.
    Var(LVar),
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
    /// The unit value.
    Unit,
    /// Tuple of sub-patterns.
    Tuple(Vec<IrPat>),
    /// Datatype constructor (argument pattern present iff `has_arg`).
    Con(ConTag, Option<Box<IrPat>>),
    /// Exception constructor pattern.  The embedded expression evaluates
    /// (at match time) to the constructor's runtime identity; it is always
    /// a variable/slot access, never effectful.
    Exn(Box<Ir>, Option<Box<IrPat>>),
    /// Layered pattern: binds the lvar to the whole value and matches the
    /// sub-pattern against it.
    As(LVar, Box<IrPat>),
}

/// Declarations inside `Let`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum IrDec {
    /// `val pat = exp`; a match failure raises the primitive `Bind`
    /// exception.
    Val(IrPat, Ir),
    /// Mutually recursive functions: each lvar is bound to a closure over
    /// an environment containing *all* of the group (knot-tying).
    Fix(Vec<(LVar, Vec<IrRule>)>),
    /// A generative exception declaration: binds the lvar to a fresh
    /// exception constructor every time it executes.
    Exception {
        /// Variable bound to the constructor value.
        lvar: LVar,
        /// Source name, for printing.
        name: Symbol,
        /// Whether the exception carries an argument.
        has_arg: bool,
    },
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Ir {
    /// Integer constant.
    Int(i64),
    /// String constant.
    Str(String),
    /// The unit value.
    Unit,
    /// A local variable.
    Local(LVar),
    /// The `i`th import record of the unit (supplied by the linker).
    Import(u32),
    /// Positional field selection from a record.
    Select(Box<Ir>, u32),
    /// Builds a structure record (module runtime representation).
    Record(Vec<Ir>),
    /// Builds a tuple.
    Tuple(Vec<Ir>),
    /// Applies a datatype constructor.
    Con(ConTag, Option<Box<Ir>>),
    /// A constructor used as a first-class function (eta-expanded).
    ConFn(ConTag),
    /// Function application (also applies constructors and exception
    /// constructors used as functions).
    App(Box<Ir>, Box<Ir>),
    /// Primitive operator.
    Prim(PrimOp, Vec<Ir>),
    /// `fn match`.
    Fn(Vec<IrRule>),
    /// `case`; no arm matching raises the primitive `Match` exception.
    Case(Box<Ir>, Vec<IrRule>),
    /// Conditional on a runtime bool (datatype tag 1 = `true`).
    If(Box<Ir>, Box<Ir>, Box<Ir>),
    /// Declarations scoped over a body.
    Let(Vec<IrDec>, Box<Ir>),
    /// Sequencing; yields the last value.
    Seq(Vec<Ir>),
    /// `raise`.
    Raise(Box<Ir>),
    /// `handle`; unhandled exceptions re-raise.
    Handle(Box<Ir>, Vec<IrRule>),
    /// A functor value: a function from the argument's record to the
    /// body's record.  Distinct from `Fn` because application re-executes
    /// generative declarations (fresh exceptions) in the body.
    Functor {
        /// lvar bound to the argument record.
        param: LVar,
        /// The body, evaluating to the result record.
        body: Box<Ir>,
    },
}

impl Ir {
    /// Convenience: `Select` chained over a base expression.
    pub fn select_path(base: Ir, slots: &[u32]) -> Ir {
        slots
            .iter()
            .fold(base, |acc, &s| Ir::Select(Box::new(acc), s))
    }

    /// Counts IR nodes, used by tests and the bench harness as a rough
    /// code-size metric.
    pub fn size(&self) -> usize {
        fn rules(rs: &[IrRule]) -> usize {
            rs.iter().map(|r| r.body.size() + 1).sum()
        }
        1 + match self {
            Ir::Int(_) | Ir::Str(_) | Ir::Unit | Ir::Local(_) | Ir::Import(_) | Ir::ConFn(_) => 0,
            Ir::Select(e, _) | Ir::Raise(e) => e.size(),
            Ir::Record(es) | Ir::Tuple(es) | Ir::Seq(es) => es.iter().map(Ir::size).sum(),
            Ir::Con(_, arg) => arg.as_deref().map_or(0, Ir::size),
            Ir::App(f, a) => f.size() + a.size(),
            Ir::Prim(_, es) => es.iter().map(Ir::size).sum(),
            Ir::Fn(rs) => rules(rs),
            Ir::Case(e, rs) | Ir::Handle(e, rs) => e.size() + rules(rs),
            Ir::If(a, b, c) => a.size() + b.size() + c.size(),
            Ir::Let(ds, b) => {
                b.size()
                    + ds.iter()
                        .map(|d| match d {
                            IrDec::Val(_, e) => e.size() + 1,
                            IrDec::Fix(fs) => fs.iter().map(|(_, rs)| rules(rs) + 1).sum(),
                            IrDec::Exception { .. } => 1,
                        })
                        .sum::<usize>()
            }
            Ir::Functor { body, .. } => body.size(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn select_path_builds_nested_selects() {
        let ir = Ir::select_path(Ir::Import(0), &[1, 2]);
        let Ir::Select(inner, 2) = ir else { panic!() };
        let Ir::Select(base, 1) = *inner else {
            panic!()
        };
        assert_eq!(*base, Ir::Import(0));
    }

    #[test]
    fn size_counts_nodes() {
        let ir = Ir::Prim(PrimOp::Add, vec![Ir::Int(1), Ir::Int(2)]);
        assert_eq!(ir.size(), 3);
    }

    #[test]
    fn ir_serializes_round_trip() {
        let ir = Ir::Let(
            vec![IrDec::Val(IrPat::Var(0), Ir::Int(5))],
            Box::new(Ir::Local(0)),
        );
        let json = serde_json::to_string(&ir).unwrap();
        let back: Ir = serde_json::from_str(&json).unwrap();
        assert_eq!(ir, back);
    }
}
