//! Dynamic semantics for `smlsc`: the runtime IR, values, and interpreter.
//!
//! §3 of the paper factors evaluation into `compile` and `execute`:
//!
//! ```text
//! compile : source × statenv → Unit        (statics + translation)
//! execute : code × value vector → value vector
//! ```
//!
//! This crate owns the **`code`** half.  A compiled unit's code is an
//! [`ir::Ir`] term whose free references are *import slots* — positions in
//! the vector of export records supplied by the linker — exactly the
//! paper's "the code is a function that takes a vector of import values
//! and produces a vector of export values".  Code objects are fully
//! serializable (they are stored in bin files) and contain **no static
//! addresses**: local variables are numbered `lvar`s (the paper mentions
//! SML/NJ's "lvar-numbers"), module member access is positional
//! [`ir::Ir::Select`] against record layouts fixed by the elaborator, and
//! everything cross-unit flows through import slots.
//!
//! The interpreter ([`eval`]) implements the semantics: closures,
//! generative exceptions (fresh identity per execution, so functor bodies
//! re-generate their exceptions per application, as SML requires), pattern
//! matching, and the primitive operators.
//!
//! # Examples
//!
//! ```
//! use smlsc_dynamics::{eval::execute, ir::Ir, value::Value};
//! use smlsc_syntax::ast::PrimOp;
//!
//! // code for `1 + 2`, with no imports
//! let code = Ir::Prim(PrimOp::Add, vec![Ir::Int(1), Ir::Int(2)]);
//! let v = execute(&code, &[]).unwrap();
//! assert_eq!(v, Value::Int(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod ir;
pub mod value;

pub use eval::{execute, execute_limited, EvalError};
pub use ir::{ConTag, Ir, IrDec, IrPat, IrRule, LVar};
pub use value::Value;
