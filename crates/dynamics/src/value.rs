//! Runtime values.

use std::fmt;
use std::rc::Rc;

use smlsc_ids::Symbol;

use crate::ir::{ConTag, IrRule, LVar};

/// A runtime value.
///
/// Module-level entities have runtime representations too: a structure is
/// a [`Value::Record`] whose slot layout was fixed by the elaborator, and
/// a functor is a [`Value::Functor`] closure — the paper's point that in
/// ML "linking" is ordinary function application over export records.
#[derive(Debug, Clone)]
pub enum Value {
    /// Integer.
    Int(i64),
    /// String.
    Str(Rc<str>),
    /// The unit value.
    Unit,
    /// Tuple.
    Tuple(Rc<Vec<Value>>),
    /// Structure record (positional module representation).
    Record(Rc<Vec<Value>>),
    /// Datatype value: constructor tag plus optional argument.
    Data {
        /// The constructor.
        con: ConTag,
        /// Its argument, if the constructor takes one.
        arg: Option<Rc<Value>>,
    },
    /// A function closure.
    Closure(Rc<Closure>),
    /// A functor closure.
    Functor(Rc<FunctorClosure>),
    /// An exception constructor that takes an argument (applying it yields
    /// an [`Value::Exn`] packet).
    ExnCon(Rc<ExnId>),
    /// An exception packet (also the value of a nullary exception
    /// constructor).
    Exn(Rc<ExnPacket>),
}

/// A function closure: match rules plus captured environment.
///
/// The environment cell is a `RefCell` so that `Fix` groups can tie the
/// recursion knot after allocating every closure in the group.  `Debug`
/// elides the environment: recursive groups make it cyclic.
pub struct Closure {
    /// The function's match rules.
    pub rules: Vec<IrRule>,
    /// Captured environment (patched once for recursive groups).
    pub env: std::cell::RefCell<Env>,
}

impl fmt::Debug for Closure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Closure({} rules)", self.rules.len())
    }
}

/// A functor closure.  `Debug` elides the captured environment.
pub struct FunctorClosure {
    /// lvar bound to the argument record.
    pub param: LVar,
    /// The functor body.
    pub body: crate::ir::Ir,
    /// Captured environment.
    pub env: Env,
}

impl fmt::Debug for FunctorClosure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FunctorClosure(param {})", self.param)
    }
}

/// The generative identity of an exception constructor.
///
/// A fresh `ExnId` is allocated every time an `exception` declaration
/// *executes* — so a functor body's exceptions are distinct per
/// application, and re-executing a unit re-generates its exceptions.
#[derive(Debug)]
pub struct ExnId {
    /// Process-unique identity.
    pub id: u64,
    /// Source name, for printing.
    pub name: Symbol,
    /// Whether the constructor carries an argument.
    pub has_arg: bool,
}

/// An exception packet: identity plus optional argument value.
#[derive(Debug)]
pub struct ExnPacket {
    /// The constructor's identity.
    pub con: Rc<ExnId>,
    /// The carried argument, if any.
    pub arg: Option<Value>,
}

/// The runtime environment: a persistent association list from lvars to
/// values.  Persistence is what lets closures capture it by reference.
pub type Env = Option<Rc<EnvNode>>;

/// One binding in the environment chain.
#[derive(Debug)]
pub struct EnvNode {
    /// The bound variable.
    pub lvar: LVar,
    /// Its value.
    pub value: Value,
    /// The rest of the environment.
    pub next: Env,
}

/// Extends `env` with a binding.
pub fn bind(env: &Env, lvar: LVar, value: Value) -> Env {
    Some(Rc::new(EnvNode {
        lvar,
        value,
        next: env.clone(),
    }))
}

/// Looks up an lvar.
pub fn lookup(env: &Env, lvar: LVar) -> Option<Value> {
    let mut cur = env;
    while let Some(node) = cur {
        if node.lvar == lvar {
            return Some(node.value.clone());
        }
        cur = &node.next;
    }
    None
}

impl Value {
    /// The runtime `true` value (bool is the pervasive two-constructor
    /// datatype with `false` = tag 0, `true` = tag 1).
    pub fn bool(b: bool) -> Value {
        Value::Data {
            con: ConTag {
                tag: u32::from(b),
                span: 2,
                has_arg: false,
                name: Symbol::intern(if b { "true" } else { "false" }),
            },
            arg: None,
        }
    }

    /// Interprets a runtime bool; `None` if the value is not a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Data { con, arg: None } if con.span == 2 => Some(con.tag == 1),
            _ => None,
        }
    }

    /// Builds an SML list value from values.
    pub fn list(items: Vec<Value>) -> Value {
        let nil = Value::Data {
            con: ConTag {
                tag: 0,
                span: 2,
                has_arg: false,
                name: Symbol::intern("nil"),
            },
            arg: None,
        };
        items.into_iter().rev().fold(nil, |acc, v| Value::Data {
            con: ConTag {
                tag: 1,
                span: 2,
                has_arg: true,
                name: Symbol::intern("::"),
            },
            arg: Some(Rc::new(Value::Tuple(Rc::new(vec![v, acc])))),
        })
    }

    /// Interprets a runtime list; `None` if the value is not a list.
    pub fn as_list(&self) -> Option<Vec<Value>> {
        let mut out = Vec::new();
        let mut cur = self.clone();
        loop {
            match cur {
                Value::Data { con, arg: None } if con.tag == 0 => return Some(out),
                Value::Data {
                    con,
                    arg: Some(cell),
                } if con.tag == 1 => match cell.as_ref() {
                    Value::Tuple(pair) if pair.len() == 2 => {
                        out.push(pair[0].clone());
                        cur = pair[1].clone();
                    }
                    _ => return None,
                },
                _ => return None,
            }
        }
    }

    /// Structural equality as implemented by the `=` primitive.
    ///
    /// Functions, functors and exception constructors are incomparable
    /// (returns `None`), mirroring SML's equality-type restriction
    /// dynamically.
    pub fn structural_eq(&self, other: &Value) -> Option<bool> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a == b),
            (Value::Str(a), Value::Str(b)) => Some(a == b),
            (Value::Unit, Value::Unit) => Some(true),
            (Value::Tuple(a), Value::Tuple(b)) | (Value::Record(a), Value::Record(b)) => {
                if a.len() != b.len() {
                    return Some(false);
                }
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.structural_eq(y) {
                        Some(true) => {}
                        other => return other,
                    }
                }
                Some(true)
            }
            (Value::Data { con: c1, arg: a1 }, Value::Data { con: c2, arg: a2 }) => {
                if c1.tag != c2.tag {
                    return Some(false);
                }
                match (a1, a2) {
                    (None, None) => Some(true),
                    (Some(x), Some(y)) => x.structural_eq(y),
                    _ => Some(false),
                }
            }
            (Value::Exn(a), Value::Exn(b)) => Some(Rc::ptr_eq(&a.con, &b.con)),
            _ => None,
        }
    }
}

impl PartialEq for Value {
    /// Structural equality where defined; closures compare unequal.
    fn eq(&self, other: &Value) -> bool {
        self.structural_eq(other).unwrap_or(false)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(n) => {
                if *n < 0 {
                    write!(f, "~{}", -n)
                } else {
                    write!(f, "{n}")
                }
            }
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Unit => write!(f, "()"),
            Value::Tuple(vs) => {
                write!(f, "(")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")
            }
            Value::Record(vs) => write!(f, "<structure with {} slots>", vs.len()),
            Value::Data { con, arg } => {
                if let Some(items) = self.as_list() {
                    write!(f, "[")?;
                    for (i, v) in items.iter().enumerate() {
                        if i > 0 {
                            write!(f, ", ")?;
                        }
                        write!(f, "{v}")?;
                    }
                    return write!(f, "]");
                }
                match arg {
                    None => write!(f, "{}", con.name),
                    Some(a) => write!(f, "{} {}", con.name, a),
                }
            }
            Value::Closure(_) => write!(f, "fn"),
            Value::Functor(_) => write!(f, "functor"),
            Value::ExnCon(id) => write!(f, "exn {}", id.name),
            Value::Exn(p) => match &p.arg {
                None => write!(f, "exception {}", p.con.name),
                Some(a) => write!(f, "exception {} {}", p.con.name, a),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bool_round_trip() {
        assert_eq!(Value::bool(true).as_bool(), Some(true));
        assert_eq!(Value::bool(false).as_bool(), Some(false));
        assert_eq!(Value::Int(1).as_bool(), None);
    }

    #[test]
    fn list_round_trip() {
        let v = Value::list(vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        let back = v.as_list().unwrap();
        assert_eq!(back, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
        assert_eq!(v.to_string(), "[1, 2, 3]");
    }

    #[test]
    fn structural_equality() {
        let a = Value::Tuple(Rc::new(vec![Value::Int(1), Value::Str("x".into())]));
        let b = Value::Tuple(Rc::new(vec![Value::Int(1), Value::Str("x".into())]));
        assert_eq!(a.structural_eq(&b), Some(true));
        let c = Value::Tuple(Rc::new(vec![Value::Int(2), Value::Str("x".into())]));
        assert_eq!(a.structural_eq(&c), Some(false));
    }

    #[test]
    fn env_lookup_finds_most_recent() {
        let env = bind(&None, 1, Value::Int(10));
        let env = bind(&env, 1, Value::Int(20));
        assert_eq!(lookup(&env, 1), Some(Value::Int(20)));
        assert_eq!(lookup(&env, 2), None);
    }

    #[test]
    fn negative_int_prints_sml_style() {
        assert_eq!(Value::Int(-5).to_string(), "~5");
    }
}
