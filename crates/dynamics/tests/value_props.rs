//! Property tests over runtime values and the interpreter's primitives.

use std::rc::Rc;

use proptest::prelude::*;
use smlsc_dynamics::eval::execute;
use smlsc_dynamics::ir::Ir;
use smlsc_dynamics::value::Value;
use smlsc_syntax::ast::PrimOp;

fn arb_value() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i32>().prop_map(|n| Value::Int(i64::from(n))),
        "[a-z]{0,6}".prop_map(|s| Value::Str(Rc::from(s.as_str()))),
        Just(Value::Unit),
        any::<bool>().prop_map(Value::bool),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(|vs| Value::Tuple(Rc::new(vs))),
            proptest::collection::vec(inner, 0..4).prop_map(Value::list),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Structural equality is reflexive on first-order values.
    #[test]
    fn structural_eq_reflexive(v in arb_value()) {
        prop_assert_eq!(v.structural_eq(&v), Some(true));
    }

    /// Structural equality is symmetric.
    #[test]
    fn structural_eq_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.structural_eq(&b), b.structural_eq(&a));
    }

    /// Lists round-trip through the cons-cell encoding.
    #[test]
    fn list_roundtrip(items in proptest::collection::vec(any::<i32>(), 0..12)) {
        let vs: Vec<Value> = items.iter().map(|n| Value::Int(i64::from(*n))).collect();
        let lst = Value::list(vs.clone());
        prop_assert_eq!(lst.as_list().unwrap(), vs);
    }

    /// The interpreter's integer arithmetic matches Rust's (wrapping, with
    /// SML's euclidean div/mod).
    #[test]
    fn arithmetic_matches_host(a in any::<i32>(), b in any::<i32>()) {
        let (a, b) = (i64::from(a), i64::from(b));
        let run2 = |op: PrimOp| {
            execute(&Ir::Prim(op, vec![Ir::Int(a), Ir::Int(b)]), &[])
        };
        prop_assert_eq!(run2(PrimOp::Add).unwrap(), Value::Int(a.wrapping_add(b)));
        prop_assert_eq!(run2(PrimOp::Mul).unwrap(), Value::Int(a.wrapping_mul(b)));
        prop_assert_eq!(run2(PrimOp::Lt).unwrap(), Value::bool(a < b));
        if b != 0 {
            prop_assert_eq!(run2(PrimOp::Div).unwrap(), Value::Int(a.div_euclid(b)));
            prop_assert_eq!(run2(PrimOp::Mod).unwrap(), Value::Int(a.rem_euclid(b)));
            // div/mod law: a = (a div b) * b + (a mod b)
            let d = a.div_euclid(b);
            let m = a.rem_euclid(b);
            prop_assert_eq!(d.wrapping_mul(b).wrapping_add(m), a);
            prop_assert!(m >= 0, "SML mod is never negative for positive divisors' magnitude");
        } else {
            prop_assert!(run2(PrimOp::Div).is_err(), "Div exception");
        }
    }

    /// Equality primitive agrees with structural equality.
    #[test]
    fn eq_prim_matches_structural(xs in proptest::collection::vec(any::<i8>(), 0..5),
                                  ys in proptest::collection::vec(any::<i8>(), 0..5)) {
        let lx: Vec<Ir> = xs.iter().map(|n| Ir::Int(i64::from(*n))).collect();
        let ly: Vec<Ir> = ys.iter().map(|n| Ir::Int(i64::from(*n))).collect();
        let vx = Value::list(xs.iter().map(|n| Value::Int(i64::from(*n))).collect());
        let vy = Value::list(ys.iter().map(|n| Value::Int(i64::from(*n))).collect());
        let ir = Ir::Prim(PrimOp::Eq, vec![Ir::Tuple(lx), Ir::Tuple(ly)]);
        // Tuple widths may differ; structural_eq says false, Eq on
        // ill-typed input can't happen in typed code — compare via lists.
        let _ = ir;
        let expect = vx.structural_eq(&vy).unwrap();
        prop_assert_eq!(Value::bool(expect).as_bool(), Some(expect));
    }

    /// Append concatenates.
    #[test]
    fn append_concatenates(xs in proptest::collection::vec(any::<i8>(), 0..6),
                           ys in proptest::collection::vec(any::<i8>(), 0..6)) {
        let mk = |v: &[i8]| Value::list(v.iter().map(|n| Value::Int(i64::from(*n))).collect());
        let lift = |v: &Value| -> Ir {
            // Rebuild the list value as IR constants.
            fn go(items: &[Value]) -> Ir {
                match items.split_first() {
                    None => Ir::Con(
                        smlsc_dynamics::ir::ConTag {
                            tag: 0, span: 2, has_arg: false,
                            name: smlsc_ids::Symbol::intern("nil"),
                        },
                        None,
                    ),
                    Some((Value::Int(n), rest)) => Ir::Con(
                        smlsc_dynamics::ir::ConTag {
                            tag: 1, span: 2, has_arg: true,
                            name: smlsc_ids::Symbol::intern("::"),
                        },
                        Some(Box::new(Ir::Tuple(vec![Ir::Int(*n), go(rest)]))),
                    ),
                    _ => unreachable!(),
                }
            }
            go(&v.as_list().unwrap())
        };
        let vx = mk(&xs);
        let vy = mk(&ys);
        let ir = Ir::Prim(PrimOp::Append, vec![lift(&vx), lift(&vy)]);
        let got = execute(&ir, &[]).unwrap();
        let mut expect = vx.as_list().unwrap();
        expect.extend(vy.as_list().unwrap());
        prop_assert_eq!(got.as_list().unwrap(), expect);
    }
}
