//! Criterion micro-benchmarks for the separate-compilation primitives:
//! digesting, intrinsic-pid hashing, pickling, compiling, and no-op
//! manager builds.  One group per table/figure-adjacent cost center; the
//! `paper_tables` binary produces the paper-shaped tables themselves.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use smlsc_core::irm::{Irm, Strategy};
use smlsc_core::{compile_unit, hash_exports};
use smlsc_ids::{Digest128, Symbol};
use smlsc_pickle::{dehydrate, rehydrate, ContextPids, PickleOptions, RehydrateContext};
use smlsc_statics::elab::{elaborate_unit, ImportEnv};
use smlsc_workload::{EditKind, Topology, Workload, WorkloadSpec};

fn module_src(funs: usize) -> String {
    let mut s = String::from("structure M = struct\n  type t = int\n");
    for f in 0..funs {
        s.push_str(&format!("  fun f{f} x = x + {f}\n"));
    }
    s.push_str("end\n");
    s
}

/// Raw digest throughput (the paper's CRC).  Swept over input sizes so the
/// word-at-a-time `write_bytes` fast path shows up as bytes/iter scaling:
/// 64 B is remainder-dominated, 64 KiB is pure streaming throughput.
fn bench_digest(c: &mut Criterion) {
    let mut group = c.benchmark_group("digest128");
    for size in [64usize, 4096, 65536] {
        let data = vec![0xabu8; size];
        group.bench_with_input(BenchmarkId::new("write_bytes", size), &size, |b, _| {
            b.iter(|| {
                let mut d = Digest128::new();
                d.write_bytes(std::hint::black_box(&data));
                d.finish()
            })
        });
    }
    group.finish();
}

/// Clears the derived pids of a unit's own entities, so the hasher does a
/// genuine first-time traversal (pervasives keep their preset pids).
fn clear_pids(exports: &smlsc_statics::env::Bindings) {
    use smlsc_pickle::Entity;
    for e in smlsc_pickle::reachable_entities(exports) {
        match &e {
            Entity::Tycon(t) => {
                if !matches!(&*t.def.read(), smlsc_statics::types::TyconDef::Prim)
                    && t.name.as_str() != "bool"
                    && t.name.as_str() != "list"
                    && t.name.as_str() != "option"
                {
                    t.entity_pid.set(None);
                }
            }
            Entity::Str(s) => s.entity_pid.set(None),
            Entity::Sig(s) => s.entity_pid.set(None),
            Entity::Fct(f) => f.entity_pid.set(None),
        }
    }
}

/// E1's hash column: intrinsic-pid hashing of an export environment
/// (first-time hashing, then the cheap re-hash of an already-pidded env —
/// the cutoff-check cost).
fn bench_hash(c: &mut Criterion) {
    let mut group = c.benchmark_group("hash_exports");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    for funs in [8usize, 64] {
        let ast = smlsc_syntax::parse_unit(&module_src(funs)).unwrap();
        let unit = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
        group.bench_with_input(BenchmarkId::new("first", funs), &funs, |b, _| {
            b.iter(|| {
                clear_pids(&unit.exports);
                hash_exports(Symbol::intern("m"), &unit.exports).unwrap()
            })
        });
        hash_exports(Symbol::intern("m"), &unit.exports).unwrap();
        group.bench_with_input(BenchmarkId::new("rehash", funs), &funs, |b, _| {
            b.iter(|| hash_exports(Symbol::intern("m"), &unit.exports).unwrap())
        });
    }
    group.finish();
}

/// E1's pickle column and E4's mechanism: dehydrate + rehydrate.
fn bench_pickle(c: &mut Criterion) {
    let ast = smlsc_syntax::parse_unit(&module_src(64)).unwrap();
    let unit = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    hash_exports(Symbol::intern("m"), &unit.exports).unwrap();
    let ctx = ContextPids::indexed([]);
    let mut group = c.benchmark_group("pickle");
    group
        .measurement_time(Duration::from_secs(2))
        .sample_size(20);
    group.bench_function("dehydrate_64fn", |b| {
        b.iter(|| dehydrate(&unit.exports, &ctx, &PickleOptions::default()).unwrap())
    });
    let pickled = dehydrate(&unit.exports, &ctx, &PickleOptions::default()).unwrap();
    let rctx = RehydrateContext::with_pervasives([]);
    group.bench_function("rehydrate_64fn", |b| {
        b.iter(|| rehydrate(&pickled.bytes, &rctx).unwrap())
    });
    group.finish();
}

/// Whole-unit compilation (parse + elaborate + hash + pickle).
fn bench_compile(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_unit");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(20);
    for funs in [8usize, 64] {
        let src = module_src(funs);
        group.bench_with_input(BenchmarkId::from_parameter(funs), &funs, |b, _| {
            b.iter(|| compile_unit(Symbol::intern("m"), &src, &[]).unwrap())
        });
    }
    group.finish();
}

/// The manager's own overhead: a no-op rebuild and a cutoff rebuild of a
/// 40-unit project.
fn bench_manager(c: &mut Criterion) {
    let mut group = c.benchmark_group("irm");
    group
        .measurement_time(Duration::from_secs(3))
        .sample_size(10);
    let spec = WorkloadSpec {
        topology: Topology::Library {
            lib: 8,
            clients: 32,
            seed: 11,
        },
        funs_per_module: 3,
        reexport_dep_types: false,
    };
    group.bench_function("noop_rebuild_40_units", |b| {
        let w = Workload::new(spec);
        let mut irm = Irm::new(Strategy::Cutoff);
        irm.build(w.project()).unwrap();
        b.iter(|| {
            let report = irm.build(w.project()).unwrap();
            assert!(report.recompiled.is_empty());
        })
    });
    group.bench_function("cutoff_rebuild_after_body_edit", |b| {
        let mut w = Workload::new(spec);
        let mut irm = Irm::new(Strategy::Cutoff);
        irm.build(w.project()).unwrap();
        let victim = w.most_depended_on();
        b.iter(|| {
            w.edit(victim, EditKind::BodyOnly);
            let report = irm.build(w.project()).unwrap();
            assert_eq!(report.recompiled.len(), 1);
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_digest,
    bench_hash,
    bench_pickle,
    bench_compile,
    bench_manager
);
criterion_main!(benches);
