//! Shared machinery for the `smlsc` benchmark harness.
//!
//! The [`paper_tables`](../src/bin/paper_tables.rs) binary regenerates
//! every quantitative claim of the paper (experiments E1–E6 in
//! `EXPERIMENTS.md`); the criterion suite in `benches/micro.rs` covers the
//! micro costs (digesting, hashing, pickling, compiling).

pub mod gate;

use std::time::{Duration, Instant};

use smlsc_core::irm::{Irm, Strategy};
use smlsc_core::trace;
use smlsc_workload::{EditKind, Topology, Workload, WorkloadSpec};

/// A generated workload together with the knobs used to build it.
pub fn workload(topology: Topology, funs: usize, relay: bool) -> Workload {
    Workload::new(WorkloadSpec {
        topology,
        funs_per_module: funs,
        reexport_dep_types: relay,
    })
}

/// The standard "paper-scale" library workload: ~200 units; `funs`
/// controls total lines (the paper's corpus was ≈65,000 lines across
/// ≈200 units).
pub fn paper_scale(funs: usize) -> Workload {
    workload(
        Topology::Library {
            lib: 30,
            clients: 170,
            seed: 1994,
        },
        funs,
        false,
    )
}

/// Times one full build of a fresh manager over `w`.
pub fn time_full_build(
    w: &Workload,
    strategy: Strategy,
) -> (Irm, smlsc_core::BuildReport, Duration) {
    let mut irm = Irm::new(strategy);
    let t0 = Instant::now();
    let report = irm.build(w.project()).expect("workload builds");
    let total = t0.elapsed();
    (irm, report, total)
}

/// Like [`time_full_build`], but with a telemetry [`trace::Collector`]
/// installed for the duration of the build, so callers can report real
/// per-phase duration histograms instead of just aggregate sums.
pub fn time_full_build_with_telemetry(
    w: &Workload,
    strategy: Strategy,
) -> (Irm, smlsc_core::BuildReport, Duration, trace::Collector) {
    let collector = trace::Collector::new();
    collector.install();
    let mut irm = Irm::new(strategy);
    let t0 = Instant::now();
    let report = irm.build(w.project()).expect("workload builds");
    let total = t0.elapsed();
    trace::uninstall();
    (irm, report, total, collector)
}

/// One formatted row of a per-phase histogram table: `count`, quantiles
/// and max in µs, or `None` when the phase never ran.
pub fn histogram_row(collector: &trace::Collector, name: &str) -> Option<String> {
    let h = collector.histogram(name)?;
    Some(format!(
        "{:<20} {:>7} {:>9} {:>9} {:>9} {:>9}",
        name,
        h.count(),
        h.quantile_us(0.50),
        h.quantile_us(0.90),
        h.quantile_us(0.99),
        h.max_us()
    ))
}

/// Times one cold build of `w` on `jobs` wavefront workers.
pub fn time_cold_build_jobs(
    w: &Workload,
    strategy: Strategy,
    jobs: usize,
) -> (smlsc_core::BuildReport, Duration) {
    let mut irm = Irm::new(strategy);
    let t0 = Instant::now();
    let report = irm
        .build_with_jobs(w.project(), jobs)
        .expect("workload builds");
    (report, t0.elapsed())
}

/// The longest dependency chain in a workload's module DAG, in modules —
/// the wavefront scheduler's wall-clock floor, and with the unit count
/// the DAG's parallel-speedup ceiling (`units / critical_path`).
pub fn critical_path(w: &Workload) -> usize {
    fn depth(i: usize, deps: &[Vec<usize>], memo: &mut [usize]) -> usize {
        if memo[i] == 0 {
            memo[i] = 1 + deps[i]
                .iter()
                .map(|&j| depth(j, deps, memo))
                .max()
                .unwrap_or(0);
        }
        memo[i]
    }
    let deps = w.deps();
    let mut memo = vec![0usize; deps.len()];
    (0..deps.len())
        .map(|i| depth(i, deps, &mut memo))
        .max()
        .unwrap_or(0)
}

/// Units recompiled after applying `kind` at `victim` under `strategy`.
pub fn recompiles_after_edit(
    topology: Topology,
    funs: usize,
    relay: bool,
    kind: EditKind,
    strategy: Strategy,
) -> (usize, usize) {
    let mut w = workload(topology, funs, relay);
    let victim = w.most_depended_on();
    let mut irm = Irm::new(strategy);
    irm.build(w.project()).expect("initial build");
    w.edit(victim, kind);
    let report = irm.build(w.project()).expect("incremental build");
    (report.recompiled.len(), w.module_count())
}

/// Formats a duration in milliseconds with two decimals.
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Percent of `part` in `whole`.
pub fn pct(part: Duration, whole: Duration) -> String {
    if whole.is_zero() {
        return "-".into();
    }
    format!("{:.1}%", 100.0 * part.as_secs_f64() / whole.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_has_about_200_units() {
        let w = paper_scale(2);
        assert_eq!(w.module_count(), 200);
    }

    #[test]
    fn recompiles_helper_matches_expectations() {
        let (n, total) = recompiles_after_edit(
            Topology::Chain { n: 10 },
            2,
            false,
            EditKind::BodyOnly,
            Strategy::Cutoff,
        );
        assert_eq!((n, total), (1, 10));
        let (n, _) = recompiles_after_edit(
            Topology::Chain { n: 10 },
            2,
            false,
            EditKind::BodyOnly,
            Strategy::Classical,
        );
        assert_eq!(n, 10);
    }

    #[test]
    fn critical_path_matches_topology() {
        let w = workload(Topology::Chain { n: 10 }, 1, false);
        assert_eq!(critical_path(&w), 10);
        // base + depth layers + top.
        let w = workload(Topology::Diamond { width: 8, depth: 4 }, 1, false);
        assert_eq!(critical_path(&w), 6);
        assert_eq!(w.module_count(), 34);
    }

    #[test]
    fn cold_build_jobs_is_equivalent_to_sequential() {
        let w = workload(Topology::Diamond { width: 4, depth: 2 }, 1, false);
        let (seq, _) = time_cold_build_jobs(&w, Strategy::Cutoff, 1);
        let (par, _) = time_cold_build_jobs(&w, Strategy::Cutoff, 4);
        assert_eq!(seq.decision_kinds(), par.decision_kinds());
        assert_eq!(seq.recompiled, par.recompiled);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
        assert_eq!(pct(Duration::from_secs(1), Duration::from_secs(4)), "25.0%");
        assert_eq!(pct(Duration::from_secs(1), Duration::ZERO), "-");
    }
}
