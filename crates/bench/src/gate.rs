//! The CI perf-regression gate: compares a fresh benchmark JSON
//! document (`BENCH_null.json`, `BENCH_parallel.json`) against a
//! committed baseline with explicit tolerances, and checks the build
//! ledger's warm-build smoke invariant.
//!
//! The gate is deliberately row-matched: it only compares measurements
//! present in *both* documents, so a `--smoke` fresh run (N = 50 only)
//! gates against a full committed baseline without false alarms, and a
//! baseline regenerated on a bigger machine does not fail a smaller
//! host's run on rows it never measured.  Tolerances are a
//! multiplicative factor plus an absolute slack, so microsecond-scale
//! rows are not gated to CI timer noise.

use std::fmt;

use serde::Value;

/// How much slower a fresh measurement may be before it is a
/// regression: `fresh <= baseline * factor + slack_ms`.
#[derive(Debug, Clone, Copy)]
pub struct Tolerance {
    /// Multiplicative allowance (2.0 = may take twice as long).
    pub factor: f64,
    /// Absolute allowance in milliseconds, absorbing scheduler noise on
    /// sub-millisecond rows.
    pub slack_ms: f64,
}

impl Default for Tolerance {
    /// CI defaults: generous enough for shared-runner noise, tight
    /// enough to catch a real algorithmic regression.
    fn default() -> Tolerance {
        Tolerance {
            factor: 2.0,
            slack_ms: 200.0,
        }
    }
}

impl Tolerance {
    /// The limit a fresh measurement must stay under for `baseline_ms`.
    pub fn limit_ms(&self, baseline_ms: f64) -> f64 {
        baseline_ms * self.factor + self.slack_ms
    }
}

/// One regression: a row that measured over its limit.
#[derive(Debug, Clone)]
pub struct Regression {
    /// Which row (bench kind + matching key + metric name).
    pub what: String,
    /// The committed baseline measurement, ms.
    pub baseline_ms: f64,
    /// The fresh measurement, ms.
    pub fresh_ms: f64,
    /// The limit the fresh measurement broke, ms.
    pub limit_ms: f64,
}

impl fmt::Display for Regression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {:.2}ms -> {:.2}ms (limit {:.2}ms)",
            self.what, self.baseline_ms, self.fresh_ms, self.limit_ms
        )
    }
}

/// The gate's verdict over one baseline/fresh pair.
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Metrics compared.
    pub checked: usize,
    /// Baseline metrics with no fresh counterpart (or vice versa) —
    /// reported, never failed.
    pub skipped: usize,
    /// Rows that broke their limit.
    pub regressions: Vec<Regression>,
}

impl GateOutcome {
    /// True when nothing regressed.
    pub fn passed(&self) -> bool {
        self.regressions.is_empty()
    }
}

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    match v {
        Value::Map(entries) => entries.iter().find(|(k, _)| k == key).map(|(_, v)| v),
        _ => None,
    }
}

fn num(v: &Value) -> Option<f64> {
    match v {
        Value::UInt(n) => Some(*n as f64),
        Value::Int(n) => Some(*n as f64),
        Value::Float(f) => Some(*f),
        _ => None,
    }
}

fn text(v: &Value) -> Option<&str> {
    match v {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

fn seq(v: &Value) -> Option<&[Value]> {
    match v {
        Value::Seq(items) => Some(items.as_slice()),
        _ => None,
    }
}

fn field_num(v: &Value, key: &str) -> Option<f64> {
    get(v, key).and_then(num)
}

/// Compares a fresh benchmark document against its baseline.
///
/// Dispatches on the document's `"bench"` field; both documents must be
/// the same kind.  Only rows present in both are gated.
///
/// # Errors
///
/// A message when either document is not a known benchmark shape (a
/// malformed document must fail CI loudly, not pass silently).
pub fn compare(baseline: &Value, fresh: &Value, tol: &Tolerance) -> Result<GateOutcome, String> {
    let kind = get(baseline, "bench")
        .and_then(text)
        .ok_or("baseline has no \"bench\" field")?;
    let fresh_kind = get(fresh, "bench")
        .and_then(text)
        .ok_or("fresh output has no \"bench\" field")?;
    if kind != fresh_kind {
        return Err(format!(
            "benchmark kind mismatch: baseline is `{kind}`, fresh is `{fresh_kind}`"
        ));
    }
    match kind {
        "null_build" => Ok(compare_null(baseline, fresh, tol)),
        "parallel_wavefront_scaling" => Ok(compare_parallel(baseline, fresh, tol)),
        "monorepo" => Ok(compare_monorepo(baseline, fresh, tol)),
        other => Err(format!("unknown benchmark kind `{other}`")),
    }
}

/// A row's identity in `BENCH_null.json`: (units, mode, jobs).
fn null_key(row: &Value) -> Option<(u64, String, u64)> {
    Some((
        field_num(row, "units")? as u64,
        get(row, "mode").and_then(text)?.to_string(),
        field_num(row, "jobs")? as u64,
    ))
}

fn check_metric(
    outcome: &mut GateOutcome,
    tol: &Tolerance,
    what: String,
    baseline_ms: Option<f64>,
    fresh_ms: Option<f64>,
) {
    // A metric absent on either side (an older baseline, a smoke run)
    // is skipped: the gate compares what both documents measured.
    let (Some(base), Some(fresh)) = (baseline_ms, fresh_ms) else {
        outcome.skipped += 1;
        return;
    };
    outcome.checked += 1;
    let limit = tol.limit_ms(base);
    if fresh > limit {
        outcome.regressions.push(Regression {
            what,
            baseline_ms: base,
            fresh_ms: fresh,
            limit_ms: limit,
        });
    }
}

fn compare_null(baseline: &Value, fresh: &Value, tol: &Tolerance) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let base_rows = get(baseline, "rows").and_then(seq).unwrap_or(&[]);
    let fresh_rows = get(fresh, "rows").and_then(seq).unwrap_or(&[]);
    for frow in fresh_rows {
        let Some(key) = null_key(frow) else {
            outcome.skipped += 1;
            continue;
        };
        let Some(brow) = base_rows
            .iter()
            .find(|r| null_key(r).as_ref() == Some(&key))
        else {
            outcome.skipped += 1;
            continue;
        };
        let (units, mode, jobs) = &key;
        for metric in ["noop_ms", "leaf_edit_ms"] {
            check_metric(
                &mut outcome,
                tol,
                format!("null_build units={units} mode={mode} jobs={jobs} {metric}"),
                field_num(brow, metric),
                field_num(frow, metric),
            );
        }
    }
    outcome
}

fn compare_parallel(baseline: &Value, fresh: &Value, tol: &Tolerance) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let base_wls = get(baseline, "workloads").and_then(seq).unwrap_or(&[]);
    let fresh_wls = get(fresh, "workloads").and_then(seq).unwrap_or(&[]);
    for fwl in fresh_wls {
        let Some(name) = get(fwl, "name").and_then(text) else {
            outcome.skipped += 1;
            continue;
        };
        let Some(bwl) = base_wls
            .iter()
            .find(|w| get(w, "name").and_then(text) == Some(name))
        else {
            outcome.skipped += 1;
            continue;
        };
        let base_rows = get(bwl, "results").and_then(seq).unwrap_or(&[]);
        for frow in get(fwl, "results").and_then(seq).unwrap_or(&[]) {
            let Some(jobs) = field_num(frow, "jobs").map(|j| j as u64) else {
                outcome.skipped += 1;
                continue;
            };
            let brow = base_rows
                .iter()
                .find(|r| field_num(r, "jobs").map(|j| j as u64) == Some(jobs));
            let Some(brow) = brow else {
                outcome.skipped += 1;
                continue;
            };
            check_metric(
                &mut outcome,
                tol,
                format!("parallel_scaling workload={name} jobs={jobs} cold_ms"),
                field_num(brow, "cold_ms"),
                field_num(frow, "cold_ms"),
            );
        }
    }
    outcome
}

/// A row's identity in `BENCH_monorepo.json`: (units, jobs).
fn monorepo_key(row: &Value) -> Option<(u64, u64)> {
    Some((
        field_num(row, "units")? as u64,
        field_num(row, "jobs")? as u64,
    ))
}

fn compare_monorepo(baseline: &Value, fresh: &Value, tol: &Tolerance) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let base_rows = get(baseline, "rows").and_then(seq).unwrap_or(&[]);
    let fresh_rows = get(fresh, "rows").and_then(seq).unwrap_or(&[]);
    for frow in fresh_rows {
        let Some(key) = monorepo_key(frow) else {
            outcome.skipped += 1;
            continue;
        };
        let Some(brow) = base_rows
            .iter()
            .find(|r| monorepo_key(r).as_ref() == Some(&key))
        else {
            outcome.skipped += 1;
            continue;
        };
        let (units, jobs) = &key;
        for metric in ["cold_ms", "noop_ms", "leaf_edit_ms"] {
            check_metric(
                &mut outcome,
                tol,
                format!("monorepo units={units} jobs={jobs} {metric}"),
                field_num(brow, metric),
                field_num(frow, metric),
            );
        }
    }
    check_monorepo_scaling(fresh_rows, &mut outcome);
    outcome
}

/// How much faster than linear growth the warm no-op may fall short:
/// doubling the unit count may cost at most 2.5x the time (growing
/// 10x may cost at most 12.5x).  A superlinear warm path — the
/// classic O(n^2) accident — blows through this on the first doubling.
const SCALING_HEADROOM: f64 = 1.25;
/// Absolute slack for the scaling check: sub-10ms rows are dominated
/// by scheduler noise, not algorithmic growth.
const SCALING_SLACK_MS: f64 = 10.0;

/// The within-document scaling gate: for every pair of adjacent unit
/// counts measured at the same job count, the no-op time must grow at
/// most ~linearly in the unit count.  Unlike the row-matched baseline
/// comparison this self-check needs no committed history — a fresh
/// superlinear curve fails even against an equally bad baseline.
fn check_monorepo_scaling(rows: &[Value], outcome: &mut GateOutcome) {
    let mut points: Vec<(u64, u64, f64)> = rows
        .iter()
        .filter_map(|r| {
            let (units, jobs) = monorepo_key(r)?;
            Some((jobs, units, field_num(r, "noop_ms")?))
        })
        .collect();
    points.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    for pair in points.windows(2) {
        let (jobs_lo, units_lo, noop_lo) = pair[0];
        let (jobs_hi, units_hi, noop_hi) = pair[1];
        if jobs_lo != jobs_hi || units_lo == 0 || units_hi <= units_lo {
            continue;
        }
        outcome.checked += 1;
        let ratio = units_hi as f64 / units_lo as f64;
        let limit = noop_lo * ratio * SCALING_HEADROOM + SCALING_SLACK_MS;
        if noop_hi > limit {
            outcome.regressions.push(Regression {
                what: format!(
                    "monorepo scaling jobs={jobs_hi} noop_ms {units_lo}->{units_hi} units \
                     ({ratio:.1}x units may cost at most {:.1}x time)",
                    ratio * SCALING_HEADROOM
                ),
                baseline_ms: noop_lo,
                fresh_ms: noop_hi,
                limit_ms: limit,
            });
        }
    }
}

/// CI's warm-build ledger smoke: the newest record in `builds.jsonl`
/// must be a clean zero-compile build (the project was just built, so a
/// second build must hit every cache).
///
/// # Errors
///
/// A message when the ledger is empty or its newest record compiled
/// anything or exited non-zero.
pub fn check_warm_ledger(ledger_path: &std::path::Path) -> Result<(), String> {
    // Streamed, not collected: the gate needs one record's worth of
    // memory no matter how long the build history is.
    let last = smlsc_core::Ledger::new(ledger_path)
        .stream()
        .last()
        .ok_or_else(|| format!("{}: no ledger records", ledger_path.display()))?;
    if last.compiled != 0 {
        return Err(format!(
            "{}: newest build compiled {} unit(s); a warm build must compile 0",
            ledger_path.display(),
            last.compiled
        ));
    }
    if last.exit_code != 0 {
        return Err(format!(
            "{}: newest build exited {}",
            ledger_path.display(),
            last.exit_code
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Value {
        serde_json::parse_value(s.as_bytes()).expect("fixture parses")
    }

    fn null_doc(noop: f64, leaf: f64) -> Value {
        parse(&format!(
            r#"{{"bench":"null_build","runs_per_point":3,"smoke":true,"host_parallelism":4,"underpowered_host":false,"rows":[
                {{"units":50,"mode":"stamped","jobs":1,"noop_ms":{noop},"leaf_edit_ms":{leaf}}},
                {{"units":50,"mode":"paranoid","jobs":1,"noop_ms":{n2},"leaf_edit_ms":{l2}}}],
              "noop_speedups":[{{"units":50,"jobs":1,"noop_speedup":4.0}}]}}"#,
            n2 = noop * 4.0,
            l2 = leaf * 2.0,
        ))
    }

    #[test]
    fn identical_output_passes() {
        let base = null_doc(10.0, 20.0);
        let outcome = compare(&base, &null_doc(10.0, 20.0), &Tolerance::default()).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.checked, 4);
        assert_eq!(outcome.skipped, 0);
    }

    #[test]
    fn synthetic_2x_slowdown_fails() {
        // The acceptance fixture: a 2x slowdown against a strict-factor
        // tolerance must be a regression on every matched metric.
        let base = null_doc(100.0, 200.0);
        let slow = null_doc(200.0, 400.0);
        let tol = Tolerance {
            factor: 1.5,
            slack_ms: 0.0,
        };
        let outcome = compare(&base, &slow, &tol).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 4);
        let msg = outcome.regressions[0].to_string();
        assert!(msg.contains("null_build units=50"), "{msg}");
        assert!(msg.contains("limit"), "{msg}");
        // The same slowdown passes under the default (2x + slack) CI
        // tolerance only because of the absolute slack; drop the slack
        // and 2.0x sits exactly at the limit (not over), so it passes.
        let exactly = Tolerance {
            factor: 2.0,
            slack_ms: 0.0,
        };
        assert!(compare(&base, &slow, &exactly).unwrap().passed());
    }

    #[test]
    fn rows_missing_from_either_side_are_skipped_not_failed() {
        let base = null_doc(10.0, 20.0);
        // Fresh run measured a row (units=800) the baseline lacks.
        let fresh = parse(
            r#"{"bench":"null_build","rows":[
                {"units":800,"mode":"stamped","jobs":1,"noop_ms":999.0,"leaf_edit_ms":999.0},
                {"units":50,"mode":"stamped","jobs":1,"noop_ms":10.0,"leaf_edit_ms":20.0}],
              "noop_speedups":[]}"#,
        );
        let outcome = compare(&base, &fresh, &Tolerance::default()).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.checked, 2);
        assert_eq!(outcome.skipped, 1);
    }

    #[test]
    fn parallel_scaling_gates_cold_ms_by_workload_and_jobs() {
        let doc = |ms: f64| {
            parse(&format!(
                r#"{{"bench":"parallel_wavefront_scaling","funs_per_module":4,"runs_per_point":3,"host_parallelism":4,"underpowered_host":false,"workloads":[
                    {{"name":"diamond(8x4)","units":34,"lines":1000,"critical_path":6,"dag_ceiling":5.67,"results":[
                        {{"jobs":1,"cold_ms":{ms},"speedup":1.0}},
                        {{"jobs":4,"cold_ms":{q},"speedup":3.1}}]}}]}}"#,
                q = ms / 3.0
            ))
        };
        let tol = Tolerance {
            factor: 1.5,
            slack_ms: 0.0,
        };
        assert!(compare(&doc(90.0), &doc(90.0), &tol).unwrap().passed());
        let outcome = compare(&doc(90.0), &doc(180.0), &tol).unwrap();
        assert_eq!(outcome.regressions.len(), 2);
        assert!(outcome.regressions[0].what.contains("diamond(8x4)"));
    }

    #[test]
    fn monorepo_gates_all_three_metrics_by_units_and_jobs() {
        let doc = |noop: f64| {
            parse(&format!(
                r#"{{"bench":"monorepo","runs_per_point":3,"smoke":true,"host_parallelism":4,"underpowered_host":false,"rows":[
                    {{"units":5000,"jobs":4,"cold_ms":{c},"noop_ms":{noop},"leaf_edit_ms":{l}}}]}}"#,
                c = noop * 100.0,
                l = noop * 2.0,
            ))
        };
        let tol = Tolerance {
            factor: 1.5,
            slack_ms: 0.0,
        };
        let outcome = compare(&doc(100.0), &doc(100.0), &tol).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.checked, 3);
        let outcome = compare(&doc(100.0), &doc(200.0), &tol).unwrap();
        assert_eq!(outcome.regressions.len(), 3);
        assert!(outcome.regressions[0].what.contains("monorepo units=5000"));
        // A full fresh run gates a smoke baseline only on shared rows.
        let full = parse(
            r#"{"bench":"monorepo","rows":[
                {"units":5000,"jobs":4,"cold_ms":10000.0,"noop_ms":100.0,"leaf_edit_ms":200.0},
                {"units":50000,"jobs":4,"cold_ms":99999.0,"noop_ms":999.0,"leaf_edit_ms":999.0}]}"#,
        );
        let outcome = compare(&doc(100.0), &full, &tol).unwrap();
        assert!(outcome.passed());
        // Three baseline-matched metrics plus one within-document
        // scaling pair (5000 -> 50000 units).
        assert_eq!(outcome.checked, 4);
        assert_eq!(outcome.skipped, 1);
    }

    #[test]
    fn monorepo_superlinear_noop_fails_the_scaling_gate() {
        // 10x the units costing 45x the time is the superlinear warm
        // path this gate exists to catch — even when the committed
        // baseline shows the same bad curve (row-matched comparison
        // alone would pass it).
        let bad = parse(
            r#"{"bench":"monorepo","rows":[
                {"units":5000,"jobs":4,"cold_ms":1000.0,"noop_ms":52.0,"leaf_edit_ms":60.0},
                {"units":50000,"jobs":4,"cold_ms":12000.0,"noop_ms":2356.0,"leaf_edit_ms":2400.0}]}"#,
        );
        let outcome = compare(&bad, &bad, &Tolerance::default()).unwrap();
        assert_eq!(outcome.regressions.len(), 1, "{:?}", outcome.regressions);
        let msg = outcome.regressions[0].to_string();
        assert!(msg.contains("monorepo scaling"), "{msg}");
        assert!(msg.contains("5000->50000"), "{msg}");

        // A near-linear curve passes: 10x units, 10x time.
        let good = parse(
            r#"{"bench":"monorepo","rows":[
                {"units":5000,"jobs":4,"cold_ms":1000.0,"noop_ms":20.0,"leaf_edit_ms":30.0},
                {"units":50000,"jobs":4,"cold_ms":11000.0,"noop_ms":205.0,"leaf_edit_ms":300.0}]}"#,
        );
        assert!(compare(&good, &good, &Tolerance::default())
            .unwrap()
            .passed());

        // Rows at different job counts are never compared to each other.
        let cross = parse(
            r#"{"bench":"monorepo","rows":[
                {"units":5000,"jobs":1,"cold_ms":1000.0,"noop_ms":10.0,"leaf_edit_ms":30.0},
                {"units":50000,"jobs":4,"cold_ms":11000.0,"noop_ms":9999.0,"leaf_edit_ms":300.0}]}"#,
        );
        assert!(compare(&cross, &cross, &Tolerance::default())
            .unwrap()
            .passed());
    }

    #[test]
    fn kind_mismatch_and_garbage_are_errors() {
        let base = null_doc(1.0, 1.0);
        let other = parse(r#"{"bench":"parallel_wavefront_scaling","workloads":[]}"#);
        assert!(compare(&base, &other, &Tolerance::default()).is_err());
        let junk = parse(r#"{"rows":[]}"#);
        assert!(compare(&junk, &base, &Tolerance::default()).is_err());
        let unknown = parse(r#"{"bench":"mystery"}"#);
        assert!(compare(&unknown, &unknown, &Tolerance::default()).is_err());
    }

    #[test]
    fn warm_ledger_check() {
        let dir = std::env::temp_dir().join(format!("smlsc-gate-ledger-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("builds.jsonl");
        assert!(check_warm_ledger(&path).is_err(), "empty ledger fails");
        // A cold record then a warm record: the gate looks at the newest.
        let cold = r#"{"version":1,"build_id":1,"timestamp_ms":1,"strategy":"cutoff","jobs":4,"host_parallelism":4,"wall_us":1000,"parse_us":1,"elaborate_us":1,"hash_us":1,"dehydrate_us":1,"rehydrate_us":1,"compiled":3,"reused":0,"cutoff":0,"store_hits":0,"skipped":0,"failed":0,"stamp_hits":0,"stamp_misses":3,"store_misses":0,"deps_cache_hits":0,"deps_cache_misses":3,"source_reads":3,"critical_path":3,"exit_code":0}"#;
        let warm = cold.replace(r#""compiled":3"#, r#""compiled":0"#);
        std::fs::write(&path, format!("{cold}\n")).unwrap();
        assert!(check_warm_ledger(&path).is_err(), "cold newest fails");
        std::fs::write(&path, format!("{cold}\n{warm}\n")).unwrap();
        check_warm_ledger(&path).expect("warm newest passes");
        let failed = warm.replace(r#""exit_code":0"#, r#""exit_code":1"#);
        std::fs::write(&path, format!("{cold}\n{failed}\n")).unwrap();
        assert!(check_warm_ledger(&path).is_err(), "non-zero exit fails");
        std::fs::remove_dir_all(&dir).ok();
    }
}
