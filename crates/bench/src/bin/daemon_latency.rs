//! Daemon round-trip latency: what a resident session buys over even
//! the fastest cold-process warm build.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin daemon_latency
//! cargo run --release -p smlsc-bench --bin daemon_latency -- --smoke --out BENCH_daemon.json
//! ```
//!
//! Three no-op latencies are compared at every size, best-of-`RUNS`:
//!
//! * `coldproc` — a full cold-process warm-build pipeline (the
//!   `null_build` fast path: load stamps, open the `bins.pack` index,
//!   scan sources, cutoff build);
//! * `daemon_stat` — a socket round-trip with `fresh: true`: the
//!   resident session stat-rescans the source directory, applies the
//!   (empty) delta, and answers from its caches;
//! * `daemon_trusted` — a socket round-trip with `fresh: false`: the
//!   watcher is trusted, nothing changed since the last build, so the
//!   request is answered from the retained snapshot — pure protocol
//!   cost, no filesystem access at all.
//!
//! The headline ratio is `coldproc / daemon_trusted`: process start-up,
//! stamp-file parse, and pack-index open all disappear from the warm
//! no-op once a daemon holds them resident.  Results land in
//! `BENCH_daemon.json`.

use std::path::Path;
use std::time::{Duration, Instant};

use smlsc_bench::{ms, workload};
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_daemon::{client, Request, Response, ServerConfig, ServerHandle};
use smlsc_workload::{module_name, Topology, Workload};

const RUNS: usize = 5;

fn write_sources(src: &Path, w: &Workload) {
    for i in 0..w.module_count() {
        let name = module_name(i);
        let text = w.project().file(&name).unwrap().read_text().unwrap();
        std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
    }
}

/// One cold-process warm build on the fast path: load stamps, open the
/// pack index, scan sources, cutoff build.  Returns wall clock and the
/// recompile count.
fn coldproc_pipeline(src: &Path, bin_dir: &Path) -> (Duration, usize) {
    let t0 = Instant::now();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.load_stamps(&bin_dir.join("stamps.json"));
    let outcome = irm.load_bins(bin_dir).expect("bench bins load");
    assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    let project = Project::from_dir(src).expect("bench sources scan");
    let report = irm.build_with_jobs(&project, 4).expect("bench build");
    (t0.elapsed(), report.recompiled.len())
}

/// One timed request over the socket; the response must be a clean
/// zero-recompile report.
fn timed_noop(socket: &Path, request: &Request) -> (Duration, Response) {
    let t0 = Instant::now();
    let response = client::request(socket, request).expect("daemon answers");
    let dt = t0.elapsed();
    assert!(response.ok, "{}", response.error);
    assert_eq!(response.exit_code, 0, "{}", response.summary);
    assert!(
        response.summary.contains("0 recompiled"),
        "no-op must recompile nothing: {}",
        response.summary
    );
    (dt, response)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_daemon.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out <file>").clone(),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let sizes: &[usize] = if smoke { &[50] } else { &[50, 200, 800, 5000] };

    println!("== daemon no-op latency (best of {RUNS}) ==");
    let mut rows = Vec::new();
    for &n in sizes {
        let lib = n / 5;
        let w = workload(
            Topology::Library {
                lib,
                clients: n - lib,
                seed: 1994,
            },
            2,
            false,
        );
        assert_eq!(w.module_count(), n);
        let base =
            std::env::temp_dir().join(format!("smlsc-bench-daemon-{n}-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let src = base.join("src");
        let bin_dir = base.join("bins");
        std::fs::create_dir_all(&src).unwrap();
        write_sources(&src, &w);

        // One cold build populates the stamped archive layout.
        {
            let mut irm = Irm::new(Strategy::Cutoff);
            let project = Project::from_dir(&src).expect("bench sources scan");
            let report = irm.build_with_jobs(&project, 4).expect("cold build");
            assert_eq!(report.recompiled.len(), n);
            irm.save_bins(&bin_dir).expect("save archive");
            irm.save_stamps(&bin_dir.join("stamps.json"))
                .expect("save stamps");
        }

        // Baseline: the cold-process pipeline, warm caches on disk.
        let mut coldproc = Duration::MAX;
        for _ in 0..RUNS {
            let (dt, recompiled) = coldproc_pipeline(&src, &bin_dir);
            assert_eq!(recompiled, 0, "no-op build must recompile nothing");
            coldproc = coldproc.min(dt);
        }

        // The daemon, with the watcher parked (nothing edits the
        // project mid-measurement, and trusted no-ops must not race a
        // sweep).
        let mut config = ServerConfig::new(&src, &bin_dir);
        config.watch_interval = Duration::from_secs(3600);
        config.jobs = 4;
        let server = ServerHandle::spawn(config).expect("daemon spawns");
        let socket = server.socket_path().to_path_buf();
        // Prime one build so a retained snapshot exists.
        let (_, primed) = timed_noop(&socket, &Request::build(true));
        assert!(!primed.cached, "the primer is a real build");

        let mut daemon_stat = Duration::MAX;
        for _ in 0..RUNS {
            let (dt, _) = timed_noop(&socket, &Request::build(true));
            daemon_stat = daemon_stat.min(dt);
        }
        let mut daemon_trusted = Duration::MAX;
        for _ in 0..RUNS {
            let (dt, response) = timed_noop(&socket, &Request::build(false));
            assert!(response.cached, "trusted no-op is snapshot-served");
            daemon_trusted = daemon_trusted.min(dt);
        }
        server.stop().expect("daemon stops");

        let speedup = coldproc.as_secs_f64() / daemon_trusted.as_secs_f64().max(1e-9);
        println!(
            "  N={n}: coldproc {} ms | daemon stat-rescan {} ms | daemon trusted {} ms | {speedup:.0}x",
            ms(coldproc),
            ms(daemon_stat),
            ms(daemon_trusted)
        );
        rows.push(format!(
            r#"{{"units":{n},"coldproc_noop_ms":{},"daemon_stat_noop_ms":{},"daemon_trusted_noop_ms":{},"daemon_speedup":{speedup:.1}}}"#,
            ms(coldproc),
            ms(daemon_stat),
            ms(daemon_trusted)
        ));
        std::fs::remove_dir_all(&base).ok();
    }

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        r#"{{"bench":"daemon_latency","runs_per_point":{RUNS},"smoke":{smoke},"host_parallelism":{host},"underpowered_host":{},"rows":[{}]}}"#,
        host == 1,
        rows.join(",")
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("\nresults written to {out}");
}
