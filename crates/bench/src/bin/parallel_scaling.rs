//! Wavefront-scheduler scaling: cold builds at jobs ∈ {1, 2, 4, 8}.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin parallel_scaling
//! cargo run --release -p smlsc-bench --bin parallel_scaling -- --funs 20 --out BENCH_parallel.json
//! ```
//!
//! For each wide workload the table reports the cold-build wall clock at
//! every worker count, the speedup over `jobs=1`, and two ceilings the
//! observed speedup is bounded by: the DAG's (`units / critical_path`)
//! and the host's (available CPU parallelism).  Results are written to
//! `BENCH_parallel.json`.

use std::time::Duration;

use smlsc_bench::{critical_path, ms, time_cold_build_jobs, workload};
use smlsc_core::irm::Strategy;
use smlsc_workload::Topology;

const JOBS: [usize; 4] = [1, 2, 4, 8];
const RUNS: usize = 3;

struct Row {
    jobs: usize,
    best: Duration,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut funs = 12usize;
    let mut out = String::from("BENCH_parallel.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--funs" => funs = it.next().and_then(|v| v.parse().ok()).expect("--funs <n>"),
            "--out" => out = it.next().expect("--out <file>").clone(),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let host = std::thread::available_parallelism().map_or(1, usize::from);

    let workloads: [(&str, Topology); 3] = [
        ("diamond(8x4)", Topology::Diamond { width: 8, depth: 4 }),
        (
            "diamond(16x2)",
            Topology::Diamond {
                width: 16,
                depth: 2,
            },
        ),
        (
            "tree(d3 b4)",
            Topology::Tree {
                depth: 3,
                branching: 4,
            },
        ),
    ];

    println!("== parallel wavefront scaling (cold builds, best of {RUNS}) ==");
    println!("host parallelism: {host} (observed speedup is capped by min(jobs, {host}))");
    let mut json_workloads = Vec::new();
    for (name, topo) in workloads {
        let w = workload(topo, funs, false);
        let units = w.module_count();
        let cp = critical_path(&w);
        let ceiling = units as f64 / cp as f64;
        println!(
            "\n{name}: {units} units, {} lines, critical path {cp} (DAG ceiling {ceiling:.1}x)",
            w.total_lines()
        );
        println!("{:>6} {:>12} {:>9}", "jobs", "cold(ms)", "speedup");

        let mut rows: Vec<Row> = Vec::new();
        let mut baseline_report = None;
        for jobs in JOBS {
            let mut best = Duration::MAX;
            for _ in 0..RUNS {
                let (report, t) = time_cold_build_jobs(&w, Strategy::Cutoff, jobs);
                best = best.min(t);
                // Scaling must not change what was built.
                assert_eq!(report.recompiled.len(), units, "cold build compiles all");
                match &baseline_report {
                    None => baseline_report = Some(report),
                    Some(base) => assert_eq!(
                        base.decision_kinds(),
                        report.decision_kinds(),
                        "decisions must be identical at jobs={jobs}"
                    ),
                }
            }
            rows.push(Row { jobs, best });
        }
        let base = rows[0].best;
        for r in &rows {
            println!(
                "{:>6} {:>12} {:>8.2}x",
                r.jobs,
                ms(r.best),
                base.as_secs_f64() / r.best.as_secs_f64().max(1e-9)
            );
        }
        if host == 1 {
            // The caveat must sit next to the numbers it qualifies, not
            // only in the JSON `underpowered_host` field: on a 1-CPU
            // host every speedup above reads ≤ 1.0x, and without this
            // line those rows look like scheduler regressions.
            println!("  (underpowered host: 1 CPU — jobs>1 adds coordination cost, no parallelism; speedups here are not regressions)");
        }

        let results: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    r#"{{"jobs":{},"cold_ms":{},"speedup":{:.3}}}"#,
                    r.jobs,
                    ms(r.best),
                    base.as_secs_f64() / r.best.as_secs_f64().max(1e-9)
                )
            })
            .collect();
        json_workloads.push(format!(
            r#"{{"name":"{name}","units":{units},"lines":{},"critical_path":{cp},"dag_ceiling":{ceiling:.2},"results":[{}]}}"#,
            w.total_lines(),
            results.join(",")
        ));
    }

    if host == 1 {
        println!("\nwarning: single-CPU host; speedups above are not meaningful (underpowered_host=true in the JSON)");
    }
    let json = format!(
        r#"{{"bench":"parallel_wavefront_scaling","funs_per_module":{funs},"runs_per_point":{RUNS},"host_parallelism":{host},"underpowered_host":{},"workloads":[{}]}}"#,
        host == 1,
        json_workloads.join(",")
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("\nresults written to {out}");
}
