//! The CI perf-regression gate driver.
//!
//! ```text
//! check_bench --baseline BENCH_null.json --fresh target/BENCH_null_fresh.json \
//!             [--baseline BENCH_parallel.json --fresh target/BENCH_parallel_fresh.json] \
//!             [--factor 2.0] [--slack-ms 200] [--ledger path/to/builds.jsonl]
//! ```
//!
//! Every `--baseline` pairs with the `--fresh` in the same position.
//! Exit codes: 0 all gates passed; 1 a regression (or a failed ledger
//! smoke); 2 usage or unreadable/malformed input.

use smlsc_bench::gate::{check_warm_ledger, compare, Tolerance};

fn read_doc(path: &str) -> Result<serde::Value, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{path}: {e}"))?;
    serde_json::parse_value(&bytes).map_err(|e| format!("{path}: {e}"))
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut baselines: Vec<String> = Vec::new();
    let mut fresh: Vec<String> = Vec::new();
    let mut ledger: Option<String> = None;
    let mut tol = Tolerance::default();
    let mut it = args.iter();
    let usage = "usage: check_bench (--baseline <file> --fresh <file>)... [--factor <f>] [--slack-ms <ms>] [--ledger <builds.jsonl>]";
    while let Some(a) = it.next() {
        let mut take = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| {
                eprintln!("error: {flag} requires a value\n{usage}");
                std::process::exit(2);
            })
        };
        match a.as_str() {
            "--baseline" => baselines.push(take("--baseline")),
            "--fresh" => fresh.push(take("--fresh")),
            "--ledger" => ledger = Some(take("--ledger")),
            "--factor" => {
                tol.factor = take("--factor").parse().unwrap_or_else(|_| {
                    eprintln!("error: --factor expects a number\n{usage}");
                    std::process::exit(2);
                })
            }
            "--slack-ms" => {
                tol.slack_ms = take("--slack-ms").parse().unwrap_or_else(|_| {
                    eprintln!("error: --slack-ms expects a number\n{usage}");
                    std::process::exit(2);
                })
            }
            other => {
                eprintln!("error: unknown argument `{other}`\n{usage}");
                std::process::exit(2);
            }
        }
    }
    if baselines.len() != fresh.len() || (baselines.is_empty() && ledger.is_none()) {
        eprintln!("error: need matching --baseline/--fresh pairs (or --ledger)\n{usage}");
        std::process::exit(2);
    }

    let mut failed = false;
    for (base_path, fresh_path) in baselines.iter().zip(&fresh) {
        let pair = (read_doc(base_path), read_doc(fresh_path));
        let (base, doc) = match pair {
            (Ok(b), Ok(f)) => (b, f),
            (Err(e), _) | (_, Err(e)) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        };
        match compare(&base, &doc, &tol) {
            Ok(outcome) => {
                println!(
                    "gate {fresh_path} vs {base_path}: {} metric(s) checked, {} skipped, {} regression(s) [factor {:.2}, slack {:.0}ms]",
                    outcome.checked,
                    outcome.skipped,
                    outcome.regressions.len(),
                    tol.factor,
                    tol.slack_ms
                );
                for r in &outcome.regressions {
                    println!("  REGRESSION {r}");
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        }
    }
    if let Some(path) = &ledger {
        match check_warm_ledger(std::path::Path::new(path)) {
            Ok(()) => println!("gate {path}: warm-build ledger smoke ok"),
            Err(e) => {
                println!("  REGRESSION {e}");
                failed = true;
            }
        }
    }
    std::process::exit(i32::from(failed));
}
