//! Null-build latency: what the stamp cache and the indexed lazy bin
//! archive buy a warm build.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin null_build
//! cargo run --release -p smlsc-bench --bin null_build -- --smoke --out BENCH_null.json
//! ```
//!
//! Each point measures a full *cold-process* warm-build pipeline over
//! real on-disk sources: load bins, load stamps, scan the source
//! directory, and run an incremental cutoff build.  Two configurations
//! are compared at every size:
//!
//! * `stamped` — the fast path: stamp cache trusted, bins in the
//!   indexed `bins.pack` archive with lazy bodies;
//! * `paranoid` — the eager baseline: every source re-read and
//!   re-digested, bins in legacy per-unit `*.bin` files, every body
//!   parsed up front.
//!
//! For each, the no-op latency (nothing changed; zero recompiles) and
//! the one-leaf-edit latency (exactly one unit recompiles) are taken
//! best-of-`RUNS`, at `--jobs` 1 and 4, for N ∈ {50, 200, 800} units
//! (`--smoke`: N = 50 only).  Results land in `BENCH_null.json`.

use std::path::Path;
use std::time::{Duration, Instant};

use smlsc_bench::{ms, workload};
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_workload::{module_name, EditKind, Topology, Workload};

const RUNS: usize = 3;

#[derive(Clone, Copy, PartialEq)]
enum Mode {
    Stamped,
    Paranoid,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Stamped => "stamped",
            Mode::Paranoid => "paranoid",
        }
    }
}

fn write_sources(src: &Path, w: &Workload) {
    for i in 0..w.module_count() {
        let name = module_name(i);
        let text = w.project().file(&name).unwrap().read_text().unwrap();
        std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
    }
}

/// One cold-process warm build: load caches, scan sources, build.
/// Returns the wall clock of the whole pipeline and the manager (so the
/// caller can persist its caches, untimed).
fn pipeline(mode: Mode, src: &Path, bin_dir: &Path, jobs: usize) -> (Duration, usize, Irm) {
    let t0 = Instant::now();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.set_paranoid(mode == Mode::Paranoid);
    if mode == Mode::Stamped {
        irm.load_stamps(&bin_dir.join("stamps.json"));
    }
    if bin_dir.is_dir() {
        let outcome = irm.load_bins(bin_dir).expect("bench bins load");
        assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    }
    let project = Project::from_dir(src).expect("bench sources scan");
    let report = irm.build_with_jobs(&project, jobs).expect("bench build");
    let elapsed = t0.elapsed();
    (elapsed, report.recompiled.len(), irm)
}

/// Persists `irm`'s caches in `mode`'s on-disk format.
fn persist(mode: Mode, irm: &mut Irm, bin_dir: &Path) {
    match mode {
        Mode::Stamped => {
            irm.save_bins(bin_dir).expect("save archive");
            irm.save_stamps(&bin_dir.join("stamps.json"))
                .expect("save stamps");
        }
        Mode::Paranoid => irm.save_bins_files(bin_dir).expect("save legacy bins"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_null.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out <file>").clone(),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let sizes: &[usize] = if smoke { &[50] } else { &[50, 200, 800] };

    println!("== null-build latency (cold-process pipelines, best of {RUNS}) ==");
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for &n in sizes {
        let lib = n / 5;
        let mut w = workload(
            Topology::Library {
                lib,
                clients: n - lib,
                seed: 1994,
            },
            2,
            false,
        );
        assert_eq!(w.module_count(), n);
        let base =
            std::env::temp_dir().join(format!("smlsc-bench-null-{n}-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let src = base.join("src");
        std::fs::create_dir_all(&src).unwrap();
        write_sources(&src, &w);

        // One cold build populates both cache layouts.
        let dirs = [base.join("stamped"), base.join("paranoid")];
        let (_, compiled, mut cold) = pipeline(Mode::Paranoid, &src, &dirs[1], 4);
        assert_eq!(compiled, n);
        persist(Mode::Stamped, &mut cold, &dirs[0]);
        persist(Mode::Paranoid, &mut cold, &dirs[1]);

        // The edited unit: a library module with dependents, so the
        // cutoff doing its job (1 recompile, not a cascade) is part of
        // what is measured.
        let victim = 0;
        for jobs in [1usize, 4] {
            let mut noop_by_mode = [Duration::MAX; 2];
            for (m, mode) in [Mode::Stamped, Mode::Paranoid].into_iter().enumerate() {
                let bin_dir = &dirs[m];
                // Re-sync this layout's caches to the current sources
                // (edits from earlier measurements), untimed.
                let (_, _, mut irm) = pipeline(mode, &src, bin_dir, 4);
                persist(mode, &mut irm, bin_dir);

                let mut noop = Duration::MAX;
                for _ in 0..RUNS {
                    let (dt, recompiled, _) = pipeline(mode, &src, bin_dir, jobs);
                    assert_eq!(recompiled, 0, "no-op build must recompile nothing");
                    noop = noop.min(dt);
                }
                noop_by_mode[m] = noop;

                let mut leaf = Duration::MAX;
                for _ in 0..RUNS {
                    w.edit(victim, EditKind::BodyOnly);
                    let name = module_name(victim);
                    let text = w.project().file(&name).unwrap().read_text().unwrap();
                    std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
                    let (dt, recompiled, mut irm) = pipeline(mode, &src, bin_dir, jobs);
                    assert_eq!(recompiled, 1, "body-only leaf edit must recompile one unit");
                    leaf = leaf.min(dt);
                    persist(mode, &mut irm, bin_dir);
                }

                println!(
                    "  N={n} jobs={jobs} {:>8}: no-op {} ms | one-leaf-edit {} ms",
                    mode.name(),
                    ms(noop),
                    ms(leaf)
                );
                rows.push(format!(
                    r#"{{"units":{n},"mode":"{}","jobs":{jobs},"noop_ms":{},"leaf_edit_ms":{}}}"#,
                    mode.name(),
                    ms(noop),
                    ms(leaf)
                ));
            }
            let speedup = noop_by_mode[1].as_secs_f64() / noop_by_mode[0].as_secs_f64().max(1e-9);
            println!("  N={n} jobs={jobs} no-op speedup: {speedup:.1}x (stamped archive vs eager paranoid)");
            speedups.push(format!(
                r#"{{"units":{n},"jobs":{jobs},"noop_speedup":{speedup:.3}}}"#
            ));
        }
        std::fs::remove_dir_all(&base).ok();
    }

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        r#"{{"bench":"null_build","runs_per_point":{RUNS},"smoke":{smoke},"host_parallelism":{host},"underpowered_host":{},"rows":[{}],"noop_speedups":[{}]}}"#,
        host == 1,
        rows.join(","),
        speedups.join(",")
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("\nresults written to {out}");
}
