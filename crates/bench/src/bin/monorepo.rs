//! Monorepo-scale warm-build latency: the binary pack index, the
//! allocation-free rehydration path, the persisted import-DAG sidecar,
//! and dirty-set scheduling under module graphs up to 100,000 units.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin monorepo
//! cargo run --release -p smlsc-bench --bin monorepo -- --smoke --out BENCH_monorepo.json
//! cargo run --release -p smlsc-bench --bin monorepo -- --scale-smoke
//! cargo run --release -p smlsc-bench --bin monorepo -- --units 100000 --out /tmp/spot.json
//! ```
//!
//! Each point measures full *cold-process* pipelines over real on-disk
//! sources at N ∈ {5,000, 20,000, 50,000, 100,000} units (`--smoke`:
//! N = 5,000 only) of the [`Topology::Monorepo`] shape — hub
//! interfaces, deep functor chains, wide leaf fans:
//!
//! * `cold_ms` — first-ever build: everything compiles (timed once; a
//!   50k-unit cold build is too slow for best-of-N);
//! * `noop_ms` — nothing changed: the zero-copy warm path end to end
//!   (binary index, binary stamps, zero bodies parsed), best of `RUNS`;
//! * `leaf_edit_ms` — one leaf body edit: exactly one unit recompiles,
//!   best of `RUNS`.
//!
//! Results land in `BENCH_monorepo.json`, gated by `scripts/check_bench`
//! with the same row-matched tolerances as `BENCH_null.json`.

use std::path::Path;
use std::time::{Duration, Instant};

use smlsc_bench::{ms, workload};
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::trace::{self, names};
use smlsc_workload::{module_name, EditKind, Topology, Workload};

const RUNS: usize = 3;
const JOBS: usize = 4;

fn write_sources(src: &Path, w: &Workload) {
    for i in 0..w.module_count() {
        let name = module_name(i);
        let text = w.project().file(&name).unwrap().read_text().unwrap();
        std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
    }
}

/// One cold-process warm build over the stamped fast path: load the
/// binary stamp cache and the indexed archive, scan sources, build.
fn pipeline(src: &Path, bin_dir: &Path) -> (Duration, usize, Irm) {
    let t0 = Instant::now();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.load_stamps(&bin_dir.join("stamps.json"));
    if bin_dir.is_dir() {
        let outcome = irm.load_bins(bin_dir).expect("bench bins load");
        assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    }
    let project = Project::from_dir(src).expect("bench sources scan");
    let report = irm.build_with_jobs(&project, JOBS).expect("bench build");
    (t0.elapsed(), report.recompiled.len(), irm)
}

fn persist(irm: &mut Irm, bin_dir: &Path) {
    irm.save_bins(bin_dir).expect("save archive");
    irm.save_stamps(&bin_dir.join("stamps.json"))
        .expect("save stamps");
}

/// CI scale smoke: one 100,000-unit round trip — cold build, no-op,
/// one-leaf edit — gated on hard *counter* assertions rather than wall
/// clock (CI hosts are too noisy for a timing gate at this size): the
/// no-op reads zero source files and schedules an empty dirty set, the
/// import DAG rehydrates from its sidecar, and the leaf edit's dirty
/// seed and cone are both exactly the one edited unit.
fn scale_smoke() {
    const N: usize = 100_000;
    println!("== monorepo scale smoke (N={N}, jobs={JOBS}, counters asserted) ==");
    let mut w = workload(
        Topology::Monorepo {
            units: N,
            seed: 1994,
        },
        2,
        false,
    );
    let base = std::env::temp_dir().join(format!("smlsc-bench-scale-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let src = base.join("src");
    let bin_dir = base.join("bins");
    std::fs::create_dir_all(&src).unwrap();
    write_sources(&src, &w);

    let (cold, compiled, mut irm) = pipeline(&src, &bin_dir);
    assert_eq!(compiled, N, "cold build compiles everything");
    persist(&mut irm, &bin_dir);

    let collector = trace::Collector::new();
    collector.install();
    let (noop, recompiled, _) = pipeline(&src, &bin_dir);
    trace::uninstall();
    assert_eq!(recompiled, 0, "no-op build must recompile nothing");
    assert_eq!(
        collector.counter(names::SOURCE_READS),
        0,
        "no-op build must read zero source files"
    );
    assert_eq!(
        collector.counter(names::SCHED_DIRTY_SEED),
        0,
        "no-op build must seed an empty dirty set"
    );
    assert_eq!(
        collector.counter(names::SCHED_DIRTY_CONE),
        0,
        "no-op build must schedule an empty dirty cone"
    );
    assert_eq!(
        collector.counter(names::DEPS_PACK_HITS),
        1,
        "the import DAG must rehydrate from the deps.pack sidecar"
    );

    // The last module is a fan leaf: no dependents, so its dirty cone
    // is exactly itself — dirty-set size == cone size == 1 of 100,000.
    let victim = N - 1;
    w.edit(victim, EditKind::BodyOnly);
    let name = module_name(victim);
    let text = w.project().file(&name).unwrap().read_text().unwrap();
    std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
    let collector = trace::Collector::new();
    collector.install();
    let (leaf, recompiled, mut irm) = pipeline(&src, &bin_dir);
    trace::uninstall();
    assert_eq!(recompiled, 1, "leaf body edit must recompile one unit");
    assert_eq!(
        collector.counter(names::SCHED_DIRTY_SEED),
        1,
        "leaf edit must seed exactly the edited unit"
    );
    assert_eq!(
        collector.counter(names::SCHED_DIRTY_CONE),
        1,
        "fan-leaf dirty cone must equal the dirty seed"
    );
    persist(&mut irm, &bin_dir);

    println!(
        "  N={N} jobs={JOBS}: cold {} ms | no-op {} ms | one-leaf-edit {} ms",
        ms(cold),
        ms(noop),
        ms(leaf)
    );
    println!("scale smoke: all counters as asserted");
    std::fs::remove_dir_all(&base).ok();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_monorepo.json");
    let mut units: Option<Vec<usize>> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--scale-smoke" => return scale_smoke(),
            "--out" => out = it.next().expect("--out <file>").clone(),
            // Spot-measure specific sizes (comma-separated), e.g. to
            // re-run one noisy point without paying the full sweep.
            "--units" => {
                units = Some(
                    it.next()
                        .expect("--units <n,n,...>")
                        .split(',')
                        .map(|s| s.parse().expect("--units takes integers"))
                        .collect(),
                )
            }
            other => panic!("unknown argument `{other}`"),
        }
    }
    let sizes: Vec<usize> = match units {
        Some(v) => v,
        None if smoke => vec![5_000],
        None => vec![5_000, 20_000, 50_000, 100_000],
    };

    println!(
        "== monorepo warm-build latency (cold-process pipelines, warm points best of {RUNS}) =="
    );
    let mut rows = Vec::new();
    for &n in &sizes {
        let mut w = workload(
            Topology::Monorepo {
                units: n,
                seed: 1994,
            },
            2,
            false,
        );
        assert_eq!(w.module_count(), n);
        let base =
            std::env::temp_dir().join(format!("smlsc-bench-mono-{n}-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let src = base.join("src");
        let bin_dir = base.join("bins");
        std::fs::create_dir_all(&src).unwrap();
        write_sources(&src, &w);

        let (cold, compiled, mut irm) = pipeline(&src, &bin_dir);
        assert_eq!(compiled, n, "cold build compiles everything");
        persist(&mut irm, &bin_dir);

        let mut noop = Duration::MAX;
        for _ in 0..RUNS {
            let (dt, recompiled, _) = pipeline(&src, &bin_dir);
            assert_eq!(recompiled, 0, "no-op build must recompile nothing");
            noop = noop.min(dt);
        }

        // The last module is a fan leaf by construction: no dependents,
        // so a body edit recompiles exactly one of the N units.
        let victim = n - 1;
        let mut leaf = Duration::MAX;
        for _ in 0..RUNS {
            w.edit(victim, EditKind::BodyOnly);
            let name = module_name(victim);
            let text = w.project().file(&name).unwrap().read_text().unwrap();
            std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
            let (dt, recompiled, mut irm) = pipeline(&src, &bin_dir);
            assert_eq!(recompiled, 1, "leaf body edit must recompile one unit");
            leaf = leaf.min(dt);
            persist(&mut irm, &bin_dir);
        }

        println!(
            "  N={n} jobs={JOBS}: cold {} ms | no-op {} ms | one-leaf-edit {} ms",
            ms(cold),
            ms(noop),
            ms(leaf)
        );
        rows.push(format!(
            r#"{{"units":{n},"jobs":{JOBS},"cold_ms":{},"noop_ms":{},"leaf_edit_ms":{}}}"#,
            ms(cold),
            ms(noop),
            ms(leaf)
        ));
        std::fs::remove_dir_all(&base).ok();
    }

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        r#"{{"bench":"monorepo","runs_per_point":{RUNS},"smoke":{smoke},"host_parallelism":{host},"underpowered_host":{},"rows":[{}]}}"#,
        host == 1,
        rows.join(",")
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("\nresults written to {out}");
}
