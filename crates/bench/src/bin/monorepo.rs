//! Monorepo-scale warm-build latency: the binary pack index, the
//! allocation-free rehydration path, and the binary stamp cache under a
//! 50,000-unit module graph.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin monorepo
//! cargo run --release -p smlsc-bench --bin monorepo -- --smoke --out BENCH_monorepo.json
//! ```
//!
//! Each point measures full *cold-process* pipelines over real on-disk
//! sources at N ∈ {5,000, 20,000, 50,000} units (`--smoke`: N = 5,000
//! only) of the [`Topology::Monorepo`] shape — hub interfaces, deep
//! functor chains, wide leaf fans:
//!
//! * `cold_ms` — first-ever build: everything compiles (timed once; a
//!   50k-unit cold build is too slow for best-of-N);
//! * `noop_ms` — nothing changed: the zero-copy warm path end to end
//!   (binary index, binary stamps, zero bodies parsed), best of `RUNS`;
//! * `leaf_edit_ms` — one leaf body edit: exactly one unit recompiles,
//!   best of `RUNS`.
//!
//! Results land in `BENCH_monorepo.json`, gated by `scripts/check_bench`
//! with the same row-matched tolerances as `BENCH_null.json`.

use std::path::Path;
use std::time::{Duration, Instant};

use smlsc_bench::{ms, workload};
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_workload::{module_name, EditKind, Topology, Workload};

const RUNS: usize = 3;
const JOBS: usize = 4;

fn write_sources(src: &Path, w: &Workload) {
    for i in 0..w.module_count() {
        let name = module_name(i);
        let text = w.project().file(&name).unwrap().read_text().unwrap();
        std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
    }
}

/// One cold-process warm build over the stamped fast path: load the
/// binary stamp cache and the indexed archive, scan sources, build.
fn pipeline(src: &Path, bin_dir: &Path) -> (Duration, usize, Irm) {
    let t0 = Instant::now();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.load_stamps(&bin_dir.join("stamps.json"));
    if bin_dir.is_dir() {
        let outcome = irm.load_bins(bin_dir).expect("bench bins load");
        assert!(outcome.corrupt.is_empty(), "{:?}", outcome.corrupt);
    }
    let project = Project::from_dir(src).expect("bench sources scan");
    let report = irm.build_with_jobs(&project, JOBS).expect("bench build");
    (t0.elapsed(), report.recompiled.len(), irm)
}

fn persist(irm: &mut Irm, bin_dir: &Path) {
    irm.save_bins(bin_dir).expect("save archive");
    irm.save_stamps(&bin_dir.join("stamps.json"))
        .expect("save stamps");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_monorepo.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out <file>").clone(),
            other => panic!("unknown argument `{other}`"),
        }
    }
    let sizes: &[usize] = if smoke {
        &[5_000]
    } else {
        &[5_000, 20_000, 50_000]
    };

    println!(
        "== monorepo warm-build latency (cold-process pipelines, warm points best of {RUNS}) =="
    );
    let mut rows = Vec::new();
    for &n in sizes {
        let mut w = workload(
            Topology::Monorepo {
                units: n,
                seed: 1994,
            },
            2,
            false,
        );
        assert_eq!(w.module_count(), n);
        let base =
            std::env::temp_dir().join(format!("smlsc-bench-mono-{n}-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        let src = base.join("src");
        let bin_dir = base.join("bins");
        std::fs::create_dir_all(&src).unwrap();
        write_sources(&src, &w);

        let (cold, compiled, mut irm) = pipeline(&src, &bin_dir);
        assert_eq!(compiled, n, "cold build compiles everything");
        persist(&mut irm, &bin_dir);

        let mut noop = Duration::MAX;
        for _ in 0..RUNS {
            let (dt, recompiled, _) = pipeline(&src, &bin_dir);
            assert_eq!(recompiled, 0, "no-op build must recompile nothing");
            noop = noop.min(dt);
        }

        // The last module is a fan leaf by construction: no dependents,
        // so a body edit recompiles exactly one of the N units.
        let victim = n - 1;
        let mut leaf = Duration::MAX;
        for _ in 0..RUNS {
            w.edit(victim, EditKind::BodyOnly);
            let name = module_name(victim);
            let text = w.project().file(&name).unwrap().read_text().unwrap();
            std::fs::write(src.join(format!("{name}.sml")), text).unwrap();
            let (dt, recompiled, mut irm) = pipeline(&src, &bin_dir);
            assert_eq!(recompiled, 1, "leaf body edit must recompile one unit");
            leaf = leaf.min(dt);
            persist(&mut irm, &bin_dir);
        }

        println!(
            "  N={n} jobs={JOBS}: cold {} ms | no-op {} ms | one-leaf-edit {} ms",
            ms(cold),
            ms(noop),
            ms(leaf)
        );
        rows.push(format!(
            r#"{{"units":{n},"jobs":{JOBS},"cold_ms":{},"noop_ms":{},"leaf_edit_ms":{}}}"#,
            ms(cold),
            ms(noop),
            ms(leaf)
        ));
        std::fs::remove_dir_all(&base).ok();
    }

    let host = std::thread::available_parallelism().map_or(1, usize::from);
    let json = format!(
        r#"{{"bench":"monorepo","runs_per_point":{RUNS},"smoke":{smoke},"host_parallelism":{host},"underpowered_host":{},"rows":[{}]}}"#,
        host == 1,
        rows.join(",")
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("\nresults written to {out}");
}
