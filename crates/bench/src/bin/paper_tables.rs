//! Regenerates every measured claim of Appel & MacQueen 1994.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin paper_tables            # all tables
//! cargo run --release -p smlsc-bench --bin paper_tables -- e3      # one table
//! cargo run --release -p smlsc-bench --bin paper_tables -- e1 --full   # paper-scale E1
//! ```
//!
//! Table ids follow `EXPERIMENTS.md` / `DESIGN.md` §4.

use std::time::Instant;

use smlsc_bench::{
    histogram_row, ms, paper_scale, pct, recompiles_after_edit, time_full_build,
    time_full_build_with_telemetry,
};
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::unit::BinFile;
use smlsc_ids::digest::log2_collision_probability;
use smlsc_ids::{Digest128, Pid};
use smlsc_pickle::{collect_external_pids, dehydrate, ContextPids, PickleOptions};
use smlsc_statics::elab::{elaborate_unit, ImportEnv};
use smlsc_workload::{EditKind, Topology};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let all = which.is_empty();
    let run = |id: &str| all || which.contains(&id);

    if run("e1") {
        e1_manager_overhead(full);
    }
    if run("e2") {
        e2_collisions();
    }
    if run("e3") {
        e3_cutoff_vs_baselines();
    }
    if run("e4") {
        e4_sharing();
    }
    if run("e5") {
        e5_indexed_contexts();
    }
    if run("e6") {
        e6_type_safe_linkage();
    }
}

/// §6: "hashing took 20 seconds … of a 32-minute compile" and
/// "dehydration/rehydration … 0.01 seconds [per unit]": the manager's
/// overhead is a small fraction of compilation.
fn e1_manager_overhead(full: bool) {
    // funs=150 gives ≈65k lines over 200 units (the paper's corpus size);
    // the default is smaller so the table regenerates quickly.
    let funs = if full { 150 } else { 40 };
    let w = paper_scale(funs);
    println!("== E1: manager overhead within a full build ==");
    println!(
        "workload: {} units, {} source lines{}",
        w.module_count(),
        w.total_lines(),
        if full {
            " (paper scale)"
        } else {
            " (use --full for ~65k lines)"
        }
    );
    let (mut irm, report, total, telemetry) = time_full_build_with_telemetry(&w, Strategy::Cutoff);
    let t = &report.timings;
    println!("{:<28} {:>10} {:>8}", "phase", "time(ms)", "share");
    println!(
        "{:<28} {:>10} {:>8}",
        "parse",
        ms(t.parse),
        pct(t.parse, total)
    );
    println!(
        "{:<28} {:>10} {:>8}",
        "elaborate (typecheck+translate)",
        ms(t.elaborate),
        pct(t.elaborate, total)
    );
    println!(
        "{:<28} {:>10} {:>8}  <- the paper's ~1%",
        "hash (intrinsic pids)",
        ms(t.hash),
        pct(t.hash, total)
    );
    println!(
        "{:<28} {:>10} {:>8}  <- the paper's ~1%",
        "dehydrate (pickling)",
        ms(t.dehydrate),
        pct(t.dehydrate, total)
    );
    println!("{:<28} {:>10} {:>8}", "total build", ms(total), "100%");

    // Real per-unit distributions from the trace collector — aggregate
    // sums above hide the tail; the paper's per-unit claims live here.
    println!("\nper-unit phase histograms (µs):");
    println!(
        "{:<20} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "span", "count", "p50", "p90", "p99", "max"
    );
    for name in [
        "compile.parse",
        "compile.elaborate",
        "compile.hash",
        "compile.dehydrate",
        "pickle.dehydrate",
        "irm.analyze",
    ] {
        if let Some(row) = histogram_row(&telemetry, name) {
            println!("{row}");
        }
    }

    // Incremental rebuild: rehydration cost of cached statenvs.
    let mut w2 = paper_scale(funs);
    let victim = w2.most_depended_on();
    w2.edit(victim, EditKind::InterfaceAdd);
    let t0 = Instant::now();
    let inc = irm.build(w2.project()).expect("incremental build");
    let inc_total = t0.elapsed();
    println!(
        "incremental build after an interface edit: {} units recompiled, {} ms total, {} µs rehydrating cached statenvs",
        inc.recompiled.len(),
        ms(inc_total),
        inc.rehydrate.as_micros(),
    );
    println!();
}

/// §5: pid collision probabilities.  At truncated widths the observed
/// birthday collisions match n²/2^w; at 128 bits the same arithmetic
/// gives the paper's 2⁻¹⁰².
fn e2_collisions() {
    println!("== E2: pid collision probabilities (§5) ==");
    println!(
        "{:>6} {:>8} {:>12} {:>12}",
        "width", "n", "observed", "expected(n²/2^w)"
    );
    for width in [16u32, 20, 24] {
        for n in [1u64 << 8, 1 << 10, 1 << 12] {
            let mut seen = std::collections::HashSet::new();
            let mut collisions = 0u64;
            for i in 0..n {
                let mut d = Digest128::new();
                d.write_str("synthetic interface");
                d.write_u64(i);
                let h = d.finish_pid().truncate(width);
                if !seen.insert(h) {
                    collisions += 1;
                }
            }
            let expected = (n as f64) * (n as f64) / 2f64.powi(width as i32);
            println!(
                "{:>6} {:>8} {:>12} {:>12.2}",
                width, n, collisions, expected
            );
        }
    }
    let lg = log2_collision_probability(1 << 13, 128);
    println!("at 128 bits with 2^13 pids: log2 P(collision) = {lg:.0}  (paper: -102)");
    // Sanity at full width over real interfaces: all export pids of a
    // 200-unit workload are distinct.
    let w = paper_scale(2);
    let (irm, _, _) = time_full_build(&w, Strategy::Cutoff);
    let mut pids = std::collections::HashSet::new();
    for i in 0..w.module_count() {
        let bin = irm.bin(&smlsc_workload::module_name(i)).expect("built");
        pids.insert(bin.unit.export_pid);
    }
    println!(
        "full-width check: {} units -> {} distinct export pids\n",
        w.module_count(),
        pids.len()
    );
}

/// §1/§5: units recompiled after one edit — cutoff vs. make vs.
/// classical, across topologies and edit kinds.
fn e3_cutoff_vs_baselines() {
    println!("== E3: units recompiled after one edit to the most-depended-on module ==");
    let topologies: [(&str, Topology); 3] = [
        ("chain(50)", Topology::Chain { n: 50 }),
        ("diamond(8x8)", Topology::Diamond { width: 8, depth: 8 }),
        (
            "library(120)",
            Topology::Library {
                lib: 20,
                clients: 100,
                seed: 7,
            },
        ),
    ];
    let edits = [
        ("comment", EditKind::CommentOnly),
        ("body", EditKind::BodyOnly),
        ("iface-add", EditKind::InterfaceAdd),
        ("type-change", EditKind::InterfaceChangeType),
    ];
    for relay in [false, true] {
        println!(
            "\n-- interfaces {} dependency types --",
            if relay {
                "RELAY (re-export)"
            } else {
                "do not mention"
            }
        );
        println!(
            "{:<14} {:<12} {:>7} {:>8} {:>10} {:>10}",
            "topology", "edit", "units", "cutoff", "timestamp", "classical"
        );
        for (tname, topo) in topologies {
            for (ename, kind) in edits {
                let mut row = Vec::new();
                let mut total = 0;
                for strategy in [Strategy::Cutoff, Strategy::Timestamp, Strategy::Classical] {
                    let (n, t) = recompiles_after_edit(topo, 3, relay, kind, strategy);
                    row.push(n);
                    total = t;
                }
                println!(
                    "{:<14} {:<12} {:>7} {:>8} {:>10} {:>10}",
                    tname, ename, total, row[0], row[1], row[2]
                );
            }
        }
    }
    println!();
}

/// §4: sharing preservation — without it, pickles of shared DAGs blow up
/// exponentially.
fn e4_sharing() {
    println!("== E4: pickle size with and without DAG-sharing preservation (§4) ==");
    println!(
        "{:>6} {:>14} {:>16} {:>8}",
        "depth", "shared(bytes)", "unshared(bytes)", "ratio"
    );
    for depth in [2usize, 4, 6, 8, 10, 12] {
        let mut src = String::from("structure S0 = struct val x = 1 end\n");
        for i in 1..=depth {
            src.push_str(&format!(
                "structure S{i} = struct structure L = S{} structure R = S{} end\n",
                i - 1,
                i - 1
            ));
        }
        let ast = smlsc_syntax::parse_unit(&src).expect("parses");
        let unit = elaborate_unit(&ast, &ImportEnv::empty()).expect("elaborates");
        smlsc_pickle::testing::assign_dummy_pids(&unit.exports);
        let shared = dehydrate(
            &unit.exports,
            &ContextPids::indexed([]),
            &PickleOptions::default(),
        )
        .expect("pickles");
        let unshared = dehydrate(
            &unit.exports,
            &ContextPids::indexed([]),
            &PickleOptions {
                preserve_sharing: false,
            },
        )
        .expect("pickles");
        println!(
            "{:>6} {:>14} {:>16} {:>7.1}x",
            depth,
            shared.bytes.len(),
            unshared.bytes.len(),
            unshared.bytes.len() as f64 / shared.bytes.len() as f64
        );
    }
    println!();
}

/// §5: indexed vs. linear context environments during dehydration.
fn e5_indexed_contexts() {
    println!("== E5: dehydration with indexed vs. linear context lookup (§5) ==");
    // A unit importing a real dependency, dehydrated against contexts of
    // growing size (padding with synthetic pids).
    let dep_src = "structure Dep = struct datatype d = D of int val x = D 1 fun get (D n) = n end";
    let dep_ast = smlsc_syntax::parse_unit(dep_src).expect("parses");
    let dep = elaborate_unit(&dep_ast, &ImportEnv::empty()).expect("elaborates");
    smlsc_core::hash_exports(smlsc_ids::Symbol::intern("dep"), &dep.exports).expect("hashes");

    let mut client_src = String::from("structure C = struct\n");
    for i in 0..60 {
        client_src.push_str(&format!("  fun f{i} y = Dep.get (Dep.D y) + {i}\n"));
        client_src.push_str(&format!("  val v{i} : Dep.d = Dep.D {i}\n"));
    }
    client_src.push_str("end\n");
    let client_ast = smlsc_syntax::parse_unit(&client_src).expect("parses");
    let client = elaborate_unit(
        &client_ast,
        &ImportEnv {
            units: vec![smlsc_statics::elab::ImportedUnit {
                name: smlsc_ids::Symbol::intern("dep"),
                exports: dep.exports.clone(),
            }],
            shadowing: false,
        },
    )
    .expect("elaborates");
    smlsc_core::hash_exports(smlsc_ids::Symbol::intern("client"), &client.exports).expect("hashes");
    let real = collect_external_pids([dep.exports.as_ref()]);

    println!(
        "{:>10} {:>14} {:>14} {:>8}",
        "ctx pids", "indexed(µs)", "linear(µs)", "ratio"
    );
    for extra in [100usize, 1_000, 10_000, 50_000] {
        let mut pids: Vec<Pid> = real.clone();
        // Synthetic padding *below* the real pids so linear search pays.
        let mut padded: Vec<Pid> = (0..extra)
            .map(|i| Pid::of_bytes(format!("ctx-{i}").as_bytes()))
            .collect();
        padded.append(&mut pids);
        let reps = 20;
        let indexed_ctx = ContextPids::indexed(padded.clone());
        let t0 = Instant::now();
        for _ in 0..reps {
            dehydrate(&client.exports, &indexed_ctx, &PickleOptions::default()).expect("pickles");
        }
        let indexed = t0.elapsed() / reps;
        let linear_ctx = ContextPids::linear(padded);
        let t0 = Instant::now();
        for _ in 0..reps {
            dehydrate(&client.exports, &linear_ctx, &PickleOptions::default()).expect("pickles");
        }
        let linear = t0.elapsed() / reps;
        println!(
            "{:>10} {:>14.1} {:>14.1} {:>7.1}x",
            extra,
            indexed.as_secs_f64() * 1e6,
            linear.as_secs_f64() * 1e6,
            linear.as_secs_f64() / indexed.as_secs_f64().max(1e-9)
        );
    }
    println!();
}

/// §3/§5: the type-safe linker catches the "makefile bug".
fn e6_type_safe_linkage() {
    println!("== E6: type-safe linkage (§5's impossible makefile bug) ==");
    let build = || {
        let mut p = Project::new();
        p.add("config", "structure Config = struct val limit = 10 end");
        p.add(
            "engine",
            "structure Engine = struct fun run x = if x < Config.limit then x else Config.limit end",
        );
        p
    };
    println!("{:<12} {:<28} {:<10}", "strategy", "scenario", "outcome");
    for strategy in [Strategy::Timestamp, Strategy::Cutoff] {
        let mut irm = Irm::new(strategy);
        let mut p = build();
        irm.build(&p).expect("builds");
        p.edit(
            "config",
            "structure Config = struct val maxValue = 10 val limit = 10 end",
        )
        .expect("edits");
        // Clock skew: the dependent's bin claims to be newest.
        let mut skewed: BinFile = irm.bin("engine").expect("built").clone();
        skewed.mtime = u64::MAX;
        irm.inject_bin(skewed);
        let outcome = match irm.execute(&p) {
            Ok((report, _)) => format!(
                "linked (recompiled {:?})",
                report
                    .recompiled
                    .iter()
                    .map(|s| s.as_str())
                    .collect::<Vec<_>>()
            ),
            Err(e) => format!("REFUSED: {e}"),
        };
        println!(
            "{:<12} {:<28} {}",
            strategy.to_string(),
            "iface edit + clock skew",
            outcome
        );
    }
    println!();
}
