//! Artifact-store warmth: what a shared store buys a cold session.
//!
//! ```text
//! cargo run --release -p smlsc-bench --bin store_warmth
//! cargo run --release -p smlsc-bench --bin store_warmth -- --funs 12 --out BENCH_store.json
//! ```
//!
//! Four measurements per workload, each a *cold session* (fresh manager,
//! no bins):
//!
//! 1. `cold_ms` — no store at all: compile everything (the baseline);
//! 2. `publish_ms` — empty store attached: compile everything *and*
//!    publish every object (the write overhead);
//! 3. `warm_ms` — warm store attached: zero compiles, every unit
//!    rehydrated from the store (the payoff);
//! 4. `shared_hits` — a *different* project overlapping this one in its
//!    first half hits the store for exactly the shared prefix.
//!
//! Plus the cost of a size-capped GC sweep over the populated store.
//! Results are written to `BENCH_store.json`.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use smlsc_bench::{ms, workload};
use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::store::{GcConfig, Store};
use smlsc_workload::{module_name, Topology};

const RUNS: usize = 3;

fn fresh_store(tag: &str) -> (PathBuf, Arc<Store>) {
    let root = std::env::temp_dir().join(format!("smlsc-bench-store-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let store = Arc::new(Store::open(&root).expect("open bench store"));
    (root, store)
}

/// Best-of-`RUNS` cold-session build; `store` is attached when given.
/// Returns (best wall clock, store hits, compiles) of the last run.
fn time_cold(
    project: &Project,
    store: Option<&Arc<Store>>,
    reset: impl Fn(),
) -> (Duration, usize, usize) {
    let mut best = Duration::MAX;
    let mut hits = 0;
    let mut compiles = 0;
    for _ in 0..RUNS {
        reset();
        let mut irm = match store {
            Some(s) => Irm::with_store(Strategy::Cutoff, Arc::clone(s)),
            None => Irm::new(Strategy::Cutoff),
        };
        let t0 = Instant::now();
        let report = irm.build(project).expect("bench build");
        best = best.min(t0.elapsed());
        hits = report.store_hits.len();
        compiles = report.recompiled.len();
    }
    (best, hits, compiles)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut funs = 8usize;
    let mut out = String::from("BENCH_store.json");
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--funs" => funs = it.next().and_then(|v| v.parse().ok()).expect("--funs <n>"),
            "--out" => out = it.next().expect("--out <file>").clone(),
            other => panic!("unknown argument `{other}`"),
        }
    }

    let workloads: [(&str, Topology); 3] = [
        ("chain(24)", Topology::Chain { n: 24 }),
        ("diamond(8x4)", Topology::Diamond { width: 8, depth: 4 }),
        (
            "tree(d3 b4)",
            Topology::Tree {
                depth: 3,
                branching: 4,
            },
        ),
    ];

    println!("== artifact-store warmth (cold sessions, best of {RUNS}) ==");
    let mut json_rows = Vec::new();
    for (name, topo) in workloads {
        let w = workload(topo, funs, false);
        let project = w.project();
        let units = w.module_count();

        // 1. Baseline: no store.
        let (cold, _, cold_compiles) = time_cold(project, None, || {});
        assert_eq!(cold_compiles, units);

        // 2. Publish overhead: every run starts from an *empty* store.
        let (root, store) = fresh_store(name.split('(').next().unwrap_or("w"));
        let (publish, _, _) = time_cold(project, Some(&store), || {
            store.clear().expect("clear bench store");
        });

        // 3. Warm store: populate once, then measure all-hit sessions.
        store.clear().expect("clear bench store");
        Irm::with_store(Strategy::Cutoff, Arc::clone(&store))
            .build(project)
            .expect("warming build");
        let (warm, warm_hits, warm_compiles) = time_cold(project, Some(&store), || {});
        assert_eq!(warm_hits, units, "warm session must be all store hits");
        assert_eq!(warm_compiles, 0, "warm session must compile nothing");

        // 4. Cross-project sharing: a second project containing a
        // dependency-closed half of this one's units (same text, same
        // deps) hits the store for every one of them.
        let mut included: Vec<usize> = Vec::new();
        for (i, deps) in w.deps().iter().enumerate() {
            if included.len() >= units / 2 {
                break;
            }
            if deps.iter().all(|d| included.contains(d)) {
                included.push(i);
            }
        }
        let shared = included.len();
        let mut other = Project::new();
        for &i in &included {
            let name = module_name(i);
            let f = project.file(&name).expect("workload module exists");
            other.add(name, f.read_text().expect("workload sources are inline"));
        }
        let mut irm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
        let report = irm.build(&other).expect("cross-project build");
        let shared_hits = report.store_hits.len();
        assert_eq!(shared_hits, shared, "shared units must all hit the store");

        // 5. GC sweep over the populated store, capped to half its size.
        let bytes = store.stats().expect("stats").bytes;
        let t0 = Instant::now();
        let gc = store
            .gc(&GcConfig {
                max_bytes: Some(bytes / 2),
                max_age: None,
            })
            .expect("gc");
        let gc_time = t0.elapsed();

        let speedup = cold.as_secs_f64() / warm.as_secs_f64().max(1e-9);
        println!("\n{name}: {units} units, {} lines", w.total_lines());
        println!(
            "  cold {} ms | cold+publish {} ms | warm-store {} ms ({speedup:.1}x vs cold)",
            ms(cold),
            ms(publish),
            ms(warm)
        );
        println!(
            "  cross-project: {shared_hits}/{shared} shared units from store; gc: evicted {} of {} in {} ms",
            gc.evicted,
            gc.examined,
            ms(gc_time)
        );

        json_rows.push(format!(
            r#"{{"name":"{name}","units":{units},"lines":{},"cold_ms":{},"cold_publish_ms":{},"warm_store_ms":{},"warm_speedup":{speedup:.3},"warm_store_hits":{warm_hits},"shared_units":{shared},"shared_hits":{shared_hits},"gc_examined":{},"gc_evicted":{},"gc_ms":{}}}"#,
            w.total_lines(),
            ms(cold),
            ms(publish),
            ms(warm),
            gc.examined,
            gc.evicted,
            ms(gc_time)
        ));
        std::fs::remove_dir_all(&root).ok();
    }

    let json = format!(
        r#"{{"bench":"store_warmth","funs_per_module":{funs},"runs_per_point":{RUNS},"workloads":[{}]}}"#,
        json_rows.join(",")
    );
    std::fs::write(&out, &json).expect("write benchmark output");
    println!("\nresults written to {out}");
}
