//! Pickle round-trip tests: dehydrate → rehydrate must preserve the
//! semantics of static environments, including sharing, recursion,
//! signatures, functors, and cross-unit stubs.

use std::sync::Arc;

use smlsc_dynamics::eval::execute;
use smlsc_ids::Symbol;
use smlsc_pickle::testing::assign_dummy_pids;
use smlsc_pickle::{
    dehydrate, rehydrate, ContextPids, PickleError, PickleOptions, RehydrateContext,
};
use smlsc_statics::elab::{elaborate_unit, ElabUnit, ImportEnv, ImportedUnit};
use smlsc_statics::env::Bindings;

fn compile(src: &str, imports: &ImportEnv) -> ElabUnit {
    let ast = smlsc_syntax::parse_unit(src).unwrap();
    let u = elaborate_unit(&ast, imports).unwrap_or_else(|e| panic!("{e}"));
    assign_dummy_pids(&u.exports);
    u
}

fn roundtrip(exports: &Bindings) -> Arc<Bindings> {
    let p = dehydrate(
        exports,
        &ContextPids::indexed([]),
        &PickleOptions::default(),
    )
    .expect("dehydrate");
    let (b, _) = rehydrate(&p.bytes, &RehydrateContext::with_pervasives([])).expect("rehydrate");
    b
}

#[test]
fn simple_structure_roundtrip() {
    let u = compile(
        "structure A = struct val x = 1 fun f y = y + x end",
        &ImportEnv::empty(),
    );
    let b = roundtrip(&u.exports);
    let a = b.str(Symbol::intern("A")).unwrap();
    assert!(a.bindings.val(Symbol::intern("x")).is_some());
    assert!(a.bindings.val(Symbol::intern("f")).is_some());
}

#[test]
fn recursive_datatype_roundtrip() {
    let u = compile(
        "structure T = struct datatype tree = Leaf | Node of tree * tree end",
        &ImportEnv::empty(),
    );
    let b = roundtrip(&u.exports);
    let t = b.str(Symbol::intern("T")).unwrap();
    let tc = t.bindings.tycon(Symbol::intern("tree")).unwrap();
    let info = tc.datatype_info().unwrap();
    // The recursive occurrence must point back at the same rebuilt tycon.
    let Some(smlsc_statics::types::Type::Tuple(ts)) = &info.cons[1].arg else {
        panic!()
    };
    let smlsc_statics::types::Type::Con(inner, _) = &ts[0] else {
        panic!()
    };
    assert_eq!(inner.stamp, tc.stamp);
}

#[test]
fn sharing_is_preserved() {
    // Two structures sharing one datatype: after rehydration they must
    // still share a single tycon (same stamp), or cross-structure uses
    // would stop type-checking.
    let u = compile(
        "structure A = struct datatype d = D of int end
         structure B = struct val f = fn (x : A.d) => x end",
        &ImportEnv::empty(),
    );
    let b = roundtrip(&u.exports);
    let a_tc = b
        .str(Symbol::intern("A"))
        .unwrap()
        .bindings
        .tycon(Symbol::intern("d"))
        .unwrap()
        .clone();
    let f = b
        .str(Symbol::intern("B"))
        .unwrap()
        .bindings
        .val(Symbol::intern("f"))
        .unwrap()
        .clone();
    let smlsc_statics::types::Type::Arrow(arg, _) = f.scheme.body.head_normalize() else {
        panic!()
    };
    let smlsc_statics::types::Type::Con(tc, _) = arg.head_normalize() else {
        panic!()
    };
    assert_eq!(tc.stamp, a_tc.stamp, "sharing lost in pickle");
}

#[test]
fn pervasives_become_stubs() {
    let u = compile("structure A = struct val x = 1 end", &ImportEnv::empty());
    let p = dehydrate(
        &u.exports,
        &ContextPids::indexed([]),
        &PickleOptions::default(),
    )
    .unwrap();
    assert!(p.stats.stubs >= 1, "int should be a stub: {:?}", p.stats);
}

#[test]
fn rehydrated_signature_still_matches() {
    // A signature pickled in one "session" must still support matching
    // and transparent functor application after rehydration.
    let lib = compile(
        "signature NUM = sig type t val mk : int -> t val get : t -> int end
         functor Twice (X : NUM) = struct val n = X.get (X.mk 21) * 2 end",
        &ImportEnv::empty(),
    );
    let rehydrated = roundtrip(&lib.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("lib"),
            exports: rehydrated,
        }],
        shadowing: false,
    };
    let client = compile(
        "structure Impl : NUM = struct type t = int fun mk x = x fun get x = x end
         structure R = Twice(Impl)
         structure Out = struct val answer = R.n end",
        &imports,
    );
    // Execute across the boundary too.
    let lib_val = execute(&lib.code, &[]).unwrap();
    let v = execute(&client.code, &[lib_val]).unwrap();
    let smlsc_dynamics::value::Value::Record(_) = v else {
        panic!()
    };
}

#[test]
fn cross_unit_stub_resolution() {
    // B's pickle must stub A's entities and resolve them against a
    // freshly rehydrated A.
    let a = compile(
        "structure A = struct datatype d = D of int val x = D 1 end",
        &ImportEnv::empty(),
    );
    let a_re = roundtrip(&a.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("a"),
            exports: a_re.clone(),
        }],
        shadowing: false,
    };
    let b = compile("structure B = struct val y = A.x end", &imports);
    let ctx_pids = smlsc_pickle::collect_external_pids([a_re.as_ref()]);
    let p = dehydrate(
        &b.exports,
        &ContextPids::indexed(ctx_pids),
        &PickleOptions::default(),
    )
    .unwrap();
    assert!(p.stats.stubs >= 1, "A.d should be stubbed");
    // Rehydrate B against a context containing A.
    let ctx = RehydrateContext::with_pervasives([a_re.as_ref()]);
    let (b_re, stats) = rehydrate(&p.bytes, &ctx).unwrap();
    assert!(stats.stubs >= 1);
    let y = b_re
        .str(Symbol::intern("B"))
        .unwrap()
        .bindings
        .val(Symbol::intern("y"))
        .unwrap()
        .clone();
    // y's type must be A's (rehydrated) tycon, shared by stamp.
    let a_tc = a_re
        .str(Symbol::intern("A"))
        .unwrap()
        .bindings
        .tycon(Symbol::intern("d"))
        .unwrap()
        .clone();
    let smlsc_statics::types::Type::Con(tc, _) = y.scheme.body.head_normalize() else {
        panic!()
    };
    assert_eq!(tc.stamp, a_tc.stamp);
}

#[test]
fn missing_stub_is_a_linkage_error() {
    let a = compile(
        "structure A = struct datatype d = D of int val x = D 1 end",
        &ImportEnv::empty(),
    );
    let a_re = roundtrip(&a.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("a"),
            exports: a_re.clone(),
        }],
        shadowing: false,
    };
    let b = compile("structure B = struct val y = A.x end", &imports);
    let ctx_pids = smlsc_pickle::collect_external_pids([a_re.as_ref()]);
    let p = dehydrate(
        &b.exports,
        &ContextPids::indexed(ctx_pids),
        &PickleOptions::default(),
    )
    .unwrap();
    // Rehydrating without A in context must fail with UnknownStub.
    let err = rehydrate(&p.bytes, &RehydrateContext::with_pervasives([])).unwrap_err();
    assert!(matches!(err, PickleError::UnknownStub(_)), "{err}");
}

#[test]
fn missing_pid_is_rejected() {
    let ast = smlsc_syntax::parse_unit("structure A = struct datatype d = D end").unwrap();
    let u = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    // No pids assigned.
    let err = dehydrate(
        &u.exports,
        &ContextPids::indexed([]),
        &PickleOptions::default(),
    )
    .unwrap_err();
    assert!(matches!(err, PickleError::MissingPid(_)), "{err}");
}

#[test]
fn corrupt_bytes_are_rejected() {
    let err = rehydrate(&[1, 2, 3], &RehydrateContext::with_pervasives([])).unwrap_err();
    assert!(matches!(err, PickleError::Corrupt(_)));
    let u = compile("structure A = struct val x = 1 end", &ImportEnv::empty());
    let p = dehydrate(
        &u.exports,
        &ContextPids::indexed([]),
        &PickleOptions::default(),
    )
    .unwrap();
    let mut bytes = p.bytes.clone();
    bytes.truncate(bytes.len() / 2);
    assert!(rehydrate(&bytes, &RehydrateContext::with_pervasives([])).is_err());
}

#[test]
fn sharing_off_blows_up_size() {
    // E4's point: a deep DAG of shared substructures pickles linearly
    // with sharing, exponentially without.
    let mut src = String::from("structure S0 = struct val x = 1 end\n");
    for i in 1..=8 {
        src.push_str(&format!(
            "structure S{i} = struct structure L = S{} structure R = S{} end\n",
            i - 1,
            i - 1
        ));
    }
    let u = compile(&src, &ImportEnv::empty());
    let shared = dehydrate(
        &u.exports,
        &ContextPids::indexed([]),
        &PickleOptions::default(),
    )
    .unwrap();
    let unshared = dehydrate(
        &u.exports,
        &ContextPids::indexed([]),
        &PickleOptions {
            preserve_sharing: false,
        },
    )
    .unwrap();
    assert!(
        unshared.bytes.len() > 10 * shared.bytes.len(),
        "shared {} vs unshared {}",
        shared.bytes.len(),
        unshared.bytes.len()
    );
}

#[test]
fn linear_and_indexed_contexts_agree() {
    let a = compile("structure A = struct val x = 1 end", &ImportEnv::empty());
    let a_re = roundtrip(&a.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("a"),
            exports: a_re.clone(),
        }],
        shadowing: false,
    };
    let b = compile("structure B = struct val y = A.x end", &imports);
    let pids = smlsc_pickle::collect_external_pids([a_re.as_ref()]);
    let p1 = dehydrate(
        &b.exports,
        &ContextPids::indexed(pids.clone()),
        &PickleOptions::default(),
    )
    .unwrap();
    let p2 = dehydrate(
        &b.exports,
        &ContextPids::linear(pids),
        &PickleOptions::default(),
    )
    .unwrap();
    assert_eq!(p1.bytes, p2.bytes);
}

#[test]
fn opaque_types_survive_roundtrip() {
    let lib = compile(
        "structure A :> sig type t val mk : int -> t val get : t -> int end =
           struct type t = int fun mk x = x fun get x = x end",
        &ImportEnv::empty(),
    );
    let re = roundtrip(&lib.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("lib"),
            exports: re,
        }],
        shadowing: false,
    };
    // Abstract t still usable...
    let ast = smlsc_syntax::parse_unit("structure B = struct val v = A.get (A.mk 1) end").unwrap();
    assert!(elaborate_unit(&ast, &imports).is_ok());
    // ...and still abstract.
    let ast = smlsc_syntax::parse_unit("structure B = struct val v = A.mk 1 + 1 end").unwrap();
    assert!(elaborate_unit(&ast, &imports).is_err());
}

#[test]
fn polymorphic_schemes_roundtrip() {
    let u = compile(
        "structure L = struct fun id x = x fun const x y = x end",
        &ImportEnv::empty(),
    );
    let b = roundtrip(&u.exports);
    let l = b.str(Symbol::intern("L")).unwrap();
    assert_eq!(
        l.bindings.val(Symbol::intern("id")).unwrap().scheme.arity,
        1
    );
    assert_eq!(
        l.bindings
            .val(Symbol::intern("const"))
            .unwrap()
            .scheme
            .arity,
        2
    );
}

#[test]
fn repickling_is_canonical() {
    // dehydrate ∘ rehydrate is the identity on bytes: the rebuilt
    // environment, pickled against the same context, must serialize
    // identically.  This is what lets the manager trust cached bins.
    let u = compile(
        "signature S = sig type t val mk : int -> t end
         structure A :> S = struct type t = int fun mk x = x end
         structure B = struct
           datatype shade = Light | Dark of int
           fun pick Light = A.mk 0
             | pick (Dark n) = A.mk n
         end
         functor F (X : S) = struct val v = X.mk 1 end",
        &ImportEnv::empty(),
    );
    let ctx = ContextPids::indexed([]);
    let p1 = dehydrate(&u.exports, &ctx, &PickleOptions::default()).unwrap();
    let (back, _) = rehydrate(&p1.bytes, &RehydrateContext::with_pervasives([])).unwrap();
    let p2 = dehydrate(&back, &ctx, &PickleOptions::default()).unwrap();
    assert_eq!(p1.bytes, p2.bytes, "pickle is canonical");
    // And a second round, for good measure.
    let (back2, _) = rehydrate(&p2.bytes, &RehydrateContext::with_pervasives([])).unwrap();
    let p3 = dehydrate(&back2, &ctx, &PickleOptions::default()).unwrap();
    assert_eq!(p2.bytes, p3.bytes);
}

#[test]
fn dehydrate_stats_are_consistent() {
    let u = compile(
        "structure A = struct datatype d = D of int val x = D 1 end
         structure B = struct val y = A.x val z = A.D 2 end",
        &ImportEnv::empty(),
    );
    let p = dehydrate(
        &u.exports,
        &ContextPids::indexed([]),
        &PickleOptions::default(),
    )
    .unwrap();
    // A, B, d are internal nodes; d is shared (backref); int is a stub.
    assert!(p.stats.nodes >= 3, "{:?}", p.stats);
    assert!(p.stats.backrefs >= 1, "{:?}", p.stats);
    assert!(p.stats.stubs >= 1, "{:?}", p.stats);
}

#[test]
fn functor_chains_survive_rehydration() {
    // Two functors over one named signature, pickled, rehydrated, then
    // chained in a client unit.
    let lib = compile(
        "signature S = sig val v : int end
         functor Inc (X : S) = struct val v = X.v + 1 end
         functor Dbl (X : S) = struct val v = X.v * 2 end",
        &ImportEnv::empty(),
    );
    let re = roundtrip(&lib.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("lib"),
            exports: re,
        }],
        shadowing: false,
    };
    let client_ast = smlsc_syntax::parse_unit(
        "structure Z : S = struct val v = 5 end
         structure R = Dbl(Inc(Z))
         structure Out = struct val answer = R.v end",
    )
    .unwrap();
    let client = elaborate_unit(&client_ast, &imports).expect("chains elaborate");
    let lib_val = execute(&lib.code, &[]).unwrap();
    let v = execute(&client.code, &[lib_val]).unwrap();
    let smlsc_dynamics::value::Value::Record(units) = v else {
        panic!()
    };
    let smlsc_dynamics::value::Value::Record(out) = &units[2] else {
        panic!()
    };
    assert_eq!(out[0], smlsc_dynamics::value::Value::Int(12));
}

#[test]
fn rehydrated_datatype_constructors_pattern_match() {
    let lib = compile(
        "structure Shape = struct
           datatype t = Dot | Box of int * int
           fun area Dot = 0
             | area (Box (w, h)) = w * h
         end",
        &ImportEnv::empty(),
    );
    let re = roundtrip(&lib.exports);
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("lib"),
            exports: re,
        }],
        shadowing: false,
    };
    let ast = smlsc_syntax::parse_unit(
        "structure U = struct
           fun describe s = case s of Shape.Dot => 0 | Shape.Box (w, _) => w
           val a = describe (Shape.Box (3, 4))
           val b = Shape.area (Shape.Box (3, 4))
         end",
    )
    .unwrap();
    let client = elaborate_unit(&ast, &imports).expect("elaborates");
    let lib_val = execute(&lib.code, &[]).unwrap();
    let v = execute(&client.code, &[lib_val]).unwrap();
    let smlsc_dynamics::value::Value::Record(units) = v else {
        panic!()
    };
    let smlsc_dynamics::value::Value::Record(u) = &units[0] else {
        panic!()
    };
    assert_eq!(u[1], smlsc_dynamics::value::Value::Int(3));
    assert_eq!(u[2], smlsc_dynamics::value::Value::Int(12));
}
