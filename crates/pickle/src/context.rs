//! Contexts for dehydration (which entities are external) and rehydration
//! (pid → entity resolution) — the paper's indexed environments (§5).

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use smlsc_ids::{Pid, Stamp};
use smlsc_statics::env::{Bindings, FunctorEnv, SignatureEnv, StructureEnv, ValKind};
use smlsc_statics::pervasive::pervasives;
use smlsc_statics::types::{Tycon, TyconDef, Type};

/// Any pickle-visible entity.
#[derive(Debug, Clone)]
pub enum Entity {
    /// A type constructor.
    Tycon(Arc<Tycon>),
    /// A structure.
    Str(Arc<StructureEnv>),
    /// A signature.
    Sig(Arc<SignatureEnv>),
    /// A functor.
    Fct(Arc<FunctorEnv>),
}

impl Entity {
    /// The entity's persistent pid, if assigned.
    pub fn pid(&self) -> Option<Pid> {
        match self {
            Entity::Tycon(t) => t.entity_pid.get(),
            Entity::Str(s) => s.entity_pid.get(),
            Entity::Sig(s) => s.entity_pid.get(),
            Entity::Fct(f) => f.entity_pid.get(),
        }
    }

    /// The entity's session stamp.
    pub fn stamp(&self) -> Stamp {
        match self {
            Entity::Tycon(t) => t.stamp,
            Entity::Str(s) => s.stamp,
            Entity::Sig(s) => s.stamp,
            Entity::Fct(f) => f.stamp,
        }
    }
}

/// Walks every entity reachable from `b` (through types, signatures and
/// functor templates), each reported once.
pub fn reachable_entities(b: &Bindings) -> Vec<Entity> {
    let mut w = Walker {
        seen: HashSet::new(),
        out: Vec::new(),
    };
    w.bindings(b);
    w.out
}

struct Walker {
    seen: HashSet<Stamp>,
    out: Vec<Entity>,
}

impl Walker {
    fn bindings(&mut self, b: &Bindings) {
        for (_, vb) in &b.vals {
            self.ty(&vb.scheme.body);
            if let ValKind::Con { tycon, .. } = &vb.kind {
                self.tycon(tycon);
            }
        }
        for (_, tc) in &b.tycons {
            self.tycon(tc);
        }
        for (_, s) in &b.strs {
            self.structure(s);
        }
        for (_, s) in &b.sigs {
            self.signature(s);
        }
        for (_, f) in &b.fcts {
            self.functor(f);
        }
    }

    fn tycon(&mut self, tc: &Arc<Tycon>) {
        if !self.seen.insert(tc.stamp) {
            return;
        }
        self.out.push(Entity::Tycon(tc.clone()));
        let def = tc.def.read().clone();
        match def {
            TyconDef::Prim | TyconDef::Abstract => {}
            TyconDef::Alias(t) => self.ty(&t),
            TyconDef::Datatype(info) => {
                for c in &info.cons {
                    if let Some(t) = &c.arg {
                        self.ty(t);
                    }
                }
            }
        }
    }

    fn structure(&mut self, s: &Arc<StructureEnv>) {
        if !self.seen.insert(s.stamp) {
            return;
        }
        self.out.push(Entity::Str(s.clone()));
        self.bindings(&s.bindings);
    }

    fn signature(&mut self, s: &Arc<SignatureEnv>) {
        if !self.seen.insert(s.stamp) {
            return;
        }
        self.out.push(Entity::Sig(s.clone()));
        self.structure(&s.body);
    }

    fn functor(&mut self, f: &Arc<FunctorEnv>) {
        if !self.seen.insert(f.stamp) {
            return;
        }
        self.out.push(Entity::Fct(f.clone()));
        self.signature(&f.param_sig);
        self.structure(&f.param_inst);
        self.structure(&f.body);
    }

    fn ty(&mut self, t: &Type) {
        match t {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                if let Some(t2) = link {
                    self.ty(&t2);
                }
            }
            Type::Param(_) => {}
            Type::Con(tc, args) => {
                self.tycon(tc);
                for a in args {
                    self.ty(a);
                }
            }
            Type::Tuple(ts) => {
                for t in ts {
                    self.ty(t);
                }
            }
            Type::Arrow(a, b) => {
                self.ty(a);
                self.ty(b);
            }
        }
    }
}

/// The pids of every entity reachable from the given import environments
/// (the things a dependent unit's pickle may stub).
pub fn collect_external_pids<'a>(imports: impl IntoIterator<Item = &'a Bindings>) -> Vec<Pid> {
    let mut out = Vec::new();
    for b in imports {
        for e in reachable_entities(b) {
            if let Some(pid) = e.pid() {
                out.push(pid);
            }
        }
    }
    out
}

fn pervasive_pids() -> Vec<Pid> {
    let p = pervasives();
    [
        &p.int, &p.string, &p.unit, &p.exn, &p.bool, &p.list, &p.option,
    ]
    .into_iter()
    .filter_map(|tc| tc.entity_pid.get())
    .collect()
}

/// Membership structure for dehydration: is this pid external?
///
/// Two implementations exist so experiment E5 can compare the paper's
/// *indexed* environments against exhaustive linear search.
#[derive(Debug, Clone)]
pub enum ContextPids {
    /// Hash-indexed membership (the paper's choice).
    Indexed(HashSet<Pid>),
    /// Linear scan (the ablation).
    Linear(Vec<Pid>),
}

impl ContextPids {
    /// Builds the indexed variant; pervasive pids are always included.
    pub fn indexed(pids: impl IntoIterator<Item = Pid>) -> ContextPids {
        let mut set: HashSet<Pid> = pids.into_iter().collect();
        set.extend(pervasive_pids());
        ContextPids::Indexed(set)
    }

    /// Builds the linear variant; pervasive pids are always included.
    pub fn linear(pids: impl IntoIterator<Item = Pid>) -> ContextPids {
        let mut v: Vec<Pid> = pids.into_iter().collect();
        v.extend(pervasive_pids());
        ContextPids::Linear(v)
    }

    /// Membership test.
    pub fn contains(&self, pid: Pid) -> bool {
        match self {
            ContextPids::Indexed(s) => s.contains(&pid),
            ContextPids::Linear(v) => v.contains(&pid),
        }
    }

    /// Number of context pids.
    pub fn len(&self) -> usize {
        match self {
            ContextPids::Indexed(s) => s.len(),
            ContextPids::Linear(v) => v.len(),
        }
    }

    /// True when the context is empty (never: pervasives are present).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Resolution map for rehydration: pid → live entity.
#[derive(Debug, Default)]
pub struct RehydrateContext {
    map: HashMap<Pid, Entity>,
}

impl RehydrateContext {
    /// Builds a context from the reachable entities of the given import
    /// environments, plus the pervasives.
    pub fn with_pervasives<'a>(
        imports: impl IntoIterator<Item = &'a Bindings>,
    ) -> RehydrateContext {
        let mut ctx = RehydrateContext::default();
        let p = pervasives();
        for tc in [
            &p.int, &p.string, &p.unit, &p.exn, &p.bool, &p.list, &p.option,
        ] {
            if let Some(pid) = tc.entity_pid.get() {
                ctx.map.insert(pid, Entity::Tycon(tc.clone()));
            }
        }
        for b in imports {
            ctx.add_bindings(b);
        }
        ctx
    }

    /// Adds every pid-carrying entity reachable from `b`.
    pub fn add_bindings(&mut self, b: &Bindings) {
        for e in reachable_entities(b) {
            if let Some(pid) = e.pid() {
                self.map.entry(pid).or_insert(e);
            }
        }
    }

    /// Resolves a pid.
    pub fn get(&self, pid: Pid) -> Option<&Entity> {
        self.map.get(&pid)
    }

    /// Number of resolvable pids.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the context resolves nothing.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smlsc_statics::elab::{elaborate_unit, ImportEnv};

    fn exports(src: &str) -> Arc<Bindings> {
        let ast = smlsc_syntax::parse_unit(src).unwrap();
        elaborate_unit(&ast, &ImportEnv::empty()).unwrap().exports
    }

    #[test]
    fn reachable_visits_each_entity_once() {
        let b = exports(
            "structure A = struct
               datatype t = C of t option
               structure Inner = struct val x = 1 end
             end",
        );
        let es = reachable_entities(&b);
        let mut stamps: Vec<_> = es.iter().map(Entity::stamp).collect();
        let before = stamps.len();
        stamps.dedup();
        assert_eq!(before, stamps.len());
        // A, Inner, t, plus pervasive option/int reached through types.
        assert!(before >= 4, "found {before}");
    }

    #[test]
    fn context_contains_pervasives() {
        let ctx = ContextPids::indexed([]);
        let p = pervasives();
        assert!(ctx.contains(p.int.entity_pid.get().unwrap()));
        let ctx = ContextPids::linear([]);
        assert!(ctx.contains(p.list.entity_pid.get().unwrap()));
    }

    #[test]
    fn rehydrate_context_resolves_pervasives() {
        let ctx = RehydrateContext::with_pervasives([]);
        let p = pervasives();
        let pid = p.bool.entity_pid.get().unwrap();
        assert!(matches!(ctx.get(pid), Some(Entity::Tycon(tc)) if tc.stamp == p.bool.stamp));
    }

    #[test]
    fn functor_templates_are_reachable() {
        let b = exports(
            "signature S = sig type t end
             functor F (X : S) = struct type u = X.t end",
        );
        let es = reachable_entities(&b);
        assert!(es.iter().any(|e| matches!(e, Entity::Fct(_))));
        assert!(es.iter().any(|e| matches!(e, Entity::Sig(_))));
    }
}
