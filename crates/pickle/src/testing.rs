//! Test support: assigning placeholder pids.
//!
//! Real entity pids are derived from the unit's intrinsic export hash by
//! `smlsc-core`; tests of the pickler alone use sequential placeholder
//! pids so dehydration's `MissingPid` precondition is met.

use smlsc_ids::{Digest128, Pid};
use smlsc_statics::env::Bindings;

use crate::context::{reachable_entities, Entity};

/// Assigns a distinct placeholder pid to every reachable entity that has
/// none.  Returns how many were assigned.
pub fn assign_dummy_pids(b: &Bindings) -> usize {
    let mut n = 0usize;
    for e in reachable_entities(b) {
        if e.pid().is_none() {
            let mut d = Digest128::new();
            d.write_str("dummy-pid");
            d.write_u64(e.stamp().as_raw());
            let pid: Pid = d.finish_pid();
            match e {
                Entity::Tycon(t) => t.entity_pid.set(Some(pid)),
                Entity::Str(s) => s.entity_pid.set(Some(pid)),
                Entity::Sig(s) => s.entity_pid.set(Some(pid)),
                Entity::Fct(f) => f.entity_pid.set(Some(pid)),
            }
            n += 1;
        }
    }
    n
}
