//! Dehydration and rehydration of static environments (§4 of the paper).
//!
//! A compiled unit's exported static environment must be written to its
//! bin file.  The paper's two problems and our answers:
//!
//! 1. *"How can the dehydrater tell which structures are shared with other
//!    things in core?"* — every **entity** (tycon, structure, signature,
//!    functor) reachable from a unit's imports already carries a
//!    persistent pid (assigned when *its* unit was hashed).  Dehydration
//!    consults a context set of external pids: an entity in the context
//!    becomes a **stub** carrying just its pid; everything else is written
//!    as an internal node, deduplicated by stamp so DAG sharing is
//!    preserved (without it, pickles blow up exponentially — experiment
//!    E4).
//! 2. *"Given a stub, how can the rehydrater find the real in-core
//!    pointer?"* — rehydration resolves stubs against an **indexed
//!    context environment** mapping pid → entity, built from the
//!    session's already-rehydrated imports plus the pervasives (the
//!    paper's stamp-indexed environments of §5; our index keys are pids
//!    because stamps are session-local).  A stub that resolves to nothing
//!    is a linkage error — the static half of type-safe linkage.
//!
//! Cycles (recursive datatypes) are handled exactly like the paper's
//! two-phase hydration: the rehydrater allocates a tycon shell before
//! reading its definition, mirroring the dehydrater, which assigns the
//! node index before descending.
//!
//! # Examples
//!
//! ```
//! use smlsc_pickle::{dehydrate, rehydrate, ContextPids, RehydrateContext, PickleOptions};
//! use smlsc_statics::elab::{elaborate_unit, ImportEnv};
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let ast = smlsc_syntax::parse_unit("structure A = struct val x = 1 end")?;
//! let unit = elaborate_unit(&ast, &ImportEnv::empty())?;
//! // Assign entity pids first (normally done by the hasher in smlsc-core).
//! smlsc_pickle::testing::assign_dummy_pids(&unit.exports);
//! let p = dehydrate(&unit.exports, &ContextPids::indexed([]), &PickleOptions::default())?;
//! let (back, _) = rehydrate(&p.bytes, &RehydrateContext::with_pervasives([]))?;
//! assert_eq!(back.strs.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod dehydrate;
pub mod rehydrate;
pub mod testing;
pub mod wire;

use std::fmt;

pub use context::{
    collect_external_pids, reachable_entities, ContextPids, Entity, RehydrateContext,
};
pub use dehydrate::{dehydrate, DehydrateStats, Pickle, PickleOptions};
pub use rehydrate::{rehydrate, RehydrateStats};

/// An error while pickling or unpickling.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PickleError {
    /// An exported type still contains an unsolved unification variable.
    UnsolvedType,
    /// An internal entity has no pid; the unit must be hashed before
    /// pickling.
    MissingPid(&'static str),
    /// A stub's pid resolved to nothing in the rehydration context — the
    /// bin file does not match the environment it is being loaded into.
    UnknownStub(smlsc_ids::Pid),
    /// A stub's pid resolved to an entity of the wrong kind.
    WrongKind(&'static str),
    /// The byte stream is malformed.
    Corrupt(String),
}

impl fmt::Display for PickleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PickleError::UnsolvedType => {
                write!(f, "cannot pickle an unsolved unification variable")
            }
            PickleError::MissingPid(kind) => {
                write!(
                    f,
                    "{kind} has no persistent pid; hash the unit before pickling"
                )
            }
            PickleError::UnknownStub(pid) => {
                write!(f, "stub {pid} is not in the rehydration context")
            }
            PickleError::WrongKind(kind) => {
                write!(f, "stub resolved to the wrong entity kind (wanted {kind})")
            }
            PickleError::Corrupt(m) => write!(f, "corrupt pickle: {m}"),
        }
    }
}

impl std::error::Error for PickleError {}
