//! Dehydration: static environment → bytes.
//!
//! References to entities are written in one of three forms:
//!
//! * `STUB pid` — the entity is external (its pid is in the dehydration
//!   context): imports and pervasives;
//! * `BACKREF i` — the entity was already written as node `i` of its kind
//!   (sharing preservation, and cycle breaking for recursive datatypes);
//! * `NEW body` — first occurrence of an internal entity.
//!
//! Node indices are assigned in depth-first discovery order on both
//! sides, so the rehydrater reconstructs the same numbering without a
//! table in the stream.

use std::collections::{HashMap, HashSet};

use smlsc_dynamics::ir::ConTag;
use smlsc_ids::Stamp;
use smlsc_statics::env::{Bindings, FunctorEnv, SignatureEnv, StructureEnv, ValBind, ValKind};
use smlsc_statics::types::{Scheme, Tycon, TyconDef, Type};

use crate::context::ContextPids;
use crate::wire::Writer;
use crate::PickleError;

/// Magic number at the head of every pickle.
pub(crate) const MAGIC: u32 = 0x534d_4c50; // "SMLP"
/// Format version.
pub(crate) const VERSION: u32 = 1;

pub(crate) const REF_STUB: u8 = 0;
pub(crate) const REF_BACK: u8 = 1;
pub(crate) const REF_NEW: u8 = 2;

pub(crate) const TY_PARAM: u8 = 0;
pub(crate) const TY_CON: u8 = 1;
pub(crate) const TY_TUPLE: u8 = 2;
pub(crate) const TY_ARROW: u8 = 3;

pub(crate) const DEF_ABSTRACT: u8 = 0;
pub(crate) const DEF_DATATYPE: u8 = 1;
pub(crate) const DEF_ALIAS: u8 = 2;

pub(crate) const KIND_PLAIN: u8 = 0;
pub(crate) const KIND_CON: u8 = 1;
pub(crate) const KIND_EXN: u8 = 2;
pub(crate) const KIND_PRIM: u8 = 3;

/// Options controlling dehydration.
#[derive(Debug, Clone)]
pub struct PickleOptions {
    /// Preserve DAG sharing (the paper's behaviour).  Disabling it (the
    /// E4 ablation) re-serializes shared subtrees at every occurrence —
    /// sizes blow up exponentially; such pickles are for measurement
    /// only and must not be rehydrated (duplicated generative entities
    /// would split into distinct types).
    pub preserve_sharing: bool,
}

impl Default for PickleOptions {
    fn default() -> Self {
        PickleOptions {
            preserve_sharing: true,
        }
    }
}

/// Size and structure statistics from a dehydration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DehydrateStats {
    /// Internal nodes written (tycons + structures + signatures +
    /// functors).
    pub nodes: usize,
    /// External stubs written.
    pub stubs: usize,
    /// Back references written (sharing hits).
    pub backrefs: usize,
}

/// A dehydrated environment.
#[derive(Debug, Clone)]
pub struct Pickle {
    /// The serialized bytes.
    pub bytes: Vec<u8>,
    /// What was written.
    pub stats: DehydrateStats,
}

/// Dehydrates `exports` against the given context.
///
/// Every internal entity must already carry a pid (run the intrinsic-pid
/// hasher first).
///
/// # Errors
///
/// [`PickleError::MissingPid`] if an internal entity has no pid, or
/// [`PickleError::UnsolvedType`] if an exported type is not fully solved.
pub fn dehydrate(
    exports: &Bindings,
    context: &ContextPids,
    opts: &PickleOptions,
) -> Result<Pickle, PickleError> {
    let span = smlsc_trace::span("pickle.dehydrate");
    let mut d = Dehydrator {
        w: Writer::new(),
        context,
        opts,
        tycon_ix: HashMap::new(),
        str_ix: HashMap::new(),
        sig_ix: HashMap::new(),
        fct_ix: HashMap::new(),
        in_progress: HashSet::new(),
        next: [0; 4],
        stats: DehydrateStats::default(),
    };
    d.w.u32(MAGIC);
    d.w.u32(VERSION);
    d.bindings(exports)?;
    drop(
        span.field("nodes", d.stats.nodes)
            .field("stubs", d.stats.stubs)
            .field("backrefs", d.stats.backrefs),
    );
    Ok(Pickle {
        stats: d.stats,
        bytes: d.w.into_bytes(),
    })
}

const K_TYCON: usize = 0;
const K_STR: usize = 1;
const K_SIG: usize = 2;
const K_FCT: usize = 3;

struct Dehydrator<'a> {
    w: Writer,
    context: &'a ContextPids,
    opts: &'a PickleOptions,
    tycon_ix: HashMap<Stamp, u32>,
    str_ix: HashMap<Stamp, u32>,
    sig_ix: HashMap<Stamp, u32>,
    fct_ix: HashMap<Stamp, u32>,
    /// Tycons currently being written (cycle breaking when sharing is off).
    in_progress: HashSet<Stamp>,
    next: [u32; 4],
    stats: DehydrateStats,
}

impl<'a> Dehydrator<'a> {
    /// Emits the ref header for an entity; returns `true` when the body
    /// must follow (NEW).
    fn start_ref(
        &mut self,
        kind: usize,
        stamp: Stamp,
        pid: Option<smlsc_ids::Pid>,
        kind_name: &'static str,
    ) -> Result<bool, PickleError> {
        if let Some(p) = pid {
            if self.context.contains(p) {
                self.w.u8(REF_STUB);
                self.w.u128(p.as_raw());
                self.stats.stubs += 1;
                return Ok(false);
            }
        }
        let memo = match kind {
            K_TYCON => &self.tycon_ix,
            K_STR => &self.str_ix,
            K_SIG => &self.sig_ix,
            _ => &self.fct_ix,
        };
        if let Some(&ix) = memo.get(&stamp) {
            let share = self.opts.preserve_sharing
                || (kind == K_TYCON && self.in_progress.contains(&stamp));
            if share {
                self.w.u8(REF_BACK);
                self.w.u32(ix);
                self.stats.backrefs += 1;
                return Ok(false);
            }
        }
        let p = pid.ok_or(PickleError::MissingPid(kind_name))?;
        let ix = self.next[kind];
        self.next[kind] += 1;
        match kind {
            K_TYCON => self.tycon_ix.insert(stamp, ix),
            K_STR => self.str_ix.insert(stamp, ix),
            K_SIG => self.sig_ix.insert(stamp, ix),
            _ => self.fct_ix.insert(stamp, ix),
        };
        self.w.u8(REF_NEW);
        self.w.u128(p.as_raw());
        self.stats.nodes += 1;
        Ok(true)
    }

    fn tycon(&mut self, tc: &Tycon) -> Result<(), PickleError> {
        if !self.start_ref(K_TYCON, tc.stamp, tc.entity_pid.get(), "type constructor")? {
            return Ok(());
        }
        self.in_progress.insert(tc.stamp);
        self.w.str(tc.name.as_str());
        self.w.u32(tc.arity as u32);
        let def = tc.def.read().clone();
        match def {
            // A primitive here means a pervasive whose pid was somehow not
            // in the context; treat as corrupt setup.
            TyconDef::Prim => {
                return Err(PickleError::MissingPid("primitive tycon outside context"))
            }
            TyconDef::Abstract => self.w.u8(DEF_ABSTRACT),
            TyconDef::Datatype(info) => {
                self.w.u8(DEF_DATATYPE);
                self.w.u32(info.cons.len() as u32);
                for c in &info.cons {
                    self.w.str(c.name.as_str());
                    match &c.arg {
                        None => self.w.u8(0),
                        Some(t) => {
                            self.w.u8(1);
                            self.ty(t)?;
                        }
                    }
                }
            }
            TyconDef::Alias(t) => {
                self.w.u8(DEF_ALIAS);
                self.ty(&t)?;
            }
        }
        self.in_progress.remove(&tc.stamp);
        Ok(())
    }

    fn structure(&mut self, s: &StructureEnv) -> Result<(), PickleError> {
        if !self.start_ref(K_STR, s.stamp, s.entity_pid.get(), "structure")? {
            return Ok(());
        }
        self.bindings(&s.bindings)
    }

    fn signature(&mut self, s: &SignatureEnv) -> Result<(), PickleError> {
        if !self.start_ref(K_SIG, s.stamp, s.entity_pid.get(), "signature")? {
            return Ok(());
        }
        self.structure(&s.body)?;
        // Bound stamps are written as tycon node indices; every bound
        // tycon is reachable from the body, hence already numbered.
        let refs: Vec<u32> = s
            .bound
            .iter()
            .filter_map(|st| self.tycon_ix.get(st).copied())
            .collect();
        self.w.u32(refs.len() as u32);
        for r in refs {
            self.w.u32(r);
        }
        Ok(())
    }

    fn functor(&mut self, f: &FunctorEnv) -> Result<(), PickleError> {
        if !self.start_ref(K_FCT, f.stamp, f.entity_pid.get(), "functor")? {
            return Ok(());
        }
        self.w.str(f.param_name.as_str());
        self.signature(&f.param_sig)?;
        self.structure(&f.param_inst)?;
        let refs: Vec<u32> = f
            .skolems
            .iter()
            .filter_map(|st| self.tycon_ix.get(st).copied())
            .collect();
        self.w.u32(refs.len() as u32);
        for r in refs {
            self.w.u32(r);
        }
        self.structure(&f.body)
    }

    fn bindings(&mut self, b: &Bindings) -> Result<(), PickleError> {
        self.w.u32(b.vals.len() as u32);
        for (n, vb) in &b.vals {
            self.w.str(n.as_str());
            self.valbind(vb)?;
        }
        self.w.u32(b.tycons.len() as u32);
        for (n, tc) in &b.tycons {
            self.w.str(n.as_str());
            self.tycon(tc)?;
        }
        self.w.u32(b.strs.len() as u32);
        for (n, s) in &b.strs {
            self.w.str(n.as_str());
            self.structure(s)?;
        }
        self.w.u32(b.sigs.len() as u32);
        for (n, s) in &b.sigs {
            self.w.str(n.as_str());
            self.signature(s)?;
        }
        self.w.u32(b.fcts.len() as u32);
        for (n, f) in &b.fcts {
            self.w.str(n.as_str());
            self.functor(f)?;
        }
        Ok(())
    }

    fn valbind(&mut self, vb: &ValBind) -> Result<(), PickleError> {
        self.scheme(&vb.scheme)?;
        match &vb.kind {
            ValKind::Plain => self.w.u8(KIND_PLAIN),
            ValKind::Exn => self.w.u8(KIND_EXN),
            ValKind::Prim(op) => {
                self.w.u8(KIND_PRIM);
                self.w.str(op.name());
            }
            ValKind::Con { tycon, tag } => {
                self.w.u8(KIND_CON);
                self.tycon(tycon)?;
                self.contag(tag);
            }
        }
        Ok(())
    }

    fn contag(&mut self, t: &ConTag) {
        self.w.u32(t.tag);
        self.w.u32(t.span);
        self.w.u8(u8::from(t.has_arg));
        self.w.str(t.name.as_str());
    }

    fn scheme(&mut self, s: &Scheme) -> Result<(), PickleError> {
        self.w.u32(s.arity);
        self.ty(&s.body)
    }

    fn ty(&mut self, t: &Type) -> Result<(), PickleError> {
        match t {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                match link {
                    Some(t2) => self.ty(&t2),
                    None => Err(PickleError::UnsolvedType),
                }
            }
            Type::Param(i) => {
                self.w.u8(TY_PARAM);
                self.w.u32(*i);
                Ok(())
            }
            Type::Con(tc, args) => {
                self.w.u8(TY_CON);
                self.tycon(tc)?;
                self.w.u32(args.len() as u32);
                for a in args {
                    self.ty(a)?;
                }
                Ok(())
            }
            Type::Tuple(ts) => {
                self.w.u8(TY_TUPLE);
                self.w.u32(ts.len() as u32);
                for x in ts {
                    self.ty(x)?;
                }
                Ok(())
            }
            Type::Arrow(a, b) => {
                self.w.u8(TY_ARROW);
                self.ty(a)?;
                self.ty(b)
            }
        }
    }
}
