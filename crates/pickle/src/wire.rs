//! Minimal binary wire format: little-endian integers, length-prefixed
//! strings.  Bin files are self-contained; this module is the only place
//! that knows the byte layout.

use crate::PickleError;

/// A growable byte sink.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A fresh, empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// The bytes written so far.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i64`, little-endian.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u128`, little-endian.
    pub fn u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes length-prefixed raw bytes.
    pub fn bytes(&mut self, b: &[u8]) {
        self.u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

/// A cursor over pickled bytes.
#[derive(Debug)]
pub struct Reader<'b> {
    buf: &'b [u8],
    pos: usize,
}

impl<'b> Reader<'b> {
    /// Reads from the start of `buf`.
    pub fn new(buf: &'b [u8]) -> Reader<'b> {
        Reader { buf, pos: 0 }
    }

    /// True when every byte has been consumed.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> Result<&'b [u8], PickleError> {
        if self.pos + n > self.buf.len() {
            return Err(PickleError::Corrupt(format!(
                "unexpected end of pickle at byte {}",
                self.pos
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, PickleError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a `u32`.
    pub fn u32(&mut self) -> Result<u32, PickleError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    /// Reads a `u64`.
    pub fn u64(&mut self) -> Result<u64, PickleError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads an `i64`.
    pub fn i64(&mut self) -> Result<i64, PickleError> {
        Ok(i64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    /// Reads a `u128`.
    pub fn u128(&mut self) -> Result<u128, PickleError> {
        Ok(u128::from_le_bytes(
            self.take(16)?.try_into().expect("16 bytes"),
        ))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, PickleError> {
        Ok(self.str_ref()?.to_owned())
    }

    /// Reads a length-prefixed UTF-8 string as a slice borrowed from the
    /// underlying buffer — no allocation. This is the hot-path variant:
    /// rehydration interns symbols straight from these slices.
    pub fn str_ref(&mut self) -> Result<&'b str, PickleError> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        std::str::from_utf8(bytes)
            .map_err(|_| PickleError::Corrupt("invalid UTF-8 in string".into()))
    }

    /// Reads length-prefixed raw bytes.
    pub fn bytes(&mut self) -> Result<Vec<u8>, PickleError> {
        Ok(self.bytes_ref()?.to_vec())
    }

    /// Reads length-prefixed raw bytes as a borrowed slice — no copy.
    pub fn bytes_ref(&mut self) -> Result<&'b [u8], PickleError> {
        let n = self.u32()? as usize;
        self.take(n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_primitives() {
        let mut w = Writer::new();
        w.u8(7);
        w.u32(123_456);
        w.u64(u64::MAX - 5);
        w.i64(-42);
        w.u128(u128::MAX / 3);
        w.str("héllo");
        w.bytes(&[1, 2, 3]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 123_456);
        assert_eq!(r.u64().unwrap(), u64::MAX - 5);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.u128().unwrap(), u128::MAX / 3);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), vec![1, 2, 3]);
        assert!(r.at_end());
    }

    #[test]
    fn borrowed_reads_alias_the_input_buffer() {
        let mut w = Writer::new();
        w.str("alpha");
        w.bytes(&[9, 8, 7]);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        let s = r.str_ref().unwrap();
        let b = r.bytes_ref().unwrap();
        assert_eq!(s, "alpha");
        assert_eq!(b, &[9, 8, 7]);
        // The returned slices point into `buf` itself.
        let range = buf.as_ptr() as usize..buf.as_ptr() as usize + buf.len();
        assert!(range.contains(&(s.as_ptr() as usize)));
        assert!(range.contains(&(b.as_ptr() as usize)));
        assert!(r.at_end());
    }

    #[test]
    fn truncated_input_errors() {
        let mut w = Writer::new();
        w.u32(10);
        let buf = w.into_bytes();
        let mut r = Reader::new(&buf);
        assert!(r.u64().is_err());
    }

    #[test]
    fn bad_utf8_errors() {
        let mut w = Writer::new();
        w.u32(2);
        // raw invalid bytes for a "string"
        let mut buf = w.into_bytes();
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }
}
