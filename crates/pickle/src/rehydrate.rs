//! Rehydration: bytes → static environment, resolving stubs through the
//! indexed context.
//!
//! Node indices are reconstructed by reading in the same depth-first
//! order the dehydrater wrote; internal entities get fresh session stamps
//! and carry their persistent pids from the stream.  Signature and
//! functor generative ranges are recomputed around the rebuild of their
//! templates, so instantiation and application behave identically to the
//! session that produced the pickle.

use smlsc_ids::PidCell;
use std::sync::Arc;

use smlsc_dynamics::ir::ConTag;
use smlsc_ids::{Pid, StampGenerator, Symbol};
use smlsc_statics::env::{Bindings, FunctorEnv, SignatureEnv, StructureEnv, ValBind, ValKind};
use smlsc_statics::types::{ConDef, DatatypeInfo, Scheme, Tycon, TyconDef, Type};

use crate::context::{Entity, RehydrateContext};
use crate::dehydrate::{
    DEF_ABSTRACT, DEF_ALIAS, DEF_DATATYPE, KIND_CON, KIND_EXN, KIND_PLAIN, KIND_PRIM, MAGIC,
    REF_BACK, REF_NEW, REF_STUB, TY_ARROW, TY_CON, TY_PARAM, TY_TUPLE, VERSION,
};
use crate::wire::Reader;
use crate::PickleError;

/// Statistics from a rehydration.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RehydrateStats {
    /// Internal nodes rebuilt.
    pub nodes: usize,
    /// Stubs resolved through the context.
    pub stubs: usize,
    /// Owned heap allocations made for string/byte payloads. The reader
    /// borrows every string straight from the pickle buffer and interns
    /// symbols from the borrowed slice, so this stays zero on the warm
    /// path; the `rehydrate.allocs` counter mirrors it.
    pub allocs: usize,
    /// Pickle bytes decoded (the input length; mirrored by the
    /// `pickle.bytes` counter).
    pub bytes: usize,
}

/// Rehydrates a pickled environment.
///
/// # Errors
///
/// [`PickleError::UnknownStub`] when a stub's pid is not in `context`
/// (stale or mismatched bin file), [`PickleError::Corrupt`] on malformed
/// bytes.
pub fn rehydrate(
    bytes: &[u8],
    context: &RehydrateContext,
) -> Result<(Arc<Bindings>, RehydrateStats), PickleError> {
    let span = smlsc_trace::span("pickle.rehydrate").field("bytes", bytes.len());
    let mut r = Rehydrator {
        r: Reader::new(bytes),
        context,
        tycons: Vec::new(),
        strs: Vec::new(),
        sigs: Vec::new(),
        fcts: Vec::new(),
        stamper: StampGenerator::new(),
        stats: RehydrateStats::default(),
    };
    if r.r.u32()? != MAGIC {
        return Err(PickleError::Corrupt("bad magic".into()));
    }
    if r.r.u32()? != VERSION {
        return Err(PickleError::Corrupt("unsupported version".into()));
    }
    let b = r.bindings()?;
    r.stats.bytes = bytes.len();
    smlsc_trace::counter(smlsc_trace::names::PICKLE_BYTES, bytes.len() as u64);
    if r.stats.allocs > 0 {
        smlsc_trace::counter(smlsc_trace::names::REHYDRATE_ALLOCS, r.stats.allocs as u64);
    }
    drop(
        span.field("nodes", r.stats.nodes)
            .field("stubs", r.stats.stubs)
            .field("allocs", r.stats.allocs),
    );
    Ok((Arc::new(b), r.stats))
}

struct Rehydrator<'a, 'b> {
    r: Reader<'b>,
    context: &'a RehydrateContext,
    tycons: Vec<Arc<Tycon>>,
    strs: Vec<Arc<StructureEnv>>,
    sigs: Vec<Arc<SignatureEnv>>,
    fcts: Vec<Arc<FunctorEnv>>,
    stamper: StampGenerator,
    stats: RehydrateStats,
}

enum RefHead {
    Stub(Pid),
    Back(u32),
    New(Pid),
}

impl<'a, 'b> Rehydrator<'a, 'b> {
    fn head(&mut self) -> Result<RefHead, PickleError> {
        match self.r.u8()? {
            REF_STUB => Ok(RefHead::Stub(Pid::from_raw(self.r.u128()?))),
            REF_BACK => Ok(RefHead::Back(self.r.u32()?)),
            REF_NEW => Ok(RefHead::New(Pid::from_raw(self.r.u128()?))),
            t => Err(PickleError::Corrupt(format!("bad ref tag {t}"))),
        }
    }

    fn sym(&mut self) -> Result<Symbol, PickleError> {
        // Interns straight from the borrowed pickle slice — no String.
        Ok(Symbol::intern(self.r.str_ref()?))
    }

    fn tycon(&mut self) -> Result<Arc<Tycon>, PickleError> {
        match self.head()? {
            RefHead::Stub(pid) => {
                self.stats.stubs += 1;
                match self.context.get(pid) {
                    Some(Entity::Tycon(tc)) => Ok(tc.clone()),
                    Some(_) => Err(PickleError::WrongKind("type constructor")),
                    None => Err(PickleError::UnknownStub(pid)),
                }
            }
            RefHead::Back(ix) => self
                .tycons
                .get(ix as usize)
                .cloned()
                .ok_or_else(|| PickleError::Corrupt(format!("tycon backref {ix}"))),
            RefHead::New(pid) => {
                self.stats.nodes += 1;
                let name = self.sym()?;
                let arity = self.r.u32()? as usize;
                // Allocate the shell before reading the definition so that
                // recursive datatypes can refer back to it (two-phase
                // hydration).
                let tc = Tycon::new(self.stamper.fresh(), name, arity, TyconDef::Abstract);
                tc.entity_pid.set(Some(pid));
                self.tycons.push(tc.clone());
                let def = match self.r.u8()? {
                    DEF_ABSTRACT => TyconDef::Abstract,
                    DEF_DATATYPE => {
                        let n = self.r.u32()?;
                        let mut cons = Vec::with_capacity(n as usize);
                        for _ in 0..n {
                            let cname = self.sym()?;
                            let arg = match self.r.u8()? {
                                0 => None,
                                1 => Some(self.ty()?),
                                t => {
                                    return Err(PickleError::Corrupt(format!(
                                        "bad con-arg tag {t}"
                                    )))
                                }
                            };
                            cons.push(ConDef { name: cname, arg });
                        }
                        TyconDef::Datatype(DatatypeInfo { cons })
                    }
                    DEF_ALIAS => TyconDef::Alias(self.ty()?),
                    t => return Err(PickleError::Corrupt(format!("bad def tag {t}"))),
                };
                *tc.def.write() = def;
                Ok(tc)
            }
        }
    }

    fn structure(&mut self) -> Result<Arc<StructureEnv>, PickleError> {
        match self.head()? {
            RefHead::Stub(pid) => {
                self.stats.stubs += 1;
                match self.context.get(pid) {
                    Some(Entity::Str(s)) => Ok(s.clone()),
                    Some(_) => Err(PickleError::WrongKind("structure")),
                    None => Err(PickleError::UnknownStub(pid)),
                }
            }
            RefHead::Back(ix) => self
                .strs
                .get(ix as usize)
                .cloned()
                .ok_or_else(|| PickleError::Corrupt(format!("structure backref {ix}"))),
            RefHead::New(pid) => {
                self.stats.nodes += 1;
                // Reserve the index before descending: substructure order
                // must match the dehydrater's numbering.
                let ix = self.strs.len();
                self.strs
                    .push(StructureEnv::new(self.stamper.fresh(), Bindings::new()));
                let bindings = self.bindings()?;
                let s = StructureEnv::new(self.strs[ix].stamp, bindings);
                s.entity_pid.set(Some(pid));
                self.strs[ix] = s.clone();
                Ok(s)
            }
        }
    }

    fn signature(&mut self) -> Result<Arc<SignatureEnv>, PickleError> {
        match self.head()? {
            RefHead::Stub(pid) => {
                self.stats.stubs += 1;
                match self.context.get(pid) {
                    Some(Entity::Sig(s)) => Ok(s.clone()),
                    Some(_) => Err(PickleError::WrongKind("signature")),
                    None => Err(PickleError::UnknownStub(pid)),
                }
            }
            RefHead::Back(ix) => self
                .sigs
                .get(ix as usize)
                .cloned()
                .ok_or_else(|| PickleError::Corrupt(format!("signature backref {ix}"))),
            RefHead::New(pid) => {
                self.stats.nodes += 1;
                let ix = self.sigs.len();
                // Placeholder; replaced after the body is read.
                self.sigs.push(Arc::new(SignatureEnv {
                    stamp: self.stamper.fresh(),
                    entity_pid: PidCell::new(None),
                    bound: Vec::new(),
                    body: StructureEnv::new(self.stamper.fresh(), Bindings::new()),
                    lo: 0,
                    hi: 0,
                }));
                let lo = StampGenerator::peek_raw();
                let body = self.structure()?;
                let n = self.r.u32()?;
                let mut bound = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let tix = self.r.u32()? as usize;
                    let tc = self
                        .tycons
                        .get(tix)
                        .ok_or_else(|| PickleError::Corrupt(format!("bound tycon ref {tix}")))?;
                    bound.push(tc.stamp);
                }
                let hi = StampGenerator::peek_raw();
                let s = Arc::new(SignatureEnv {
                    stamp: self.sigs[ix].stamp,
                    entity_pid: PidCell::new(Some(pid)),
                    bound,
                    body,
                    lo,
                    hi,
                });
                self.sigs[ix] = s.clone();
                Ok(s)
            }
        }
    }

    fn functor(&mut self) -> Result<Arc<FunctorEnv>, PickleError> {
        match self.head()? {
            RefHead::Stub(pid) => {
                self.stats.stubs += 1;
                match self.context.get(pid) {
                    Some(Entity::Fct(f)) => Ok(f.clone()),
                    Some(_) => Err(PickleError::WrongKind("functor")),
                    None => Err(PickleError::UnknownStub(pid)),
                }
            }
            RefHead::Back(ix) => self
                .fcts
                .get(ix as usize)
                .cloned()
                .ok_or_else(|| PickleError::Corrupt(format!("functor backref {ix}"))),
            RefHead::New(pid) => {
                self.stats.nodes += 1;
                let ix = self.fcts.len();
                let stamp = self.stamper.fresh();
                // Placeholder for numbering; replaced below.
                self.fcts.push(Arc::new(FunctorEnv {
                    stamp,
                    entity_pid: PidCell::new(None),
                    param_name: Symbol::intern("?"),
                    param_sig: Arc::new(SignatureEnv {
                        stamp,
                        entity_pid: PidCell::new(None),
                        bound: Vec::new(),
                        body: StructureEnv::new(stamp, Bindings::new()),
                        lo: 0,
                        hi: 0,
                    }),
                    param_inst: StructureEnv::new(stamp, Bindings::new()),
                    skolems: Vec::new(),
                    body: StructureEnv::new(stamp, Bindings::new()),
                    gen_lo: 0,
                    gen_hi: 0,
                }));
                let param_name = self.sym()?;
                let gen_lo = StampGenerator::peek_raw();
                let param_sig = self.signature()?;
                let param_inst = self.structure()?;
                let n = self.r.u32()?;
                let mut skolems = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    let tix = self.r.u32()? as usize;
                    let tc = self
                        .tycons
                        .get(tix)
                        .ok_or_else(|| PickleError::Corrupt(format!("skolem ref {tix}")))?;
                    skolems.push(tc.stamp);
                }
                let body = self.structure()?;
                let gen_hi = StampGenerator::peek_raw();
                let f = Arc::new(FunctorEnv {
                    stamp,
                    entity_pid: PidCell::new(Some(pid)),
                    param_name,
                    param_sig,
                    param_inst,
                    skolems,
                    body,
                    gen_lo,
                    gen_hi,
                });
                self.fcts[ix] = f.clone();
                Ok(f)
            }
        }
    }

    fn bindings(&mut self) -> Result<Bindings, PickleError> {
        let mut b = Bindings::new();
        let nvals = self.r.u32()?;
        for _ in 0..nvals {
            let n = self.sym()?;
            let vb = self.valbind()?;
            b.vals.push((n, vb));
        }
        let ntycons = self.r.u32()?;
        for _ in 0..ntycons {
            let n = self.sym()?;
            let tc = self.tycon()?;
            b.tycons.push((n, tc));
        }
        let nstrs = self.r.u32()?;
        for _ in 0..nstrs {
            let n = self.sym()?;
            let s = self.structure()?;
            b.strs.push((n, s));
        }
        let nsigs = self.r.u32()?;
        for _ in 0..nsigs {
            let n = self.sym()?;
            let s = self.signature()?;
            b.sigs.push((n, s));
        }
        let nfcts = self.r.u32()?;
        for _ in 0..nfcts {
            let n = self.sym()?;
            let f = self.functor()?;
            b.fcts.push((n, f));
        }
        Ok(b)
    }

    fn valbind(&mut self) -> Result<ValBind, PickleError> {
        let scheme = self.scheme()?;
        let kind = match self.r.u8()? {
            KIND_PLAIN => ValKind::Plain,
            KIND_EXN => ValKind::Exn,
            KIND_PRIM => {
                let name = self.r.str_ref()?;
                let op = smlsc_syntax::ast::PrimOp::from_name(name)
                    .ok_or_else(|| PickleError::Corrupt(format!("unknown primitive `{name}`")))?;
                ValKind::Prim(op)
            }
            KIND_CON => {
                let tycon = self.tycon()?;
                let tag = self.contag()?;
                ValKind::Con { tycon, tag }
            }
            t => return Err(PickleError::Corrupt(format!("bad val kind {t}"))),
        };
        Ok(ValBind { scheme, kind })
    }

    fn contag(&mut self) -> Result<ConTag, PickleError> {
        let tag = self.r.u32()?;
        let span = self.r.u32()?;
        let has_arg = self.r.u8()? != 0;
        let name = self.sym()?;
        Ok(ConTag {
            tag,
            span,
            has_arg,
            name,
        })
    }

    fn scheme(&mut self) -> Result<Scheme, PickleError> {
        let arity = self.r.u32()?;
        let body = self.ty()?;
        Ok(Scheme { arity, body })
    }

    fn ty(&mut self) -> Result<Type, PickleError> {
        match self.r.u8()? {
            TY_PARAM => Ok(Type::Param(self.r.u32()?)),
            TY_CON => {
                let tc = self.tycon()?;
                let n = self.r.u32()?;
                let mut args = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    args.push(self.ty()?);
                }
                Ok(Type::Con(tc, args))
            }
            TY_TUPLE => {
                let n = self.r.u32()?;
                let mut ts = Vec::with_capacity(n as usize);
                for _ in 0..n {
                    ts.push(self.ty()?);
                }
                Ok(Type::Tuple(ts))
            }
            TY_ARROW => {
                let a = self.ty()?;
                let b = self.ty()?;
                Ok(Type::Arrow(Box::new(a), Box::new(b)))
            }
            t => Err(PickleError::Corrupt(format!("bad type tag {t}"))),
        }
    }
}
