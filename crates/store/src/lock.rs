//! Advisory file locks shared by threads and processes.
//!
//! A lock is a file created with `O_CREAT|O_EXCL` (`create_new`) — the
//! one primitive that is atomic on every platform and filesystem std
//! reaches.  Whoever creates the file owns the lock; dropping the guard
//! removes it.  Crash safety comes from *staleness*: a lock file whose
//! mtime is older than a bound is presumed abandoned (its owner died
//! mid-critical-section) and is broken by the next acquirer.  Critical
//! sections guarded here are short — a rename or an unlink — so a live
//! owner never looks stale.
//!
//! Contention is retried with bounded exponential backoff plus a small
//! deterministic jitter (so a herd of waiters does not re-collide in
//! lockstep), up to the caller's timeout.  The [`points::STORE_LOCK`]
//! fault point fires *while the lock file exists and before the guard
//! is constructed*, so an injected panic models exactly an owner that
//! crashes mid-critical-section and leaks its lock file.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

use smlsc_faults::{self as faults, points, FaultKind};
use smlsc_trace::{self as trace, names};

use crate::{io_err, StoreError};

/// An acquired advisory lock; released (the lock file unlinked) on drop.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Ceiling for the contention backoff between acquisition attempts.
const MAX_BACKOFF: Duration = Duration::from_millis(50);

static JITTER_SEQ: AtomicU64 = AtomicU64::new(0);

/// A small deterministic jitter (0–1023 µs) decorrelating concurrent
/// waiters without a clock or RNG dependency.
pub(crate) fn jitter() -> Duration {
    let n = JITTER_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut x = n.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 29;
    Duration::from_micros(x % 1024)
}

/// Acquires the lock at `path`, breaking locks older than
/// `stale_after`, giving up after `timeout`.
///
/// # Errors
///
/// [`StoreError::LockTimeout`] when a live holder outlasts `timeout`;
/// [`StoreError::Io`] when the lock file cannot be created for any
/// reason other than contention.  Both errors name the lock file, so a
/// caller's report can say *which key's* critical section was stuck.
pub fn acquire(
    path: &Path,
    stale_after: Duration,
    timeout: Duration,
) -> Result<LockGuard, StoreError> {
    let deadline = Instant::now() + timeout;
    let mut backoff = Duration::from_millis(2);
    loop {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                let _ = writeln!(f, "{}", std::process::id());
                drop(f);
                // The fault point sits inside the critical section: the
                // lock file exists but no guard will release it yet.  A
                // `panic` here is a crashed owner; an `io` is a failed
                // acquisition that must not leak the file.
                // (`Torn` has no meaning for a lock file and is ignored.)
                if faults::active() {
                    if let Some(FaultKind::Io) =
                        faults::check(points::STORE_LOCK, &path.to_string_lossy())
                    {
                        std::fs::remove_file(path).ok();
                        return Err(io_err(
                            path,
                            faults::io_error(points::STORE_LOCK, &path.to_string_lossy()),
                        ));
                    }
                }
                return Ok(LockGuard {
                    path: path.to_path_buf(),
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if lock_is_stale(path, stale_after) {
                    // The owner crashed; break the lock and retry.  A
                    // racing breaker is fine — both remove, one of the
                    // subsequent create_new calls wins.
                    trace::counter(names::STORE_LOCK_BROKEN, 1);
                    trace::event("store.lock_break").field("path", path.display());
                    std::fs::remove_file(path).ok();
                    continue;
                }
                if Instant::now() >= deadline {
                    return Err(StoreError::LockTimeout(path.to_path_buf()));
                }
                trace::counter(names::STORE_RETRIES, 1);
                std::thread::sleep(backoff.min(MAX_BACKOFF) + jitter());
                backoff = (backoff * 2).min(MAX_BACKOFF);
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // The locks directory itself is missing (fresh root or
                // concurrent clear); recreate and retry.
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).map_err(|err| io_err(parent, err))?;
                }
            }
            Err(e) => return Err(io_err(path, e)),
        }
    }
}

/// True when the lock file's mtime is older than `stale_after` (a
/// vanished file is "stale" too: the next create_new attempt decides).
fn lock_is_stale(path: &Path, stale_after: Duration) -> bool {
    match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => SystemTime::now()
            .duration_since(mtime)
            .is_ok_and(|age| age > stale_after),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smlsc_faults::{FaultPlan, FaultRule};

    fn tmp_lock(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smlsc-lock-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{tag}.lock"))
    }

    #[test]
    fn exclusive_within_and_released_on_drop() {
        let path = tmp_lock("excl");
        std::fs::remove_file(&path).ok();
        let g = acquire(&path, Duration::from_secs(10), Duration::from_secs(5)).unwrap();
        // A second acquirer times out while the guard is alive.
        let err = acquire(&path, Duration::from_secs(10), Duration::from_millis(30));
        assert!(matches!(err, Err(StoreError::LockTimeout(_))));
        drop(g);
        // And succeeds after release.
        let g2 = acquire(&path, Duration::from_secs(10), Duration::from_secs(5)).unwrap();
        drop(g2);
        assert!(!path.exists());
    }

    #[test]
    fn stale_lock_is_broken() {
        let path = tmp_lock("stale");
        std::fs::remove_file(&path).ok();
        std::fs::write(&path, "dead-owner").unwrap();
        // stale_after of zero: any existing lock is presumed abandoned.
        let g = acquire(&path, Duration::ZERO, Duration::from_secs(5)).unwrap();
        drop(g);
    }

    /// The crashed-owner scenario, driven end to end by an injected
    /// panic instead of sleeps or hand-written lock files: builder A
    /// dies *inside* the critical section (the fault point fires after
    /// `create_new`, before the guard exists), leaking its lock file;
    /// builder B presumes the owner dead and proceeds by breaking it.
    #[test]
    fn crashed_owner_lock_is_broken_and_second_builder_proceeds() {
        let path = tmp_lock("crash");
        std::fs::remove_file(&path).ok();
        let collector = trace::Collector::new();
        collector.install();
        {
            let plan = FaultPlan::default().with(
                FaultRule::new(points::STORE_LOCK, FaultKind::Panic)
                    .filtered("crash")
                    .times(1),
            );
            let _faults = faults::install_scoped(plan);
            let crashed = std::panic::catch_unwind(|| {
                acquire(&path, Duration::from_secs(10), Duration::from_secs(5))
            });
            assert!(crashed.is_err(), "owner must crash mid-critical-section");
            assert!(path.exists(), "the crashed owner leaks its lock file");

            // The second builder breaks the abandoned lock (presumed
            // dead immediately under a zero staleness bound) and wins.
            let g = acquire(&path, Duration::ZERO, Duration::from_secs(5))
                .expect("second builder proceeds past the crashed owner");
            drop(g);
            assert!(!path.exists());
        }
        trace::uninstall();
        assert_eq!(collector.counter(names::STORE_LOCK_BROKEN), 1);
    }

    /// A slow (but alive) holder — delayed by an injected fault inside
    /// the critical section — is *waited out*, never broken: the second
    /// builder blocks on contention backoff and acquires after release.
    #[test]
    fn delayed_live_holder_is_waited_out_not_broken() {
        let path = tmp_lock("slow");
        std::fs::remove_file(&path).ok();
        let collector = trace::Collector::new();
        collector.install();
        let released = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
        {
            let plan = FaultPlan::default().with(
                FaultRule::new(
                    points::STORE_LOCK,
                    FaultKind::Delay(Duration::from_millis(40)),
                )
                .filtered("slow")
                .times(1),
            );
            let _faults = faults::install_scoped(plan);
            std::thread::scope(|s| {
                let released_a = released.clone();
                let path_a = path.clone();
                s.spawn(move || {
                    // Holds the lock through the injected 40ms stall.
                    let g =
                        acquire(&path_a, Duration::from_secs(10), Duration::from_secs(5)).unwrap();
                    released_a.store(true, std::sync::atomic::Ordering::SeqCst);
                    drop(g);
                });
                // Give A a head start into the critical section, then
                // contend with a generous staleness bound: B must wait.
                while !path.exists() {
                    std::hint::spin_loop();
                }
                let g = acquire(&path, Duration::from_secs(10), Duration::from_secs(5)).unwrap();
                assert!(
                    released.load(std::sync::atomic::Ordering::SeqCst),
                    "B acquired before A released"
                );
                drop(g);
            });
        }
        trace::uninstall();
        assert_eq!(
            collector.counter(names::STORE_LOCK_BROKEN),
            0,
            "a live holder must never be broken"
        );
    }

    #[test]
    fn contended_threads_serialize() {
        let path = tmp_lock("contend");
        std::fs::remove_file(&path).ok();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let path = path.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        let _g = acquire(&path, Duration::from_secs(10), Duration::from_secs(30))
                            .unwrap();
                        // Non-atomic read-modify-write under the lock.
                        let v = counter.load(std::sync::atomic::Ordering::SeqCst);
                        std::thread::yield_now();
                        counter.store(v + 1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 80);
    }
}
