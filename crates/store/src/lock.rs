//! Advisory file locks shared by threads and processes.
//!
//! A lock is a file created with `O_CREAT|O_EXCL` (`create_new`) — the
//! one primitive that is atomic on every platform and filesystem std
//! reaches.  Whoever creates the file owns the lock; dropping the guard
//! removes it.  Crash safety comes from *staleness*: a lock file whose
//! mtime is older than a bound is presumed abandoned (its owner died
//! mid-critical-section) and is broken by the next acquirer.  Critical
//! sections guarded here are short — a rename or an unlink — so a live
//! owner never looks stale.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant, SystemTime};

use crate::{io_err, StoreError};

/// An acquired advisory lock; released (the lock file unlinked) on drop.
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
}

impl LockGuard {
    /// The lock file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        std::fs::remove_file(&self.path).ok();
    }
}

/// Acquires the lock at `path`, breaking locks older than
/// `stale_after`, giving up after `timeout`.
///
/// # Errors
///
/// [`StoreError::LockTimeout`] when a live holder outlasts `timeout`;
/// [`StoreError::Io`] when the lock file cannot be created for any
/// reason other than contention.
pub fn acquire(
    path: &Path,
    stale_after: Duration,
    timeout: Duration,
) -> Result<LockGuard, StoreError> {
    let deadline = Instant::now() + timeout;
    loop {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(path)
        {
            Ok(mut f) => {
                use std::io::Write as _;
                let _ = writeln!(f, "{}", std::process::id());
                return Ok(LockGuard {
                    path: path.to_path_buf(),
                });
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                if lock_is_stale(path, stale_after) {
                    // The owner crashed; break the lock and retry.  A
                    // racing breaker is fine — both remove, one of the
                    // subsequent create_new calls wins.
                    std::fs::remove_file(path).ok();
                    continue;
                }
                if Instant::now() >= deadline {
                    return Err(StoreError::LockTimeout(path.to_path_buf()));
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                // The locks directory itself is missing (fresh root or
                // concurrent clear); recreate and retry.
                if let Some(parent) = path.parent() {
                    std::fs::create_dir_all(parent).map_err(|err| io_err(parent, err))?;
                }
            }
            Err(e) => return Err(io_err(path, e)),
        }
    }
}

/// True when the lock file's mtime is older than `stale_after` (a
/// vanished file is "stale" too: the next create_new attempt decides).
fn lock_is_stale(path: &Path, stale_after: Duration) -> bool {
    match std::fs::metadata(path).and_then(|m| m.modified()) {
        Ok(mtime) => SystemTime::now()
            .duration_since(mtime)
            .is_ok_and(|age| age > stale_after),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_lock(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("smlsc-lock-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("t.lock")
    }

    #[test]
    fn exclusive_within_and_released_on_drop() {
        let path = tmp_lock("excl");
        std::fs::remove_file(&path).ok();
        let g = acquire(&path, Duration::from_secs(10), Duration::from_secs(5)).unwrap();
        // A second acquirer times out while the guard is alive.
        let err = acquire(&path, Duration::from_secs(10), Duration::from_millis(30));
        assert!(matches!(err, Err(StoreError::LockTimeout(_))));
        drop(g);
        // And succeeds after release.
        let g2 = acquire(&path, Duration::from_secs(10), Duration::from_secs(5)).unwrap();
        drop(g2);
        assert!(!path.exists());
    }

    #[test]
    fn stale_lock_is_broken() {
        let path = tmp_lock("stale");
        std::fs::remove_file(&path).ok();
        std::fs::write(&path, "dead-owner").unwrap();
        // stale_after of zero: any existing lock is presumed abandoned.
        let g = acquire(&path, Duration::ZERO, Duration::from_secs(5)).unwrap();
        drop(g);
    }

    #[test]
    fn contended_threads_serialize() {
        let path = tmp_lock("contend");
        std::fs::remove_file(&path).ok();
        let counter = std::sync::Arc::new(std::sync::atomic::AtomicU64::new(0));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let path = path.clone();
                let counter = counter.clone();
                s.spawn(move || {
                    for _ in 0..10 {
                        let _g = acquire(&path, Duration::from_secs(10), Duration::from_secs(30))
                            .unwrap();
                        // Non-atomic read-modify-write under the lock.
                        let v = counter.load(std::sync::atomic::Ordering::SeqCst);
                        std::thread::yield_now();
                        counter.store(v + 1, std::sync::atomic::Ordering::SeqCst);
                    }
                });
            }
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::SeqCst), 80);
    }
}
