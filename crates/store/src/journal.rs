//! The store's append-only access journal.
//!
//! Every put, verified hit, eviction, and quarantine appends one line:
//!
//! ```text
//! v1 <OP> <key-hex> <size> <nanos-since-epoch>
//! ```
//!
//! The journal is the store's *index*: it supplies last-access times
//! that drive LRU eviction, without requiring mtime updates on reads
//! (which many filesystems elide).  It is deliberately advisory — each
//! append is a single `O_APPEND` write, a crash can tear at most the
//! final line, and readers skip malformed lines.  GC treats the object
//! scan as ground truth (an object missing from the journal falls back
//! to its file mtime) and compacts the journal to one line per
//! surviving object afterwards.

use std::collections::HashMap;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use crate::{io_err, now_nanos, StoreError};

/// One journal operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// An object was published.
    Put,
    /// An object was read and verified.
    Get,
    /// An object was evicted by GC.
    Evict,
    /// An object failed verification and was quarantined.
    Quarantine,
}

impl JournalOp {
    fn tag(self) -> &'static str {
        match self {
            JournalOp::Put => "PUT",
            JournalOp::Get => "GET",
            JournalOp::Evict => "EVICT",
            JournalOp::Quarantine => "QUAR",
        }
    }

    fn parse(s: &str) -> Option<JournalOp> {
        match s {
            "PUT" => Some(JournalOp::Put),
            "GET" => Some(JournalOp::Get),
            "EVICT" => Some(JournalOp::Evict),
            "QUAR" => Some(JournalOp::Quarantine),
            _ => None,
        }
    }
}

/// One parsed journal line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// The operation.
    pub op: JournalOp,
    /// The object key, as 32 hex digits.
    pub key: String,
    /// Payload size in bytes (0 where not applicable).
    pub size: u64,
    /// Nanoseconds since the Unix epoch.
    pub at: u64,
}

/// Handle to a journal file.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
}

impl Journal {
    /// A journal living at `path` (created lazily on first append).
    pub fn new(path: PathBuf) -> Journal {
        Journal { path }
    }

    /// The journal file's path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one entry, best-effort: the journal is advisory, so a
    /// failed append degrades LRU precision (mtime fallback) rather
    /// than failing the build.
    pub fn append(&self, op: JournalOp, key: &str, size: u64) {
        let line = format!("v1 {} {key} {size} {}\n", op.tag(), now_nanos());
        let res = std::fs::OpenOptions::new()
            .append(true)
            .create(true)
            .open(&self.path)
            .and_then(|mut f| f.write_all(line.as_bytes()));
        let _ = res;
    }

    /// Replays the journal, skipping malformed (torn) lines.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the file exists but cannot be read; a
    /// missing journal is an empty one.
    pub fn replay(&self) -> Result<Vec<JournalEntry>, StoreError> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(io_err(&self.path, e)),
        };
        Ok(text.lines().filter_map(parse_line).collect())
    }

    /// Last-access time per key: the newest PUT or GET stamp.  EVICT
    /// and QUAR entries clear the key (a later re-publish re-adds it).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] as for [`Journal::replay`].
    pub fn last_access(&self) -> Result<HashMap<String, u64>, StoreError> {
        let mut map = HashMap::new();
        for e in self.replay()? {
            match e.op {
                JournalOp::Put | JournalOp::Get => {
                    let slot = map.entry(e.key).or_insert(0);
                    *slot = (*slot).max(e.at);
                }
                JournalOp::Evict | JournalOp::Quarantine => {
                    map.remove(&e.key);
                }
            }
        }
        Ok(map)
    }

    /// Rewrites the journal to exactly one PUT line per surviving
    /// object, atomically (tmp + rename).  Call under the GC lock.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures.
    pub fn compact(&self, survivors: &HashMap<String, (u64, u64)>) -> Result<(), StoreError> {
        let mut keys: Vec<&String> = survivors.keys().collect();
        keys.sort();
        let mut out = String::new();
        for key in keys {
            let (at, size) = survivors[key];
            out.push_str(&format!("v1 PUT {key} {size} {at}\n"));
        }
        let tmp = self.path.with_extension("log.tmp");
        std::fs::write(&tmp, out).map_err(|e| io_err(&tmp, e))?;
        std::fs::rename(&tmp, &self.path).map_err(|e| io_err(&self.path, e))
    }

    /// The journal file's size in bytes (0 when absent).
    pub fn size_bytes(&self) -> u64 {
        std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0)
    }
}

fn parse_line(line: &str) -> Option<JournalEntry> {
    let mut parts = line.split_ascii_whitespace();
    if parts.next()? != "v1" {
        return None;
    }
    let op = JournalOp::parse(parts.next()?)?;
    let key = parts.next()?;
    if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
        return None;
    }
    let size: u64 = parts.next()?.parse().ok()?;
    let at: u64 = parts.next()?.parse().ok()?;
    if parts.next().is_some() {
        return None;
    }
    Some(JournalEntry {
        op,
        key: key.to_string(),
        size,
        at,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_journal(tag: &str) -> Journal {
        let dir = std::env::temp_dir().join(format!("smlsc-journal-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("journal.log");
        std::fs::remove_file(&path).ok();
        Journal::new(path)
    }

    const K1: &str = "00000000000000000000000000000001";
    const K2: &str = "00000000000000000000000000000002";

    #[test]
    fn append_replay_round_trip() {
        let j = tmp_journal("roundtrip");
        j.append(JournalOp::Put, K1, 100);
        j.append(JournalOp::Get, K1, 100);
        j.append(JournalOp::Evict, K2, 0);
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 3);
        assert_eq!(entries[0].op, JournalOp::Put);
        assert_eq!(entries[0].key, K1);
        assert_eq!(entries[0].size, 100);
        assert!(entries[1].at >= entries[0].at);
    }

    #[test]
    fn torn_tail_lines_are_skipped() {
        let j = tmp_journal("torn");
        j.append(JournalOp::Put, K1, 10);
        // Simulate a crash mid-append: a truncated final line.
        use std::io::Write as _;
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(j.path())
            .unwrap();
        write!(f, "v1 PUT {K2} 12").unwrap(); // no timestamp, no newline
        drop(f);
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 1, "torn line must be skipped");
        assert_eq!(entries[0].key, K1);
    }

    #[test]
    fn last_access_tracks_newest_and_respects_evictions() {
        let j = tmp_journal("lru");
        j.append(JournalOp::Put, K1, 10);
        j.append(JournalOp::Put, K2, 10);
        j.append(JournalOp::Get, K1, 10);
        let la = j.last_access().unwrap();
        assert!(la[K1] >= la[K2]);
        j.append(JournalOp::Evict, K2, 0);
        let la = j.last_access().unwrap();
        assert!(!la.contains_key(K2));
    }

    #[test]
    fn compaction_is_atomic_and_canonical() {
        let j = tmp_journal("compact");
        for _ in 0..10 {
            j.append(JournalOp::Get, K1, 5);
        }
        let before = j.size_bytes();
        let mut survivors = HashMap::new();
        survivors.insert(K1.to_string(), (42u64, 5u64));
        j.compact(&survivors).unwrap();
        assert!(j.size_bytes() < before);
        let entries = j.replay().unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].at, 42);
    }
}
