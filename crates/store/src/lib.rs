//! `smlsc-store`: a content-addressed, shared, crash-safe artifact
//! store for compiled units.
//!
//! The paper's intrinsic pids (§5) are exactly cache keys: a unit's
//! compilation result is fully determined by its source digest plus the
//! export pids of its imports, so compiled bins can be shared across
//! projects, sessions, and concurrent builds.  This crate is that share
//! point — a directory any number of builders (threads *and* processes)
//! read and write simultaneously:
//!
//! * **Cache keys** ([`cache_key`]): `digest(key-schema ‖ bin-format
//!   version ‖ source pid ‖ sorted import export-pids)`.  Equal keys
//!   mean equal compile inputs, so an object found under a key *is* the
//!   compile result.
//! * **Fanout layout**: objects live at `objects/<aa>/<rest>.obj` where
//!   `aa` is the first two hex digits of the key — bounded directory
//!   sizes at production object counts.
//! * **Atomic publication**: writers stage into `tmp/`, fsync,
//!   `rename(2)` into place, and fsync the fan directory, so readers
//!   never observe a torn object, concurrent identical publishes are
//!   idempotent, and a completed publish survives power loss.
//! * **Advisory locking** ([`lock`]): per-key lock files serialize
//!   publish/evict races across processes; stale locks (crashed owners)
//!   are broken by age.
//! * **Digest verification on every read**: each object embeds a digest
//!   of its payload; a mismatch (bit rot, torn write from a pre-atomic
//!   writer) moves the object to `quarantine/` and reports a miss — the
//!   caller recompiles transparently and the store never serves corrupt
//!   bytes.
//! * **Journal-driven LRU GC** ([`journal`], [`gc`]): an append-only
//!   access journal records puts and hits; [`Store::gc`] evicts by age
//!   and least-recent-access size pressure, then compacts the journal.
//!   The journal is advisory — a torn tail line (crash mid-append) is
//!   skipped and the object scan remains the ground truth.
//! * **Retry and graceful degradation**: transient publish failures are
//!   retried with jittered exponential backoff under a [`RetryPolicy`]
//!   deadline; after enough *consecutive* failures the store flips into
//!   a degraded no-store mode (one warning, `store.degraded` counter)
//!   where `get` misses and `put` no-ops instantly — a broken or
//!   read-only cache never blocks a build, it just stops helping.
//!
//! Every IO boundary is also a named fault point (`store.publish`,
//! `store.fetch`, `store.lock` — see `smlsc_faults::points`), so chaos
//! suites can deterministically inject IO errors, torn writes, delays
//! and crashes to prove the guarantees above.
//!
//! # Examples
//!
//! ```
//! use smlsc_ids::Pid;
//! use smlsc_store::{cache_key, Store};
//!
//! let dir = std::env::temp_dir().join(format!("smlsc-store-doc-{}", std::process::id()));
//! let store = Store::open(&dir).unwrap();
//! let key = cache_key(Pid::of_bytes(b"source"), &[Pid::of_bytes(b"import")], 1);
//! assert!(store.get(key).is_none());
//! store.put(key, b"compiled unit bytes").unwrap();
//! assert_eq!(store.get(key).as_deref(), Some(&b"compiled unit bytes"[..]));
//! # std::fs::remove_dir_all(&dir).ok();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gc;
pub mod journal;
pub mod lock;

use std::fmt;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use smlsc_faults::{self as faults, points, FaultKind};
use smlsc_ids::{Digest128, Pid};
use smlsc_trace::{self as trace, names};

pub use gc::{GcConfig, GcReport, StoreStats, VerifyReport};
pub use journal::{Journal, JournalOp};
pub use lock::LockGuard;

/// Version of the key derivation itself; bumping it invalidates every
/// key without touching on-disk objects.
pub const KEY_SCHEMA_VERSION: u32 = 1;

/// Version of the store's on-disk layout, recorded in a `VERSION` file
/// at the root; a store of a different layout version refuses to open.
pub const LAYOUT_VERSION: u32 = 1;

/// Magic prefix of every object file.
const OBJ_MAGIC: &[u8; 8] = b"SMLSTOR1";

/// How old a lock file must be before it is presumed abandoned (its
/// owner crashed) and broken.
const LOCK_STALE: Duration = Duration::from_secs(10);

/// How long an acquirer spins on a held lock before giving up.
const LOCK_TIMEOUT: Duration = Duration::from_secs(30);

/// How many *consecutive* store failures (after retries) flip the store
/// into degraded no-store mode.
const DEGRADE_AFTER: u32 = 3;

/// Bounded retry with jittered exponential backoff for transient store
/// IO (failed publishes, lock contention past its own timeout).
#[derive(Debug, Clone, Copy)]
pub struct RetryPolicy {
    /// Maximum attempts, counting the first (so `1` means no retry).
    pub attempts: u32,
    /// Initial backoff between attempts; doubled each retry and
    /// decorated with a sub-millisecond deterministic jitter.
    pub base_delay: Duration,
    /// Overall deadline across all attempts of one operation; once the
    /// next backoff would cross it, the last error is returned as-is.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 3,
            base_delay: Duration::from_millis(2),
            deadline: Duration::from_millis(250),
        }
    }
}

/// Derives the cache key for one unit compilation: the digest of the
/// key-schema version, the consumer's bin-format version, the unit's
/// source pid, and the *sorted* export pids of its imports.
///
/// Sorting makes the key independent of import slot order; the slot
/// assignment itself is a function of the source text, which the source
/// pid already covers.
pub fn cache_key(source_pid: Pid, import_export_pids: &[Pid], format_version: u32) -> Pid {
    let mut d = Digest128::new();
    d.write_tag(0xC5);
    d.write_u64(u64::from(KEY_SCHEMA_VERSION));
    d.write_u64(u64::from(format_version));
    d.write_pid(source_pid);
    let mut pids = import_export_pids.to_vec();
    pids.sort_unstable();
    d.write_u64(pids.len() as u64);
    for p in pids {
        d.write_pid(p);
    }
    d.finish_pid()
}

/// Nanoseconds since the Unix epoch (0 if the clock is unset).
pub(crate) fn now_nanos() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// Any error from the artifact store.
#[derive(Debug, Clone)]
pub enum StoreError {
    /// A filesystem operation failed.
    Io {
        /// The path involved.
        path: PathBuf,
        /// The underlying error message.
        error: String,
    },
    /// The store directory has an incompatible layout version.
    LayoutVersion {
        /// The version found on disk.
        found: String,
        /// The version this build expects.
        expected: u32,
    },
    /// A lock could not be acquired before the timeout.
    LockTimeout(PathBuf),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            StoreError::LayoutVersion { found, expected } => write!(
                f,
                "store layout version `{found}` is not the supported `{expected}`"
            ),
            StoreError::LockTimeout(p) => {
                write!(f, "timed out waiting for lock {}", p.display())
            }
        }
    }
}

impl std::error::Error for StoreError {}

pub(crate) fn io_err(path: &Path, e: impl fmt::Display) -> StoreError {
    StoreError::Io {
        path: path.to_path_buf(),
        error: e.to_string(),
    }
}

/// A content-addressed artifact store rooted at a directory.
///
/// Cheap to clone conceptually (it holds only paths); open one per
/// process and share it behind an `Arc` across builder threads.
#[derive(Debug)]
pub struct Store {
    root: PathBuf,
    journal: Journal,
    retry: RetryPolicy,
    degrade_after: u32,
    /// Consecutive failures since the last success; resets on success.
    failures: AtomicU32,
    /// Latched once `failures` reaches `degrade_after`; a degraded
    /// store answers every `get` with a miss and every `put` with a
    /// no-op, for the rest of its lifetime.
    degraded: AtomicBool,
}

impl Store {
    /// Opens (creating if necessary) the store rooted at `root`.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures, or
    /// [`StoreError::LayoutVersion`] when `root` holds a store of an
    /// incompatible layout.
    pub fn open(root: impl Into<PathBuf>) -> Result<Store, StoreError> {
        let root = root.into();
        for sub in ["objects", "tmp", "locks", "quarantine"] {
            let dir = root.join(sub);
            std::fs::create_dir_all(&dir).map_err(|e| io_err(&dir, e))?;
        }
        let version_file = root.join("VERSION");
        match std::fs::read_to_string(&version_file) {
            Ok(v) => {
                if v.trim() != LAYOUT_VERSION.to_string() {
                    return Err(StoreError::LayoutVersion {
                        found: v.trim().to_string(),
                        expected: LAYOUT_VERSION,
                    });
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                std::fs::write(&version_file, format!("{LAYOUT_VERSION}\n"))
                    .map_err(|e| io_err(&version_file, e))?;
            }
            Err(e) => return Err(io_err(&version_file, e)),
        }
        let journal = Journal::new(root.join("journal.log"));
        Ok(Store {
            root,
            journal,
            retry: RetryPolicy::default(),
            degrade_after: DEGRADE_AFTER,
            failures: AtomicU32::new(0),
            degraded: AtomicBool::new(false),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Overrides the transient-IO retry policy (call before sharing the
    /// store across threads).
    pub fn set_retry_policy(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Overrides how many consecutive failures flip the store into
    /// degraded mode (call before sharing the store across threads).
    pub fn set_degrade_after(&mut self, n: u32) {
        self.degrade_after = n.max(1);
    }

    /// True once the store has given up on itself: repeated IO or lock
    /// failures latched it into a no-store mode where reads miss and
    /// writes no-op.  Builds proceed correctly, just without sharing.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn note_success(&self) {
        self.failures.store(0, Ordering::Relaxed);
    }

    fn note_failure(&self) {
        let n = self.failures.fetch_add(1, Ordering::Relaxed) + 1;
        if n >= self.degrade_after && !self.degraded.swap(true, Ordering::SeqCst) {
            trace::counter(names::STORE_DEGRADED, 1);
            trace::event("store.degrade")
                .field("root", self.root.display())
                .field("failures", n);
            eprintln!(
                "warning: artifact store {} disabled after {n} consecutive failure(s); \
                 continuing without it",
                self.root.display()
            );
        }
    }

    /// The store's access journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    pub(crate) fn objects_dir(&self) -> PathBuf {
        self.root.join("objects")
    }

    pub(crate) fn quarantine_dir(&self) -> PathBuf {
        self.root.join("quarantine")
    }

    /// The object path for a key: two-level fanout on the first two hex
    /// digits, bounding any one directory's entry count.
    pub fn object_path(&self, key: Pid) -> PathBuf {
        let hex = key_hex(key);
        self.objects_dir()
            .join(&hex[..2])
            .join(format!("{}.obj", &hex[2..]))
    }

    fn lock_path(&self, name: &str) -> PathBuf {
        self.root.join("locks").join(format!("{name}.lock"))
    }

    /// Acquires the advisory lock guarding one key's publish/evict
    /// critical section.
    ///
    /// # Errors
    ///
    /// [`StoreError::LockTimeout`] if a (live) holder never releases.
    pub fn key_lock(&self, key: Pid) -> Result<LockGuard, StoreError> {
        lock::acquire(&self.lock_path(&key_hex(key)), LOCK_STALE, LOCK_TIMEOUT)
    }

    /// Acquires the store-wide lock serializing GC/clear sweeps.
    ///
    /// # Errors
    ///
    /// [`StoreError::LockTimeout`] if a (live) holder never releases.
    pub fn gc_lock(&self) -> Result<LockGuard, StoreError> {
        lock::acquire(&self.lock_path("gc"), LOCK_STALE, LOCK_TIMEOUT)
    }

    /// True when an object is present under `key` (no verification).
    pub fn contains(&self, key: Pid) -> bool {
        self.object_path(key).is_file()
    }

    /// Fetches the payload stored under `key`, verifying its embedded
    /// digest.
    ///
    /// Returns `None` — a miss — when no object exists, when any
    /// filesystem read fails, or when verification fails; a failed
    /// verification also moves the object to `quarantine/` so it is
    /// never served (or re-read) again.  The caller's contract is
    /// simply: a `Some` payload is bit-exact what some publisher
    /// [`Store::put`].
    pub fn get(&self, key: Pid) -> Option<Vec<u8>> {
        let _span = trace::span(names::SPAN_STORE_GET);
        if self.is_degraded() {
            trace::counter(names::STORE_MISSES, 1);
            return None;
        }
        let path = self.object_path(key);
        let fault = if faults::active() {
            faults::check(points::STORE_FETCH, &key_hex(key))
        } else {
            None
        };
        if matches!(fault, Some(FaultKind::Io)) {
            trace::counter(names::STORE_MISSES, 1);
            self.note_failure();
            return None;
        }
        let mut bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                trace::counter(names::STORE_MISSES, 1);
                if e.kind() != std::io::ErrorKind::NotFound {
                    // Present-but-unreadable is a health signal; a
                    // plain miss is not.
                    self.note_failure();
                }
                return None;
            }
        };
        if matches!(fault, Some(FaultKind::Torn)) {
            // Model a torn read: hand verification a truncated object.
            bytes.truncate(bytes.len() * 2 / 3);
        }
        match decode_object(&bytes) {
            Some(payload) => {
                self.note_success();
                trace::counter(names::STORE_HITS, 1);
                trace::counter(names::STORE_BYTES_READ, payload.len() as u64);
                self.journal
                    .append(JournalOp::Get, &key_hex(key), payload.len() as u64);
                Some(payload.to_vec())
            }
            None => {
                // Corruption is the *object's* fault, not the store's:
                // quarantine it, report a miss, and leave the health
                // counter alone.
                self.quarantine(key);
                trace::counter(names::STORE_MISSES, 1);
                None
            }
        }
    }

    /// Publishes `payload` under `key`: stages the enveloped object in
    /// `tmp/`, fsyncs it, and renames it into place under the per-key
    /// lock.  Returns `false` when an object was already present (the
    /// publish was a no-op).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::LockTimeout`].
    pub fn put(&self, key: Pid, payload: &[u8]) -> Result<bool, StoreError> {
        let _span = trace::span(names::SPAN_STORE_PUT);
        if self.is_degraded() {
            return Ok(false);
        }
        let hex = key_hex(key);
        let deadline = Instant::now() + self.retry.deadline;
        let mut backoff = self.retry.base_delay;
        let mut attempt = 1u32;
        loop {
            match self.publish_once(key, &hex, payload) {
                Ok(published) => {
                    self.note_success();
                    return Ok(published);
                }
                Err(e) => {
                    if attempt >= self.retry.attempts || Instant::now() + backoff > deadline {
                        self.note_failure();
                        return Err(e);
                    }
                    trace::counter(names::STORE_RETRIES, 1);
                    trace::event("store.retry")
                        .field("key", &hex)
                        .field("attempt", attempt)
                        .field("error", &e);
                    std::thread::sleep(backoff + lock::jitter());
                    backoff *= 2;
                    attempt += 1;
                }
            }
        }
    }

    /// One publication attempt: stage, fsync, rename under the per-key
    /// lock.  Split out of [`Store::put`] so the retry loop wraps the
    /// whole critical section, lock acquisition included.
    fn publish_once(&self, key: Pid, hex: &str, payload: &[u8]) -> Result<bool, StoreError> {
        let final_path = self.object_path(key);
        if faults::active() {
            match faults::check(points::STORE_PUBLISH, &format!("begin {hex}")) {
                Some(FaultKind::Io) => {
                    return Err(io_err(
                        &final_path,
                        faults::io_error(points::STORE_PUBLISH, hex),
                    ));
                }
                Some(FaultKind::Torn) => return self.publish_torn(key, hex, payload),
                _ => {}
            }
        }
        let _lock = self.key_lock(key)?;
        if final_path.is_file() {
            // An identical publish already landed (equal keys ⇒ equal
            // compile inputs); keep the incumbent.
            return Ok(false);
        }
        let fan_dir = final_path
            .parent()
            .ok_or_else(|| io_err(&final_path, "object path has no fan directory"))?;
        std::fs::create_dir_all(fan_dir).map_err(|e| io_err(fan_dir, e))?;
        let tmp = self
            .root
            .join("tmp")
            .join(format!("{hex}.{}.{}", std::process::id(), tmp_seq()));
        {
            let mut f = std::fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
            f.write_all(OBJ_MAGIC).map_err(|e| io_err(&tmp, e))?;
            f.write_all(&Pid::of_bytes(payload).as_raw().to_le_bytes())
                .map_err(|e| io_err(&tmp, e))?;
            f.write_all(payload).map_err(|e| io_err(&tmp, e))?;
            f.sync_all().map_err(|e| io_err(&tmp, e))?;
        }
        // A `crash(staged)` rule kills the process here: a complete
        // object sits in `tmp/`, invisible to readers — litter the
        // doctor sweeps, never corruption.
        if faults::active() {
            if let Some(FaultKind::Io) =
                faults::check(points::STORE_PUBLISH, &format!("staged {hex}"))
            {
                std::fs::remove_file(&tmp).ok();
                return Err(io_err(
                    &final_path,
                    faults::io_error(points::STORE_PUBLISH, hex),
                ));
            }
        }
        if let Err(e) = std::fs::rename(&tmp, &final_path) {
            std::fs::remove_file(&tmp).ok();
            return Err(io_err(&final_path, e));
        }
        // A `crash(renamed)` rule dies between the rename and the fan
        // directory fsync that makes it durable.
        if faults::active() {
            faults::check(points::STORE_PUBLISH, &format!("renamed {hex}"));
        }
        fsync_dir(fan_dir).map_err(|e| io_err(fan_dir, e))?;
        trace::counter(names::STORE_BYTES_WRITTEN, payload.len() as u64);
        self.journal
            .append(JournalOp::Put, hex, payload.len() as u64);
        Ok(true)
    }

    /// Models a non-atomic publisher dying mid-write: the *final* path
    /// receives a truncated envelope and the publish reports success —
    /// silent corruption.  Digest verification on the next read must
    /// catch it and quarantine the object; nothing here helps it.
    fn publish_torn(&self, key: Pid, hex: &str, payload: &[u8]) -> Result<bool, StoreError> {
        let final_path = self.object_path(key);
        let fan_dir = final_path
            .parent()
            .ok_or_else(|| io_err(&final_path, "object path has no fan directory"))?;
        std::fs::create_dir_all(fan_dir).map_err(|e| io_err(fan_dir, e))?;
        let mut envelope = Vec::with_capacity(OBJ_MAGIC.len() + 16 + payload.len());
        envelope.extend_from_slice(OBJ_MAGIC);
        envelope.extend_from_slice(&Pid::of_bytes(payload).as_raw().to_le_bytes());
        envelope.extend_from_slice(payload);
        let keep = if payload.is_empty() {
            OBJ_MAGIC.len() / 2
        } else {
            OBJ_MAGIC.len() + 16 + payload.len() / 2
        };
        envelope.truncate(keep);
        std::fs::write(&final_path, &envelope).map_err(|e| io_err(&final_path, e))?;
        self.journal
            .append(JournalOp::Put, hex, payload.len() as u64);
        Ok(true)
    }

    /// Moves the object under `key` (if any) into `quarantine/`,
    /// stamping the quarantined file with the time so repeat offenders
    /// do not collide.  Best-effort: failures fall back to deleting the
    /// object so it can never be served.
    pub fn quarantine(&self, key: Pid) {
        let hex = key_hex(key);
        let path = self.object_path(key);
        let _lock = self.key_lock(key).ok();
        if !path.is_file() {
            return;
        }
        trace::counter(names::STORE_QUARANTINED, 1);
        trace::event(names::STORE_QUARANTINE_EVENT).field("key", &hex);
        let dest = self
            .quarantine_dir()
            .join(format!("{hex}.{}.obj", now_nanos()));
        if std::fs::rename(&path, &dest).is_err() {
            std::fs::remove_file(&path).ok();
        }
        self.journal.append(JournalOp::Quarantine, &hex, 0);
    }
}

/// The 32-hex-digit form of a key.
pub fn key_hex(key: Pid) -> String {
    format!("{:032x}", key.as_raw())
}

static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A process-unique staging suffix (pid alone is not enough: builder
/// threads publish concurrently).
fn tmp_seq() -> u64 {
    TMP_SEQ.fetch_add(1, Ordering::Relaxed)
}

/// Fsyncs a directory so a rename within it is durable across power
/// loss — `rename(2)` alone only updates the in-memory dentry.
pub(crate) fn fsync_dir(dir: &Path) -> std::io::Result<()> {
    std::fs::File::open(dir)?.sync_all()
}

/// Validates an object envelope, returning the payload iff the magic
/// matches and the embedded digest equals the payload's digest.
fn decode_object(bytes: &[u8]) -> Option<&[u8]> {
    let rest = bytes.strip_prefix(OBJ_MAGIC.as_slice())?;
    if rest.len() < 16 {
        return None;
    }
    let (digest_bytes, payload) = rest.split_at(16);
    let stored = u128::from_le_bytes(digest_bytes.try_into().ok()?);
    if Pid::of_bytes(payload).as_raw() != stored {
        return None;
    }
    Some(payload)
}

/// Verifies one object file's envelope in place (used by `verify` and
/// GC integrity sweeps).
pub(crate) fn object_file_is_valid(path: &Path) -> bool {
    match std::fs::read(path) {
        Ok(bytes) => decode_object(&bytes).is_some(),
        Err(_) => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_root(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!(
            "smlsc-store-unit-{tag}-{}-{}",
            std::process::id(),
            tmp_seq()
        ));
        std::fs::remove_dir_all(&d).ok();
        d
    }

    #[test]
    fn key_is_order_independent_but_content_sensitive() {
        let s = Pid::of_bytes(b"source");
        let a = Pid::of_bytes(b"a");
        let b = Pid::of_bytes(b"b");
        assert_eq!(cache_key(s, &[a, b], 1), cache_key(s, &[b, a], 1));
        assert_ne!(cache_key(s, &[a, b], 1), cache_key(s, &[a], 1));
        assert_ne!(cache_key(s, &[a, b], 1), cache_key(s, &[a, b], 2));
        assert_ne!(
            cache_key(s, &[a, b], 1),
            cache_key(Pid::of_bytes(b"other"), &[a, b], 1)
        );
    }

    #[test]
    fn put_get_round_trip_and_idempotent_publish() {
        let root = tmp_root("roundtrip");
        let store = Store::open(&root).unwrap();
        let key = Pid::of_bytes(b"k");
        assert!(!store.contains(key));
        assert!(store.put(key, b"payload").unwrap());
        assert!(
            !store.put(key, b"payload").unwrap(),
            "second put is a no-op"
        );
        assert!(store.contains(key));
        assert_eq!(store.get(key).as_deref(), Some(&b"payload"[..]));
        // Staging area is drained after publication.
        let tmp_entries = std::fs::read_dir(root.join("tmp")).unwrap().count();
        assert_eq!(tmp_entries, 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_object_is_quarantined_not_served() {
        let root = tmp_root("quarantine");
        let store = Store::open(&root).unwrap();
        let key = Pid::of_bytes(b"k");
        store.put(key, b"payload").unwrap();
        // Flip a payload bit behind the store's back.
        let path = store.object_path(key);
        let mut bytes = std::fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        std::fs::write(&path, &bytes).unwrap();

        assert!(store.get(key).is_none(), "corrupt object must miss");
        assert!(!store.contains(key), "corrupt object must be removed");
        let quarantined = std::fs::read_dir(root.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 1);
        // The slot is usable again.
        assert!(store.put(key, b"payload").unwrap());
        assert_eq!(store.get(key).as_deref(), Some(&b"payload"[..]));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn injected_transient_publish_fault_is_retried_and_masked() {
        let root = tmp_root("retry");
        let store = Store::open(&root).unwrap();
        let key = Pid::of_bytes(b"k");
        let collector = trace::Collector::new();
        collector.install();
        {
            // Exactly one IO fault: the first attempt fails, the retry
            // succeeds, and the caller never sees an error.
            let plan = faults::FaultPlan::default()
                .with(faults::FaultRule::new(points::STORE_PUBLISH, FaultKind::Io).times(1));
            let _faults = faults::install_scoped(plan);
            assert!(store.put(key, b"payload").unwrap());
        }
        trace::uninstall();
        assert_eq!(store.get(key).as_deref(), Some(&b"payload"[..]));
        assert!(!store.is_degraded());
        assert!(collector.counter(names::STORE_RETRIES) >= 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn torn_publish_is_caught_and_quarantined_on_read() {
        let root = tmp_root("torn");
        let store = Store::open(&root).unwrap();
        let key = Pid::of_bytes(b"k");
        {
            let plan = faults::FaultPlan::default()
                .with(faults::FaultRule::new(points::STORE_PUBLISH, FaultKind::Torn).times(1));
            let _faults = faults::install_scoped(plan);
            // The torn publish *reports success* — silent corruption.
            assert!(store.put(key, b"payload").unwrap());
        }
        assert!(store.contains(key), "the torn object landed on disk");
        assert!(store.get(key).is_none(), "corrupt object must miss");
        assert!(!store.contains(key), "and must be quarantined");
        let quarantined = std::fs::read_dir(root.join("quarantine")).unwrap().count();
        assert_eq!(quarantined, 1);
        // The slot heals on the next publish.
        assert!(store.put(key, b"payload").unwrap());
        assert_eq!(store.get(key).as_deref(), Some(&b"payload"[..]));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn persistent_faults_degrade_store_without_failing_callers() {
        let root = tmp_root("degrade");
        let mut store = Store::open(&root).unwrap();
        store.set_degrade_after(3);
        let key = Pid::of_bytes(b"k");
        store.put(key, b"payload").unwrap();
        let collector = trace::Collector::new();
        collector.install();
        {
            // Every fetch fails: the store must latch degraded after
            // three consecutive failures, then stop touching disk.
            let plan = faults::FaultPlan::default()
                .with(faults::FaultRule::new(points::STORE_FETCH, FaultKind::Io));
            let _faults = faults::install_scoped(plan);
            for _ in 0..3 {
                assert!(store.get(key).is_none());
            }
            assert!(store.is_degraded());
            // Degraded puts are instant no-ops — no object appears even
            // though the publish path itself is healthy.
            let other = Pid::of_bytes(b"other");
            assert!(!store.put(other, b"new").unwrap());
            assert!(!store.object_path(other).exists());
            // Degraded gets miss without consulting the fault plan (the
            // object is intact on disk but the store has given up).
            assert!(store.get(key).is_none());
        }
        trace::uninstall();
        assert_eq!(collector.counter(names::STORE_DEGRADED), 1);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn version_mismatch_refuses_to_open() {
        let root = tmp_root("version");
        Store::open(&root).unwrap();
        std::fs::write(root.join("VERSION"), "999\n").unwrap();
        assert!(matches!(
            Store::open(&root),
            Err(StoreError::LayoutVersion { .. })
        ));
        std::fs::remove_dir_all(&root).ok();
    }
}
