//! Garbage collection, verification, stats, and clearing.
//!
//! GC runs under the store-wide lock: it scans the object tree (ground
//! truth), joins it with the journal's last-access stamps (an object
//! the journal has never seen falls back to its file mtime), evicts
//! first by age and then by least-recent-access until under the size
//! bound, purges the quarantine, and compacts the journal to one line
//! per survivor.  Evicting a key a concurrent builder is about to read
//! is safe — the reader just misses and recompiles; the store's only
//! hard promise is that it never *serves* corrupt or stale bytes, which
//! the per-read digest check upholds independently of GC.

use std::collections::HashMap;
use std::path::PathBuf;
use std::time::Duration;

use smlsc_ids::Pid;
use smlsc_trace::{self as trace, names};

use crate::journal::JournalOp;
use crate::{io_err, now_nanos, object_file_is_valid, Store, StoreError};

/// Bounds applied by one [`Store::gc`] sweep.
#[derive(Debug, Clone, Copy, Default)]
pub struct GcConfig {
    /// Evict least-recently-accessed objects until total payload size is
    /// at most this many bytes (`None`: unbounded).
    pub max_bytes: Option<u64>,
    /// Evict objects whose last access is older than this (`None`:
    /// unbounded).
    pub max_age: Option<Duration>,
}

/// What one GC sweep did.
#[derive(Debug, Clone, Default)]
pub struct GcReport {
    /// Objects examined.
    pub examined: usize,
    /// Objects evicted (age- or size-pressure).
    pub evicted: usize,
    /// Total object bytes before the sweep.
    pub bytes_before: u64,
    /// Total object bytes after the sweep.
    pub bytes_after: u64,
    /// Quarantined files purged.
    pub quarantine_purged: usize,
}

/// What one verification sweep found.
#[derive(Debug, Clone, Default)]
pub struct VerifyReport {
    /// Objects checked.
    pub checked: usize,
    /// Keys whose objects failed verification (now quarantined).
    pub corrupt: Vec<String>,
}

/// A point-in-time summary of the store.
#[derive(Debug, Clone, Default)]
pub struct StoreStats {
    /// Live objects.
    pub objects: usize,
    /// Total object file bytes (envelopes included).
    pub bytes: u64,
    /// Files sitting in quarantine.
    pub quarantined: usize,
    /// Journal size in bytes.
    pub journal_bytes: u64,
}

/// One scanned object: its key, file path, file size, and mtime nanos.
struct ScannedObject {
    key: String,
    path: PathBuf,
    size: u64,
    mtime: u64,
}

impl Store {
    /// Scans the object tree.  Unparseable entries (foreign files) are
    /// ignored.
    fn scan_objects(&self) -> Result<Vec<ScannedObject>, StoreError> {
        let objects = self.objects_dir();
        let mut out = Vec::new();
        let fans = match std::fs::read_dir(&objects) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
            Err(e) => return Err(io_err(&objects, e)),
        };
        for fan in fans {
            let fan = fan.map_err(|e| io_err(&objects, e))?;
            let fan_name = fan.file_name();
            let Some(fan_hex) = fan_name.to_str() else {
                continue;
            };
            if fan_hex.len() != 2 || !fan.path().is_dir() {
                continue;
            }
            let entries = std::fs::read_dir(fan.path()).map_err(|e| io_err(&fan.path(), e))?;
            for entry in entries {
                let entry = entry.map_err(|e| io_err(&fan.path(), e))?;
                let path = entry.path();
                if path.extension().is_none_or(|e| e != "obj") {
                    continue;
                }
                let Some(stem) = path.file_stem().and_then(|s| s.to_str()) else {
                    continue;
                };
                let key = format!("{fan_hex}{stem}");
                if key.len() != 32 || !key.bytes().all(|b| b.is_ascii_hexdigit()) {
                    continue;
                }
                let meta = entry.metadata().map_err(|e| io_err(&path, e))?;
                let mtime = meta
                    .modified()
                    .ok()
                    .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                    .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                    .unwrap_or(0);
                out.push(ScannedObject {
                    key,
                    path,
                    size: meta.len(),
                    mtime,
                });
            }
        }
        Ok(out)
    }

    /// Runs one GC sweep under the store-wide lock.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::LockTimeout`].
    pub fn gc(&self, config: &GcConfig) -> Result<GcReport, StoreError> {
        let _span = trace::span(names::SPAN_STORE_GC);
        let _lock = self.gc_lock()?;
        let objects = self.scan_objects()?;
        let last_access = self.journal().last_access()?;
        let now = now_nanos();

        let mut report = GcReport {
            examined: objects.len(),
            ..GcReport::default()
        };
        report.bytes_before = objects.iter().map(|o| o.size).sum();

        // Last access per object: journal stamp if recorded, else the
        // file's mtime (covers objects published before a crash tore
        // the journal append, or imported from a foreign store).
        let mut aged: Vec<(u64, &ScannedObject)> = objects
            .iter()
            .map(|o| (last_access.get(&o.key).copied().unwrap_or(o.mtime), o))
            .collect();
        // Oldest access first; key as deterministic tie-break.
        aged.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| a.1.key.cmp(&b.1.key)));

        let age_cutoff = config
            .max_age
            .map(|max| now.saturating_sub(u64::try_from(max.as_nanos()).unwrap_or(u64::MAX)));
        let mut live_bytes = report.bytes_before;
        let max_bytes = config.max_bytes.unwrap_or(u64::MAX);
        let mut evicted: Vec<&ScannedObject> = Vec::new();
        for (accessed, obj) in &aged {
            let too_old = age_cutoff.is_some_and(|cutoff| *accessed < cutoff);
            let too_big = live_bytes > max_bytes;
            if too_old || too_big {
                evicted.push(obj);
                live_bytes -= obj.size;
            }
        }
        for obj in &evicted {
            std::fs::remove_file(&obj.path).map_err(|e| io_err(&obj.path, e))?;
            trace::counter(names::STORE_EVICTIONS, 1);
            self.journal().append(JournalOp::Evict, &obj.key, 0);
        }
        report.evicted = evicted.len();
        report.bytes_after = live_bytes;

        // Quarantine never earns its keep; purge it wholesale.
        let qdir = self.quarantine_dir();
        if let Ok(entries) = std::fs::read_dir(&qdir) {
            for entry in entries.flatten() {
                if std::fs::remove_file(entry.path()).is_ok() {
                    report.quarantine_purged += 1;
                }
            }
        }

        // Compact the journal to one canonical line per survivor.
        let evicted_keys: std::collections::HashSet<&str> =
            evicted.iter().map(|o| o.key.as_str()).collect();
        let mut survivors: HashMap<String, (u64, u64)> = HashMap::new();
        for (accessed, obj) in &aged {
            if !evicted_keys.contains(obj.key.as_str()) {
                survivors.insert(obj.key.clone(), (*accessed, obj.size));
            }
        }
        self.journal().compact(&survivors)?;
        Ok(report)
    }

    /// Verifies every object's embedded digest, quarantining failures.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures during the scan.
    pub fn verify(&self) -> Result<VerifyReport, StoreError> {
        let mut report = VerifyReport::default();
        for obj in self.scan_objects()? {
            report.checked += 1;
            if !object_file_is_valid(&obj.path) {
                if let Ok(raw) = u128::from_str_radix(&obj.key, 16) {
                    self.quarantine(Pid::from_raw(raw));
                } else {
                    std::fs::remove_file(&obj.path).ok();
                }
                report.corrupt.push(obj.key);
            }
        }
        report.corrupt.sort();
        Ok(report)
    }

    /// Removes staging litter in `tmp/` — the files a publisher that
    /// crashed between staging and rename leaves behind.  Only files
    /// older than `min_age` are touched, so a concurrent live publish
    /// (which holds its staging file for milliseconds) is never raced.
    /// Returns the number of files removed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the tmp directory cannot be read.
    pub fn sweep_tmp(&self, min_age: Duration) -> Result<usize, StoreError> {
        let tmp_dir = self.root().join("tmp");
        let entries = match std::fs::read_dir(&tmp_dir) {
            Ok(r) => r,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(0),
            Err(e) => return Err(io_err(&tmp_dir, e)),
        };
        let now = now_nanos();
        let cutoff = now.saturating_sub(u64::try_from(min_age.as_nanos()).unwrap_or(u64::MAX));
        let mut removed = 0;
        for entry in entries.flatten() {
            let mtime = entry
                .metadata()
                .ok()
                .and_then(|m| m.modified().ok())
                .and_then(|t| t.duration_since(std::time::UNIX_EPOCH).ok())
                .map(|d| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX))
                .unwrap_or(0);
            if mtime <= cutoff && std::fs::remove_file(entry.path()).is_ok() {
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Removes every object, quarantined file, and the journal.
    /// Returns the number of objects removed.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] or [`StoreError::LockTimeout`].
    pub fn clear(&self) -> Result<usize, StoreError> {
        let _lock = self.gc_lock()?;
        let objects = self.scan_objects()?;
        for obj in &objects {
            std::fs::remove_file(&obj.path).map_err(|e| io_err(&obj.path, e))?;
        }
        if let Ok(entries) = std::fs::read_dir(self.quarantine_dir()) {
            for entry in entries.flatten() {
                std::fs::remove_file(entry.path()).ok();
            }
        }
        std::fs::remove_file(self.journal().path()).ok();
        Ok(objects.len())
    }

    /// Summarizes the store without modifying it.
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] on filesystem failures during the scan.
    pub fn stats(&self) -> Result<StoreStats, StoreError> {
        let objects = self.scan_objects()?;
        let quarantined = std::fs::read_dir(self.quarantine_dir())
            .map(|r| r.flatten().count())
            .unwrap_or(0);
        Ok(StoreStats {
            objects: objects.len(),
            bytes: objects.iter().map(|o| o.size).sum(),
            quarantined,
            journal_bytes: self.journal().size_bytes(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::Path;

    fn tmp_store(tag: &str) -> (PathBuf, Store) {
        let root = std::env::temp_dir().join(format!("smlsc-gc-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&root).ok();
        let store = Store::open(&root).unwrap();
        (root, store)
    }

    fn key(i: u8) -> Pid {
        Pid::of_bytes(&[i])
    }

    #[test]
    fn size_bound_evicts_least_recently_accessed_first() {
        let (root, store) = tmp_store("lru");
        let payload = vec![0u8; 100];
        for i in 0..4 {
            store.put(key(i), &payload).unwrap();
        }
        // Touch 0 and 2 so 1 and 3 are the LRU victims.
        assert!(store.get(key(0)).is_some());
        assert!(store.get(key(2)).is_some());
        let total = store.stats().unwrap().bytes;
        let report = store
            .gc(&GcConfig {
                max_bytes: Some(total / 2),
                max_age: None,
            })
            .unwrap();
        assert_eq!(report.examined, 4);
        assert_eq!(report.evicted, 2);
        assert!(store.contains(key(0)), "recently read survives");
        assert!(store.contains(key(2)), "recently read survives");
        assert!(!store.contains(key(1)), "LRU victim evicted");
        assert!(!store.contains(key(3)), "LRU victim evicted");
        // Survivors still verify and serve.
        assert!(store.get(key(0)).is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn age_bound_evicts_everything_older_than_cutoff() {
        let (root, store) = tmp_store("age");
        store.put(key(1), b"x").unwrap();
        let report = store
            .gc(&GcConfig {
                max_bytes: None,
                max_age: Some(Duration::ZERO),
            })
            .unwrap();
        assert_eq!(report.evicted, 1);
        assert!(!store.contains(key(1)));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn gc_compacts_journal_and_purges_quarantine() {
        let (root, store) = tmp_store("compact");
        store.put(key(1), b"keep").unwrap();
        store.put(key(2), b"corrupt-me").unwrap();
        for _ in 0..20 {
            assert!(store.get(key(1)).is_some());
        }
        // Corrupt key(2) and trip the quarantine path.
        let p = store.object_path(key(2));
        let mut bytes = std::fs::read(&p).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 1;
        std::fs::write(&p, bytes).unwrap();
        assert!(store.get(key(2)).is_none());
        assert_eq!(store.stats().unwrap().quarantined, 1);

        let before = store.journal().size_bytes();
        let report = store.gc(&GcConfig::default()).unwrap();
        assert_eq!(report.evicted, 0);
        assert_eq!(report.quarantine_purged, 1);
        assert!(store.journal().size_bytes() < before);
        assert_eq!(store.stats().unwrap().quarantined, 0);
        assert!(store.get(key(1)).is_some());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn verify_quarantines_corrupt_objects() {
        let (root, store) = tmp_store("verify");
        store.put(key(1), b"good").unwrap();
        store.put(key(2), b"bad").unwrap();
        let p = store.object_path(key(2));
        std::fs::write(&p, b"SMLSTOR1 garbage").unwrap();
        let report = store.verify().unwrap();
        assert_eq!(report.checked, 2);
        assert_eq!(report.corrupt.len(), 1);
        assert_eq!(report.corrupt[0], crate::key_hex(key(2)));
        assert!(!store.contains(key(2)));
        assert!(store.contains(key(1)));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clear_empties_the_store() {
        let (root, store) = tmp_store("clear");
        for i in 0..3 {
            store.put(key(i), b"x").unwrap();
        }
        assert_eq!(store.clear().unwrap(), 3);
        let stats = store.stats().unwrap();
        assert_eq!(stats.objects, 0);
        assert_eq!(stats.journal_bytes, 0);
        assert!(!Path::new(&store.object_path(key(0))).exists());
        std::fs::remove_dir_all(&root).ok();
    }
}
