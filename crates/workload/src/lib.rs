//! Synthetic mini-SML project generation.
//!
//! The paper's measurements were taken over the SML/NJ compiler's own
//! sources (≈65,000 lines, ≈200 units).  We cannot ship that tree, so
//! this crate generates parametric module graphs with the properties the
//! experiments depend on:
//!
//! * every module has a **signature** and a transparently ascribed
//!   structure, so interfaces are first-class;
//! * modules **call into their imports**, so dependencies are real
//!   (changing an import's interface genuinely breaks dependents);
//! * the three edit classes the paper reasons about are generable
//!   mechanically: comment-only, body-only (interface-preserving), and
//!   interface-changing ([`EditKind`]);
//! * module size is tunable ([`WorkloadSpec::funs_per_module`]) so total
//!   line counts comparable to the paper's corpus can be produced.
//!
//! # Examples
//!
//! ```
//! use smlsc_workload::{Topology, Workload, WorkloadSpec, EditKind};
//! let mut w = Workload::new(WorkloadSpec {
//!     topology: Topology::Chain { n: 5 },
//!     funs_per_module: 3,
//!     reexport_dep_types: false,
//! });
//! assert_eq!(w.module_count(), 5);
//! w.edit(0, EditKind::BodyOnly); // M0's behaviour changes, interface doesn't
//! assert!(w.project().file("M0").is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use smlsc_core::irm::Project;

/// The shape of the module dependency graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Topology {
    /// `M0 ← M1 ← … ← M(n-1)`: each module imports its predecessor.
    Chain {
        /// Number of modules.
        n: usize,
    },
    /// A complete tree: each internal node imports its children; module 0
    /// is the root (the final consumer).
    Tree {
        /// Tree depth (levels below the root).
        depth: usize,
        /// Children per node.
        branching: usize,
    },
    /// Dense layers: one base module, `depth` layers of `width` modules
    /// each importing the whole previous layer, and one top module.
    Diamond {
        /// Modules per layer.
        width: usize,
        /// Number of layers.
        depth: usize,
    },
    /// A library chain of `lib` modules plus `clients` modules, each
    /// importing 1–3 random library modules (seeded).
    Library {
        /// Library-chain length.
        lib: usize,
        /// Number of clients.
        clients: usize,
        /// RNG seed.
        seed: u64,
    },
    /// A monorepo-shaped graph mixing the three structures large SML
    /// trees actually exhibit (see [`monorepo_plan`] for the layout):
    ///
    /// * **hub interfaces** — a handful of base modules imported from
    ///   everywhere (the `Basis`-like layer);
    /// * **deep functor chains** — runs of modules where each link is a
    ///   `functor` applied to its predecessor (the compiler-as-a-library
    ///   pattern the paper's SML/NJ corpus is full of);
    /// * **wide leaf fans** — the long tail of client modules, each
    ///   importing a hub or two plus one chain tail, and imported by
    ///   nobody.
    ///
    /// Editing a leaf (any index past the chain section, e.g.
    /// `units - 1`) touches a module with zero dependents, so a cutoff
    /// build recompiles exactly one unit no matter how large `units` is.
    Monorepo {
        /// Total module count.
        units: usize,
        /// RNG seed for the leaf fan wiring.
        seed: u64,
    },
}

/// The deterministic section layout of a [`Topology::Monorepo`] graph:
/// indices `0..hubs` are hub interfaces, the next `chains * depth` are
/// functor chains (consecutive runs of `depth`), and the rest are leaves.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MonorepoPlan {
    /// Number of hub interface modules (graph indices `0..hubs`).
    pub hubs: usize,
    /// Number of functor-chain runs.
    pub chains: usize,
    /// Links per chain run.
    pub depth: usize,
    /// Total modules.
    pub units: usize,
}

impl MonorepoPlan {
    /// First index of the leaf section.
    pub fn leaf_base(&self) -> usize {
        self.hubs + self.chains * self.depth
    }

    /// True when index `i` is a non-head chain link — rendered as a
    /// functor applied to its predecessor.
    pub fn is_chain_link(&self, i: usize) -> bool {
        i >= self.hubs && i < self.leaf_base() && !(i - self.hubs).is_multiple_of(self.depth)
    }

    /// The last link of chain run `c` (what leaf fans import).
    pub fn chain_tail(&self, c: usize) -> usize {
        self.hubs + (c + 1) * self.depth - 1
    }
}

/// Computes the section layout for a `units`-module monorepo: up to 16
/// hubs, ~25% of the remainder in functor chains of depth 16, leaves for
/// the rest.  Deterministic in `units` alone so the source renderer can
/// classify an index without carrying extra state.
pub fn monorepo_plan(units: usize) -> MonorepoPlan {
    let hubs = (units / 8).clamp(1, 16).min(units);
    let depth = 16;
    let chains = (units - hubs) / 4 / depth;
    MonorepoPlan {
        hubs,
        chains,
        depth,
        units,
    }
}

/// Generation parameters.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Graph shape.
    pub topology: Topology,
    /// Bulk functions per module (controls lines of code).
    pub funs_per_module: usize,
    /// When `true`, each module re-exports its first dependency's `tagty`
    /// (`val relay : M<d>.tagty`), so type-changing edits propagate
    /// *through* interfaces and legitimately cascade; when `false`,
    /// interfaces only mention pervasive types and every cascade stops at
    /// the direct dependents under cutoff.
    pub reexport_dep_types: bool,
}

impl WorkloadSpec {
    /// A reasonable default over the given topology.
    pub fn with_topology(topology: Topology) -> WorkloadSpec {
        WorkloadSpec {
            topology,
            funs_per_module: 4,
            reexport_dep_types: false,
        }
    }
}

/// The three edit classes of the paper's recompilation analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EditKind {
    /// Changes only a comment: source digest changes, interface doesn't.
    CommentOnly,
    /// Changes a function body: behaviour changes, interface doesn't.
    BodyOnly,
    /// Adds a new exported value: the interface grows.
    InterfaceAdd,
    /// Changes the type of an exported value that dependents re-export,
    /// so the change propagates through their interfaces too.
    InterfaceChangeType,
}

/// Per-module mutable state driving deterministic regeneration.
#[derive(Debug, Clone, Default)]
struct ModState {
    comment_salt: u64,
    body_salt: u64,
    extra_exports: u64,
    wide_tag: bool,
}

/// A generated project plus the state needed to apply edits.
#[derive(Debug)]
pub struct Workload {
    spec: WorkloadSpec,
    deps: Vec<Vec<usize>>,
    states: Vec<ModState>,
    project: Project,
}

impl Workload {
    /// Generates a fresh workload.
    pub fn new(spec: WorkloadSpec) -> Workload {
        let deps = dependencies(spec.topology);
        let states = vec![ModState::default(); deps.len()];
        let mut project = Project::new();
        for i in 0..deps.len() {
            project.add(
                module_name(i),
                module_source(i, &deps[i], &spec, &states[i]),
            );
        }
        Workload {
            spec,
            deps,
            states,
            project,
        }
    }

    /// The generated project.
    pub fn project(&self) -> &Project {
        &self.project
    }

    /// Number of modules.
    pub fn module_count(&self) -> usize {
        self.deps.len()
    }

    /// The dependency lists (module index → imported module indices).
    pub fn deps(&self) -> &[Vec<usize>] {
        &self.deps
    }

    /// Total source lines.
    pub fn total_lines(&self) -> usize {
        self.project.total_lines()
    }

    /// Applies an edit to module `i`, regenerating its source.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn edit(&mut self, i: usize, kind: EditKind) {
        let st = &mut self.states[i];
        match kind {
            EditKind::CommentOnly => st.comment_salt += 1,
            EditKind::BodyOnly => st.body_salt += 1,
            EditKind::InterfaceAdd => st.extra_exports += 1,
            EditKind::InterfaceChangeType => st.wide_tag = !st.wide_tag,
        }
        let src = module_source(i, &self.deps[i], &self.spec, &self.states[i]);
        self.project
            .edit(&module_name(i), src)
            .expect("module exists");
    }

    /// Index of a module with no dependents (a "root" consumer), if any.
    pub fn leaf_consumer(&self) -> Option<usize> {
        let n = self.deps.len();
        (0..n).find(|i| !self.deps.iter().any(|d| d.contains(i)))
    }

    /// Index of the module with the most *transitive* dependents — the
    /// worst place to edit.  Ties break toward the lowest index.
    pub fn most_depended_on(&self) -> usize {
        let n = self.deps.len();
        let mut best = (0usize, 0usize);
        for i in 0..n {
            let count = self.transitive_dependents(i).len();
            if count > best.1 {
                best = (i, count);
            }
        }
        best.0
    }

    /// Every module that (transitively) imports `i`.
    pub fn transitive_dependents(&self, i: usize) -> Vec<usize> {
        let n = self.deps.len();
        let mut affected = vec![false; n];
        affected[i] = true;
        // Repeat until fixpoint; the graph is a DAG so this terminates.
        let mut changed = true;
        while changed {
            changed = false;
            for (j, deps) in self.deps.iter().enumerate() {
                if !affected[j] && deps.iter().any(|d| affected[*d]) {
                    affected[j] = true;
                    changed = true;
                }
            }
        }
        (0..n).filter(|j| *j != i && affected[*j]).collect()
    }
}

/// The canonical module name for index `i`.
pub fn module_name(i: usize) -> String {
    format!("M{i}")
}

fn dependencies(topology: Topology) -> Vec<Vec<usize>> {
    match topology {
        Topology::Chain { n } => (0..n)
            .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
            .collect(),
        Topology::Tree { depth, branching } => {
            // Level order: node i's children are i*b+1 ..= i*b+b.
            let n = if branching <= 1 {
                depth + 1
            } else {
                (branching.pow(depth as u32 + 1) - 1) / (branching - 1)
            };
            (0..n)
                .map(|i| {
                    (1..=branching)
                        .map(|k| i * branching + k)
                        .filter(|&c| c < n)
                        .collect()
                })
                .collect()
        }
        Topology::Diamond { width, depth } => {
            // Index 0: base.  Layer l (1-based) occupies
            // 1 + (l-1)*width .. 1 + l*width.  Last index: top.
            let n = 2 + width * depth;
            (0..n)
                .map(|i| {
                    if i == 0 {
                        vec![]
                    } else if i == n - 1 {
                        // Top imports the last layer.
                        ((1 + width * (depth - 1))..(1 + width * depth)).collect()
                    } else {
                        let layer = (i - 1) / width + 1;
                        if layer == 1 {
                            vec![0]
                        } else {
                            ((1 + width * (layer - 2))..(1 + width * (layer - 1))).collect()
                        }
                    }
                })
                .collect()
        }
        Topology::Library { lib, clients, seed } => {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut deps: Vec<Vec<usize>> = (0..lib)
                .map(|i| if i == 0 { vec![] } else { vec![i - 1] })
                .collect();
            for _ in 0..clients {
                let k = rng.gen_range(1..=3.min(lib));
                let mut d = Vec::new();
                while d.len() < k {
                    let c = rng.gen_range(0..lib);
                    if !d.contains(&c) {
                        d.push(c);
                    }
                }
                d.sort_unstable();
                deps.push(d);
            }
            deps
        }
        Topology::Monorepo { units, seed } => {
            let plan = monorepo_plan(units);
            let mut rng = StdRng::seed_from_u64(seed);
            let mut deps: Vec<Vec<usize>> = Vec::with_capacity(units);
            // Hub interfaces: no imports.
            for _ in 0..plan.hubs {
                deps.push(vec![]);
            }
            // Functor chains: each head imports one hub; each link
            // imports exactly its predecessor (the functor argument).
            for c in 0..plan.chains {
                for k in 0..plan.depth {
                    let i = plan.hubs + c * plan.depth + k;
                    if k == 0 {
                        deps.push(vec![c % plan.hubs]);
                    } else {
                        deps.push(vec![i - 1]);
                    }
                }
            }
            // Leaf fans: a hub, usually a chain tail, sometimes a second
            // hub.  Nothing ever imports a leaf.
            for _ in plan.leaf_base()..units {
                let mut d = vec![rng.gen_range(0..plan.hubs)];
                if plan.chains > 0 {
                    let t = plan.chain_tail(rng.gen_range(0..plan.chains));
                    if !d.contains(&t) {
                        d.push(t);
                    }
                }
                if plan.hubs > 1 && rng.gen_range(0..3) == 0 {
                    let h = rng.gen_range(0..plan.hubs);
                    if !d.contains(&h) {
                        d.push(h);
                    }
                }
                d.sort_unstable();
                deps.push(d);
            }
            deps
        }
    }
}

/// Renders module `i`'s source.
fn module_source(i: usize, deps: &[usize], spec: &WorkloadSpec, st: &ModState) -> String {
    let name = module_name(i);
    let tag_ty = if st.wide_tag { "string" } else { "int" };
    let tag_val = if st.wide_tag {
        format!("\"m{i}\"")
    } else {
        format!("{i}")
    };
    let mut s = String::new();
    if st.comment_salt > 0 {
        s.push_str(&format!(
            "(* revision {} of module {name}: comments only *)\n",
            st.comment_salt
        ));
    }
    // Signature.
    s.push_str(&format!("signature {name}_SIG = sig\n"));
    s.push_str("  type t = int\n");
    if spec.reexport_dep_types {
        s.push_str(&format!("  type tagty = {tag_ty}\n"));
    }
    s.push_str("  val mk : int -> t\n");
    s.push_str("  val get : t -> int\n");
    if spec.reexport_dep_types {
        s.push_str("  val tag : tagty\n");
        if let Some(d0) = deps.first() {
            // Re-export the dependency's tag type by *path*, so a type
            // change there flows through this interface without touching
            // this source file.
            s.push_str(&format!("  val relay : {}.tagty\n", module_name(*d0)));
        }
    } else {
        s.push_str(&format!("  val tag : {tag_ty}\n"));
    }
    if !deps.is_empty() {
        s.push_str("  val sumDeps : int\n");
    }
    for f in 0..spec.funs_per_module {
        s.push_str(&format!("  val f{f} : int -> int\n"));
    }
    for e in 0..st.extra_exports {
        s.push_str(&format!("  val extra{e} : int\n"));
    }
    s.push_str("end\n");
    // Structure — or, for monorepo chain links, a functor over the
    // predecessor's interface applied immediately, so the chain is a
    // chain of functor applications (the shape §2's CM discussion and
    // the SML/NJ corpus are built from).  The param sig pins `tag : int`,
    // so an `InterfaceChangeType` edit inside a chain makes the next
    // link ill-typed — exactly what such an edit does to real consumers.
    let functor_link = match spec.topology {
        Topology::Monorepo { units, .. } => {
            monorepo_plan(units).is_chain_link(i) && !deps.is_empty()
        }
        _ => false,
    };
    if functor_link {
        s.push_str(&format!(
            "functor {name}_F (P : sig val tag : int end) = struct\n"
        ));
    } else {
        s.push_str(&format!("structure {name} : {name}_SIG = struct\n"));
    }
    s.push_str("  type t = int\n");
    if spec.reexport_dep_types {
        s.push_str(&format!("  type tagty = {tag_ty}\n"));
    }
    s.push_str(&format!("  fun mk x = x + {}\n", st.body_salt % 17));
    s.push_str("  fun get x = x\n");
    s.push_str(&format!("  val tag = {tag_val}\n"));
    if spec.reexport_dep_types {
        if let Some(d0) = deps.first() {
            s.push_str(&format!("  val relay = {}.tag\n", module_name(*d0)));
        }
    }
    if !deps.is_empty() {
        // Reference *every* declared dependency, so the source-level
        // import graph matches the topology exactly.
        let terms: Vec<String> = deps
            .iter()
            .map(|d| format!("{}.get ({}.mk 1)", module_name(*d), module_name(*d)))
            .collect();
        let param = if functor_link { "P.tag + " } else { "" };
        s.push_str(&format!("  val sumDeps = {param}{}\n", terms.join(" + ")));
    }
    for f in 0..spec.funs_per_module {
        let salt = (st.body_salt + f as u64) % 23;
        // Bulk functions spread their calls across the dependency list.
        let call = if deps.is_empty() {
            "x".to_string()
        } else {
            let d = deps[f % deps.len()];
            format!("{}.get ({}.mk x)", module_name(d), module_name(d))
        };
        s.push_str(&format!("  fun f{f} x = {call} + {salt} + {f}\n"));
    }
    for e in 0..st.extra_exports {
        s.push_str(&format!("  val extra{e} = {e}\n"));
    }
    s.push_str("end\n");
    if functor_link {
        s.push_str(&format!(
            "structure {name} : {name}_SIG = {name}_F({})\n",
            module_name(deps[0])
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_shape() {
        let w = Workload::new(WorkloadSpec {
            topology: Topology::Chain { n: 4 },
            funs_per_module: 1,
            reexport_dep_types: false,
        });
        assert_eq!(w.module_count(), 4);
        assert_eq!(w.deps()[0], Vec::<usize>::new());
        assert_eq!(w.deps()[3], vec![2]);
        assert_eq!(w.leaf_consumer(), Some(3));
        assert_eq!(w.most_depended_on(), 0);
    }

    #[test]
    fn tree_shape() {
        let w = Workload::new(WorkloadSpec {
            topology: Topology::Tree {
                depth: 2,
                branching: 2,
            },
            funs_per_module: 1,
            reexport_dep_types: false,
        });
        assert_eq!(w.module_count(), 7);
        assert_eq!(w.deps()[0], vec![1, 2]);
        assert_eq!(w.deps()[2], vec![5, 6]);
        assert!(w.deps()[6].is_empty());
    }

    #[test]
    fn diamond_shape() {
        let w = Workload::new(WorkloadSpec {
            topology: Topology::Diamond { width: 3, depth: 2 },
            funs_per_module: 1,
            reexport_dep_types: false,
        });
        assert_eq!(w.module_count(), 8);
        assert_eq!(w.deps()[1], vec![0]);
        assert_eq!(w.deps()[4], vec![1, 2, 3]);
        assert_eq!(w.deps()[7], vec![4, 5, 6]);
    }

    #[test]
    fn library_is_seeded_and_acyclic() {
        let a = dependencies(Topology::Library {
            lib: 10,
            clients: 20,
            seed: 7,
        });
        let b = dependencies(Topology::Library {
            lib: 10,
            clients: 20,
            seed: 7,
        });
        assert_eq!(a, b, "same seed, same graph");
        for (i, deps) in a.iter().enumerate().skip(10) {
            for d in deps {
                assert!(*d < 10, "client {i} must import library modules only");
            }
        }
    }

    #[test]
    fn monorepo_plan_sections() {
        let p = monorepo_plan(80);
        assert_eq!(p.hubs, 10);
        assert_eq!((p.chains, p.depth), (1, 16));
        assert_eq!(p.leaf_base(), 26);
        assert!(!p.is_chain_link(10), "chain heads are plain structures");
        assert!(p.is_chain_link(11));
        assert!(p.is_chain_link(25));
        assert!(!p.is_chain_link(26), "leaves are plain structures");
        assert_eq!(p.chain_tail(0), 25);
        // Monorepo scale: the sections keep their intended proportions.
        let big = monorepo_plan(50_000);
        assert_eq!(big.hubs, 16);
        assert!(big.chains * big.depth >= 10_000, "{big:?}");
        assert!(big.leaf_base() < 40_000, "{big:?}");
    }

    #[test]
    fn monorepo_is_seeded_and_links_are_functor_applications() {
        let spec = WorkloadSpec::with_topology(Topology::Monorepo { units: 80, seed: 7 });
        let a = Workload::new(spec);
        let b = Workload::new(spec);
        assert_eq!(a.deps(), b.deps(), "same seed, same graph");
        let link = a.project().file("M11").unwrap().read_text().unwrap();
        assert!(link.contains("functor M11_F"), "{link}");
        assert!(
            link.contains("structure M11 : M11_SIG = M11_F(M10)"),
            "{link}"
        );
        let head = a.project().file("M10").unwrap().read_text().unwrap();
        assert!(!head.contains("functor"), "chain heads are structures");
        let plan = monorepo_plan(80);
        for i in plan.leaf_base()..80 {
            assert!(
                !a.deps().iter().any(|d| d.contains(&i)),
                "leaf {i} must have no dependents"
            );
            assert!(!a.deps()[i].is_empty(), "leaf {i} imports something");
        }
        let hub_dependents = a.deps().iter().filter(|d| d.contains(&0)).count();
        assert!(hub_dependents >= 2, "hub 0 is widely imported");
    }

    #[test]
    fn monorepo_builds_and_edits_cut_off() {
        use smlsc_core::irm::{Irm, Strategy};
        let mut w = Workload::new(WorkloadSpec {
            topology: Topology::Monorepo { units: 80, seed: 7 },
            funs_per_module: 2,
            reexport_dep_types: false,
        });
        let mut irm = Irm::new(Strategy::Cutoff);
        let report = irm.build(w.project()).expect("monorepo elaborates");
        assert_eq!(report.recompiled.len(), 80);
        // A leaf body edit recompiles exactly that leaf.
        w.edit(79, EditKind::BodyOnly);
        let report = irm.build(w.project()).expect("leaf edit builds");
        assert_eq!(report.recompiled.len(), 1);
        // A body edit *inside* a functor chain is cut off at the next
        // link: the link's interface did not change.
        w.edit(12, EditKind::BodyOnly);
        let report = irm.build(w.project()).expect("chain edit builds");
        assert_eq!(report.recompiled.len(), 1);
    }

    #[test]
    fn edits_change_the_right_things() {
        let mut w = Workload::new(WorkloadSpec {
            topology: Topology::Chain { n: 2 },
            funs_per_module: 2,
            reexport_dep_types: false,
        });
        let text_of = |w: &Workload| {
            w.project()
                .file("M0")
                .unwrap()
                .read_text()
                .unwrap()
                .to_string()
        };
        let before = text_of(&w);
        w.edit(0, EditKind::CommentOnly);
        let after = text_of(&w);
        assert_ne!(before, after);
        assert!(after.contains("revision 1"));

        w.edit(0, EditKind::InterfaceAdd);
        assert!(text_of(&w).contains("extra0"));

        w.edit(0, EditKind::InterfaceChangeType);
        assert!(text_of(&w).contains("tag : string"));
    }

    #[test]
    fn line_counts_scale_with_funs() {
        let small = Workload::new(WorkloadSpec {
            topology: Topology::Chain { n: 3 },
            funs_per_module: 2,
            reexport_dep_types: false,
        });
        let big = Workload::new(WorkloadSpec {
            topology: Topology::Chain { n: 3 },
            funs_per_module: 40,
            reexport_dep_types: false,
        });
        assert!(big.total_lines() > 3 * small.total_lines());
    }
}
