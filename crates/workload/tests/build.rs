//! Generated workloads must actually compile, execute, and exhibit the
//! cascade shapes the experiments rely on.

use smlsc_core::irm::{Irm, Strategy};
use smlsc_workload::{EditKind, Topology, Workload, WorkloadSpec};

fn spec(topology: Topology) -> WorkloadSpec {
    WorkloadSpec {
        topology,
        funs_per_module: 3,
        reexport_dep_types: false,
    }
}

#[test]
fn every_topology_builds_and_executes() {
    for topo in [
        Topology::Chain { n: 6 },
        Topology::Tree {
            depth: 2,
            branching: 2,
        },
        Topology::Diamond { width: 3, depth: 2 },
        Topology::Library {
            lib: 5,
            clients: 8,
            seed: 42,
        },
    ] {
        let w = Workload::new(spec(topo));
        let mut irm = Irm::new(Strategy::Cutoff);
        let (report, env) = irm.execute(w.project()).unwrap_or_else(|e| {
            panic!("workload {topo:?} failed: {e}");
        });
        assert_eq!(report.recompiled.len(), w.module_count());
        assert_eq!(env.len(), w.module_count());
    }
}

#[test]
fn edit_kinds_produce_expected_cascades_on_a_chain() {
    let mut w = Workload::new(spec(Topology::Chain { n: 8 }));
    let mut cutoff = Irm::new(Strategy::Cutoff);
    let mut make = Irm::new(Strategy::Timestamp);
    cutoff.build(w.project()).unwrap();
    make.build(w.project()).unwrap();

    // Comment-only edit at the root: cutoff 1, make 8.
    w.edit(0, EditKind::CommentOnly);
    assert_eq!(cutoff.build(w.project()).unwrap().recompiled.len(), 1);
    assert_eq!(make.build(w.project()).unwrap().recompiled.len(), 8);

    // Body edit at the root: cutoff 1.
    w.edit(0, EditKind::BodyOnly);
    assert_eq!(cutoff.build(w.project()).unwrap().recompiled.len(), 1);

    // Interface-add at the root: cutoff recompiles the root and its
    // single direct dependent, then cuts off.
    w.edit(0, EditKind::InterfaceAdd);
    assert_eq!(cutoff.build(w.project()).unwrap().recompiled.len(), 2);
}

#[test]
fn type_change_cascades_fully_when_interfaces_relay_types() {
    let mut w = Workload::new(WorkloadSpec {
        topology: Topology::Chain { n: 6 },
        funs_per_module: 2,
        reexport_dep_types: true,
    });
    let mut cutoff = Irm::new(Strategy::Cutoff);
    cutoff.build(w.project()).unwrap();
    w.edit(0, EditKind::InterfaceChangeType);
    let report = cutoff.build(w.project()).unwrap();
    assert_eq!(
        report.recompiled.len(),
        6,
        "tagty flows through every relay: {:?}",
        report.recompiled
    );
    // A body edit still cuts off immediately in the same configuration.
    w.edit(0, EditKind::BodyOnly);
    assert_eq!(cutoff.build(w.project()).unwrap().recompiled.len(), 1);
}

#[test]
fn diamond_cascade_counts() {
    let mut w = Workload::new(spec(Topology::Diamond { width: 4, depth: 3 }));
    let n = w.module_count();
    let mut cutoff = Irm::new(Strategy::Cutoff);
    let mut classical = Irm::new(Strategy::Classical);
    cutoff.build(w.project()).unwrap();
    classical.build(w.project()).unwrap();
    // Base body edit: cutoff 1, classical everything downstream of base.
    w.edit(0, EditKind::BodyOnly);
    assert_eq!(cutoff.build(w.project()).unwrap().recompiled.len(), 1);
    assert_eq!(classical.build(w.project()).unwrap().recompiled.len(), n);
}

#[test]
fn transitive_dependents_match_classical_recompiles() {
    let w0 = Workload::new(spec(Topology::Library {
        lib: 6,
        clients: 10,
        seed: 3,
    }));
    let victim = w0.most_depended_on();
    let expected = w0.transitive_dependents(victim).len() + 1;

    let mut w = Workload::new(spec(Topology::Library {
        lib: 6,
        clients: 10,
        seed: 3,
    }));
    let mut classical = Irm::new(Strategy::Classical);
    classical.build(w.project()).unwrap();
    w.edit(victim, EditKind::BodyOnly);
    let report = classical.build(w.project()).unwrap();
    assert_eq!(report.recompiled.len(), expected);
}
