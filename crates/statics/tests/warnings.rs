//! Warning-surface tests: exhaustiveness and redundancy diagnostics from
//! whole-unit elaboration.

use smlsc_statics::elab::{elaborate_unit, ImportEnv};

fn warnings(src: &str) -> Vec<String> {
    let ast = smlsc_syntax::parse_unit(src).unwrap();
    let u = elaborate_unit(&ast, &ImportEnv::empty()).unwrap_or_else(|e| panic!("{e}"));
    u.warnings.iter().map(ToString::to_string).collect()
}

#[test]
fn exhaustive_function_is_quiet() {
    let w = warnings(
        "structure A = struct
           fun len [] = 0
             | len (_ :: xs) = 1 + len xs
         end",
    );
    assert!(w.is_empty(), "{w:?}");
}

#[test]
fn missing_nil_case_warns() {
    let w = warnings(
        "structure A = struct
           fun hd (x :: _) = x
         end",
    );
    assert_eq!(w.len(), 1, "{w:?}");
    assert!(w[0].contains("not exhaustive"), "{w:?}");
    assert!(w[0].contains("`hd`"), "{w:?}");
}

#[test]
fn redundant_rule_warns() {
    let w = warnings(
        "structure A = struct
           fun f 0 = 1
             | f _ = 2
             | f 3 = 4
         end",
    );
    assert!(w.iter().any(|m| m.contains("redundant")), "{w:?}");
}

#[test]
fn case_on_datatype_missing_constructor() {
    let w = warnings(
        "structure A = struct
           datatype t = X | Y | Z
           fun g v = case v of X => 1 | Y => 2
         end",
    );
    assert!(w.iter().any(|m| m.contains("not exhaustive")), "{w:?}");
}

#[test]
fn full_datatype_case_is_quiet() {
    let w = warnings(
        "structure A = struct
           datatype t = X | Y of int
           fun g v = case v of X => 1 | Y n => n
         end",
    );
    assert!(w.is_empty(), "{w:?}");
}

#[test]
fn refutable_val_binding_warns() {
    let w = warnings(
        "structure A = struct
           val x :: _ = [1, 2]
         end",
    );
    assert!(w.iter().any(|m| m.contains("refutable")), "{w:?}");
}

#[test]
fn irrefutable_tuple_binding_is_quiet() {
    let w = warnings(
        "structure A = struct
           val (a, b) = (1, 2)
           val c = a + b
         end",
    );
    assert!(w.is_empty(), "{w:?}");
}

#[test]
fn handle_is_never_checked() {
    let w = warnings(
        "structure A = struct
           exception E
           val x = (raise E) handle E => 1
         end",
    );
    assert!(w.is_empty(), "handle falls through by design: {w:?}");
}

#[test]
fn option_patterns() {
    let w = warnings(
        "structure A = struct
           fun get (SOME x) = x
             | get NONE = 0
         end",
    );
    assert!(w.is_empty(), "{w:?}");
    let w = warnings(
        "structure A = struct
           fun get (SOME x) = x
         end",
    );
    assert!(w.iter().any(|m| m.contains("not exhaustive")), "{w:?}");
}

#[test]
fn multi_parameter_clauses_are_analyzed_jointly() {
    let w = warnings(
        "structure A = struct
           fun both true true = 1
             | both false _ = 2
             | both _ false = 3
         end",
    );
    assert!(w.is_empty(), "covers all four combinations: {w:?}");
    let w = warnings(
        "structure A = struct
           fun both true true = 1
             | both false false = 2
         end",
    );
    assert!(w.iter().any(|m| m.contains("not exhaustive")), "{w:?}");
}

#[test]
fn warnings_do_not_block_compilation() {
    // A unit with warnings still compiles and its exports are intact.
    let ast = smlsc_syntax::parse_unit("structure A = struct fun hd (x :: _) = x end").unwrap();
    let u = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    assert!(!u.warnings.is_empty());
    assert!(u.exports.str(smlsc_ids::Symbol::intern("A")).is_some());
}

#[test]
fn as_patterns_are_transparent_for_exhaustiveness() {
    // `l as (x :: _)` covers exactly the cons case.
    let w = warnings(
        "structure A = struct
           fun f (l as (_ :: _)) = l
             | f [] = []
         end",
    );
    assert!(w.is_empty(), "{w:?}");
    let w = warnings(
        "structure A = struct
           fun f (l as (_ :: _)) = l
         end",
    );
    assert!(w.iter().any(|m| m.contains("not exhaustive")), "{w:?}");
}
