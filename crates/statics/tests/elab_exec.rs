//! End-to-end tests: parse → elaborate → execute, within and across
//! compilation units.

use std::sync::Arc;

use smlsc_dynamics::eval::execute;
use smlsc_dynamics::value::Value;
use smlsc_ids::Symbol;
use smlsc_statics::elab::{elaborate_unit, ElabUnit, ImportEnv, ImportedUnit};
use smlsc_statics::env::{str_slot, val_slot, Bindings};

fn compile(src: &str, imports: &ImportEnv) -> Result<ElabUnit, String> {
    let ast = smlsc_syntax::parse_unit(src).map_err(|e| e.to_string())?;
    elaborate_unit(&ast, imports).map_err(|e| e.to_string())
}

fn compile_ok(src: &str, imports: &ImportEnv) -> ElabUnit {
    compile(src, imports).unwrap_or_else(|e| panic!("{e}\nsource: {src}"))
}

fn run(src: &str) -> (ElabUnit, Value) {
    let unit = compile_ok(src, &ImportEnv::empty());
    let v = execute(&unit.code, &[]).expect("execution succeeds");
    (unit, v)
}

/// Fetches `Str.member` from a unit's export record.
fn member(unit: &ElabUnit, export: &Value, str_name: &str, val_name: &str) -> Value {
    let Value::Record(units) = export else {
        panic!("export not a record")
    };
    let s = Symbol::intern(str_name);
    let slot = str_slot(&unit.exports, s).expect("structure slot") as usize;
    let Value::Record(fields) = &units[slot] else {
        panic!("structure not a record")
    };
    let b = &unit.exports.str(s).unwrap().bindings;
    let vslot = val_slot(b, Symbol::intern(val_name)).expect("value slot") as usize;
    fields[vslot].clone()
}

#[test]
fn simple_structure_value() {
    let (unit, v) = run("structure A = struct val x = 40 + 2 end");
    assert_eq!(member(&unit, &v, "A", "x"), Value::Int(42));
}

#[test]
fn functions_and_recursion() {
    let (unit, v) = run("structure M = struct
           fun fact n = if n = 0 then 1 else n * fact (n - 1)
           val result = fact 6
         end");
    assert_eq!(member(&unit, &v, "M", "result"), Value::Int(720));
}

#[test]
fn mutual_recursion() {
    let (unit, v) = run("structure M = struct
           fun isEven n = if n = 0 then true else isOdd (n - 1)
           and isOdd n = if n = 0 then false else isEven (n - 1)
           val a = isEven 10
           val b = isOdd 10
         end");
    assert_eq!(member(&unit, &v, "M", "a"), Value::bool(true));
    assert_eq!(member(&unit, &v, "M", "b"), Value::bool(false));
}

#[test]
fn datatypes_and_pattern_matching() {
    let (unit, v) = run("structure T = struct
           datatype tree = Leaf | Node of tree * int * tree
           fun sum Leaf = 0
             | sum (Node (l, n, r)) = sum l + n + sum r
           val total = sum (Node (Node (Leaf, 1, Leaf), 2, Node (Leaf, 3, Leaf)))
         end");
    assert_eq!(member(&unit, &v, "T", "total"), Value::Int(6));
}

#[test]
fn polymorphic_map_at_two_types() {
    let (unit, v) = run(r#"structure M = struct
             fun map f [] = []
               | map f (x :: xs) = f x :: map f xs
             val ints = map (fn x => x + 1) [1, 2, 3]
             val strs = map (fn s => s ^ "!") ["a", "b"]
           end"#);
    assert_eq!(
        member(&unit, &v, "M", "ints"),
        Value::list(vec![Value::Int(2), Value::Int(3), Value::Int(4)])
    );
    assert_eq!(
        member(&unit, &v, "M", "strs"),
        Value::list(vec![Value::Str("a!".into()), Value::Str("b!".into())])
    );
}

#[test]
fn figure_one_transparent_functor_application() {
    // The paper's Figure 1: because signature matching is transparent,
    // FSort.t = int is visible, so clients can apply FSort.sort directly
    // to an int list.
    let (unit, v) = run("signature PARTIAL_ORDER = sig
           type elem
           val less : elem * elem -> bool
         end
         signature SORT = sig
           type t
           val sort : t list -> t list
         end
         functor TopSort (P : PARTIAL_ORDER) : SORT = struct
           type t = P.elem
           fun insert (x, []) = [x]
             | insert (x, y :: ys) =
                 if P.less (x, y) then x :: y :: ys else y :: insert (x, ys)
           fun sort [] = []
             | sort (x :: xs) = insert (x, sort xs)
         end
         structure Factors : PARTIAL_ORDER = struct
           type elem = int
           fun less (i, j) = (j mod i) = 0
         end
         structure FSort : SORT = TopSort(Factors)
         structure Client = struct
           (* FSort.t must be int, transparently. *)
           val sorted = FSort.sort [4, 2, 8]
           val asInt = case sorted of x :: _ => x + 0 | [] => 0
         end");
    assert_eq!(
        member(&unit, &v, "Client", "sorted"),
        Value::list(vec![Value::Int(2), Value::Int(4), Value::Int(8)])
    );
}

#[test]
fn opaque_ascription_hides_the_type() {
    let ok = compile(
        "structure A :> sig type t val mk : int -> t val get : t -> int end =
           struct type t = int fun mk x = x fun get x = x end
         structure B = struct val y = A.get (A.mk 3) end",
        &ImportEnv::empty(),
    );
    assert!(ok.is_ok(), "{ok:?}");
    let bad = compile(
        "structure A :> sig type t val mk : int -> t end =
           struct type t = int fun mk x = x end
         structure B = struct val y = A.mk 3 + 1 end",
        &ImportEnv::empty(),
    );
    let msg = bad.unwrap_err();
    assert!(msg.contains("unify"), "{msg}");
}

#[test]
fn transparent_ascription_keeps_the_type() {
    // With `:` instead of `:>`, t = int remains visible.
    compile_ok(
        "structure A : sig type t val mk : int -> t end =
           struct type t = int fun mk x = x end
         structure B = struct val y = A.mk 3 + 1 end",
        &ImportEnv::empty(),
    );
}

#[test]
fn ascription_narrows_bindings() {
    let bad = compile(
        "structure A : sig val x : int end = struct val x = 1 val hidden = 2 end
         structure B = struct val y = A.hidden end",
        &ImportEnv::empty(),
    );
    assert!(bad.unwrap_err().contains("no value"), "hidden must be gone");
}

#[test]
fn signature_mismatch_reports_missing_value() {
    let bad = compile(
        "structure A : sig val x : int val y : int end = struct val x = 1 end",
        &ImportEnv::empty(),
    );
    assert!(bad.unwrap_err().contains("missing value"), "error names y");
}

#[test]
fn signature_mismatch_reports_wrong_type() {
    let bad = compile(
        r#"structure A : sig val x : int end = struct val x = "s" end"#,
        &ImportEnv::empty(),
    );
    assert!(bad.unwrap_err().contains("spec requires"));
}

#[test]
fn functor_generativity() {
    // Each application of F mints a fresh datatype t; mixing them is a
    // type error.
    let bad = compile(
        "functor F (X : sig end) = struct datatype t = C of int fun un (C n) = n end
         structure E = struct end
         structure A = F(E)
         structure B = F(E)
         structure Mix = struct val x = B.un (A.C 1) end",
        &ImportEnv::empty(),
    );
    assert!(bad.is_err(), "generative datatypes must not mix");
    // But using one application consistently is fine.
    compile_ok(
        "functor F (X : sig end) = struct datatype t = C of int fun un (C n) = n end
         structure E = struct end
         structure A = F(E)
         structure Use = struct val x = A.un (A.C 1) end",
        &ImportEnv::empty(),
    );
}

#[test]
fn exceptions_across_structures() {
    let (unit, v) = run("structure E = struct
           exception Empty
           fun hd [] = raise Empty
             | hd (x :: _) = x
         end
         structure U = struct
           val ok = E.hd [7, 8]
           val caught = (E.hd []) handle E.Empty => 99
         end");
    assert_eq!(member(&unit, &v, "U", "ok"), Value::Int(7));
    assert_eq!(member(&unit, &v, "U", "caught"), Value::Int(99));
}

#[test]
fn exception_with_payload() {
    let (unit, v) = run(r#"structure E = struct
             exception Fail of string
             fun go 0 = raise Fail "zero"
               | go n = n
             val msg = (go 0; "no") handle Fail s => s
           end"#);
    assert_eq!(member(&unit, &v, "E", "msg"), Value::Str("zero".into()));
}

#[test]
fn open_splices_bindings() {
    let (unit, v) = run("structure A = struct val x = 10 datatype d = D of int end
         structure B = struct
           open A
           val y = x + 1
           val z = case D 5 of D n => n
         end");
    assert_eq!(member(&unit, &v, "B", "y"), Value::Int(11));
    assert_eq!(member(&unit, &v, "B", "z"), Value::Int(5));
}

#[test]
fn local_hides_helpers() {
    let (unit, v) = run("structure A = struct
           local
             fun helper x = x * 2
           in
             val visible = helper 21
           end
         end");
    assert_eq!(member(&unit, &v, "A", "visible"), Value::Int(42));
    let bad = compile(
        "structure A = struct
           local fun helper x = x in val v = helper 1 end
         end
         structure B = struct val y = A.helper end",
        &ImportEnv::empty(),
    );
    assert!(bad.is_err(), "helper must not be exported");
}

#[test]
fn nested_structures() {
    let (unit, v) = run("structure A = struct
           structure Inner = struct val x = 5 end
           val y = Inner.x + 1
         end
         structure B = struct val z = A.Inner.x + A.y end");
    assert_eq!(member(&unit, &v, "B", "z"), Value::Int(11));
}

#[test]
fn where_type_makes_manifest() {
    compile_ok(
        "signature S = sig type t val mk : int -> t end
         structure A : S where type t = int = struct type t = int fun mk x = x end
         structure B = struct val y = A.mk 3 + 1 end",
        &ImportEnv::empty(),
    );
}

#[test]
fn include_extends_signatures() {
    compile_ok(
        "signature BASE = sig val x : int end
         signature EXT = sig include BASE val y : int end
         structure A : EXT = struct val x = 1 val y = 2 end",
        &ImportEnv::empty(),
    );
    let bad = compile(
        "signature BASE = sig val x : int end
         signature EXT = sig include BASE val y : int end
         structure A : EXT = struct val y = 2 end",
        &ImportEnv::empty(),
    );
    assert!(bad.is_err());
}

#[test]
fn value_restriction() {
    // `val id2 = mkid ()` is expansive: it must not generalize, so using
    // it at two different types is an error.
    let bad = compile(
        r#"structure A = struct
             fun mkid () = fn x => x
             val id2 = mkid ()
             val a = id2 1
             val b = id2 "s"
           end"#,
        &ImportEnv::empty(),
    );
    assert!(bad.is_err(), "value restriction must reject");
    // The eta-expanded version is a value, hence polymorphic.
    compile_ok(
        r#"structure A = struct
             fun mkid () = fn x => x
             val id2 = fn x => (fn y => y) x
             val a = id2 1
             val b = id2 "s"
           end"#,
        &ImportEnv::empty(),
    );
}

#[test]
fn unresolved_export_monomorphism_is_an_error() {
    // id2's type never gets pinned; exporting it with a free uvar is an
    // error at the unit boundary.
    let bad = compile(
        "structure A = struct
           fun mkid () = fn x => x
           val id2 = mkid ()
         end",
        &ImportEnv::empty(),
    );
    assert!(bad.unwrap_err().contains("unresolved type variable"));
}

#[test]
fn cross_unit_import_and_execution() {
    let a = compile_ok(
        "structure A = struct val x = 20 fun double n = n * 2 end",
        &ImportEnv::empty(),
    );
    let a_val = execute(&a.code, &[]).unwrap();
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("a"),
            exports: a.exports.clone(),
        }],
        shadowing: false,
    };
    let b = compile_ok(
        "structure B = struct val y = A.double A.x + 2 end",
        &imports,
    );
    let b_val = execute(&b.code, &[a_val]).unwrap();
    assert_eq!(member(&b, &b_val, "B", "y"), Value::Int(42));
}

#[test]
fn cross_unit_functor_application() {
    let lib = compile_ok(
        "signature NUM = sig val n : int end
         functor AddOne (X : NUM) = struct val n = X.n + 1 end",
        &ImportEnv::empty(),
    );
    let lib_val = execute(&lib.code, &[]).unwrap();
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("lib"),
            exports: lib.exports.clone(),
        }],
        shadowing: false,
    };
    let client = compile_ok(
        "structure Base : NUM = struct val n = 41 end
         structure Inc = AddOne(Base)
         structure Out = struct val result = Inc.n end",
        &imports,
    );
    let v = execute(&client.code, &[lib_val]).unwrap();
    assert_eq!(member(&client, &v, "Out", "result"), Value::Int(42));
}

#[test]
fn cross_unit_datatype_sharing() {
    let a = compile_ok(
        "structure Shape = struct
           datatype shape = Circle of int | Square of int
           fun area (Circle r) = 3 * r * r
             | area (Square s) = s * s
         end",
        &ImportEnv::empty(),
    );
    let a_val = execute(&a.code, &[]).unwrap();
    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("shape"),
            exports: a.exports.clone(),
        }],
        shadowing: false,
    };
    let b = compile_ok(
        "structure Use = struct
           val c = Shape.area (Shape.Circle 2)
           val s = Shape.area (Shape.Square 3)
         end",
        &imports,
    );
    let v = execute(&b.code, &[a_val]).unwrap();
    assert_eq!(member(&b, &v, "Use", "c"), Value::Int(12));
    assert_eq!(member(&b, &v, "Use", "s"), Value::Int(9));
}

#[test]
fn ambiguous_import_is_an_error() {
    let mk = |src| {
        let u = compile_ok(src, &ImportEnv::empty());
        u.exports.clone()
    };
    let e1: Arc<Bindings> = mk("structure X = struct val a = 1 end");
    let e2: Arc<Bindings> = mk("structure X = struct val a = 2 end");
    let imports = ImportEnv {
        units: vec![
            ImportedUnit {
                name: Symbol::intern("u1"),
                exports: e1,
            },
            ImportedUnit {
                name: Symbol::intern("u2"),
                exports: e2,
            },
        ],
        shadowing: false,
    };
    let bad = compile("structure B = struct val y = X.a end", &imports);
    assert!(bad.unwrap_err().contains("more than one"));
}

#[test]
fn shadowing_within_a_structure() {
    let (unit, v) = run("structure A = struct
           val x = 1
           val x = x + 1
           val x = x * 10
         end");
    assert_eq!(member(&unit, &v, "A", "x"), Value::Int(20));
}

#[test]
fn functor_body_uses_param_substructure() {
    let (unit, v) = run(
        "signature HAS = sig structure Inner : sig val n : int end end
         functor F (X : HAS) = struct val m = X.Inner.n + 1 end
         structure Arg : HAS = struct
           structure Inner = struct val n = 9 end
         end
         structure R = F(Arg)
         structure Out = struct val result = R.m end",
    );
    assert_eq!(member(&unit, &v, "Out", "result"), Value::Int(10));
}

#[test]
fn type_abbreviations() {
    compile_ok(
        "structure A = struct
           type point = int * int
           fun fst ((x, _) : point) = x
           val p : point = (3, 4)
           val x = fst p + 1
         end",
        &ImportEnv::empty(),
    );
}

#[test]
fn parametric_type_abbreviation() {
    compile_ok(
        "structure A = struct
           type 'a pair = 'a * 'a
           fun dup (x : int) : int pair = (x, x)
         end",
        &ImportEnv::empty(),
    );
}

#[test]
fn handle_uncaught_propagates() {
    let unit = compile_ok(
        "structure A = struct
           exception Boom
           val x : int = raise Boom
         end",
        &ImportEnv::empty(),
    );
    let err = execute(&unit.code, &[]).unwrap_err();
    assert!(err.to_string().contains("Boom"), "{err}");
}

#[test]
fn str_let_scoping() {
    let (unit, v) = run("structure A = let
           structure H = struct val x = 21 end
         in
           struct val y = H.x * 2 end
         end");
    assert_eq!(member(&unit, &v, "A", "y"), Value::Int(42));
}

#[test]
fn option_pervasives() {
    let (unit, v) = run("structure A = struct
           fun fromOpt (SOME x) = x
             | fromOpt NONE = 0
           val a = fromOpt (SOME 5)
           val b = fromOpt NONE
         end");
    assert_eq!(member(&unit, &v, "A", "a"), Value::Int(5));
    assert_eq!(member(&unit, &v, "A", "b"), Value::Int(0));
}

#[test]
fn string_operations() {
    let (unit, v) = run(r#"structure S = struct
             val hello = "hello" ^ " " ^ "world"
             val cmp = "abc" < "abd"
           end"#);
    assert_eq!(
        member(&unit, &v, "S", "hello"),
        Value::Str("hello world".into())
    );
    assert_eq!(member(&unit, &v, "S", "cmp"), Value::bool(true));
}

#[test]
fn higher_order_functions() {
    let (unit, v) = run("structure H = struct
           fun compose f g = fn x => f (g x)
           fun twice f = compose f f
           val r = twice (fn x => x * 3) 2
         end");
    assert_eq!(member(&unit, &v, "H", "r"), Value::Int(18));
}

#[test]
fn list_append_and_patterns() {
    let (unit, v) = run("structure L = struct
           fun rev [] = []
             | rev (x :: xs) = rev xs @ [x]
           val r = rev [1, 2, 3]
         end");
    assert_eq!(
        member(&unit, &v, "L", "r"),
        Value::list(vec![Value::Int(3), Value::Int(2), Value::Int(1)])
    );
}

#[test]
fn opaque_functor_result_hides() {
    let bad = compile(
        "signature S = sig type t val mk : int -> t end
         functor F (X : sig end) :> S = struct type t = int fun mk x = x end
         structure E = struct end
         structure A = F(E)
         structure B = struct val y = A.mk 1 + 1 end",
        &ImportEnv::empty(),
    );
    assert!(bad.is_err(), "opaque result must hide t");
}

#[test]
fn datatype_spec_in_signature_stays_transparent() {
    let (unit, v) = run("signature S = sig
           datatype color = Red | Green | Blue
           val favorite : color
         end
         structure C : S = struct
           datatype color = Red | Green | Blue
           val favorite = Green
         end
         structure U = struct
           val isGreen = case C.favorite of C.Green => true | _ => false
         end");
    assert_eq!(member(&unit, &v, "U", "isGreen"), Value::bool(true));
}

#[test]
fn as_patterns_bind_the_whole_value() {
    let (unit, v) = run("structure A = struct
           fun firstTwo (l as (x :: _)) = (x, l)
             | firstTwo [] = (0, [])
           val (hd1, whole) = firstTwo [7, 8, 9]
           val len = let fun go acc [] = acc | go acc (_ :: t) = go (acc + 1) t
                     in go 0 whole end
         end");
    assert_eq!(member(&unit, &v, "A", "hd1"), Value::Int(7));
    assert_eq!(member(&unit, &v, "A", "len"), Value::Int(3));
}

#[test]
fn as_pattern_duplicate_name_is_rejected() {
    let bad = compile(
        "structure A = struct fun f (x as (x :: _)) = x end",
        &ImportEnv::empty(),
    );
    assert!(bad.unwrap_err().contains("duplicate variable"), "dup");
}

#[test]
fn where_type_on_a_nested_path() {
    compile_ok(
        "signature WRAP = sig
           structure Inner : sig type t val mk : int -> t end
         end
         structure W : WRAP where type Inner.t = int = struct
           structure Inner = struct type t = int fun mk x = x end
         end
         structure Use = struct val v = W.Inner.mk 3 + 1 end",
        &ImportEnv::empty(),
    );
    // Without the `where type`, Inner.t stays abstract in the view.
    let bad = compile(
        "signature WRAP = sig
           structure Inner : sig type t val mk : int -> t end
         end
         structure W : WRAP = struct
           structure Inner = struct type t = int fun mk x = x end
         end
         structure Use = struct val v = W.Inner.mk 3 + 1 end",
        &ImportEnv::empty(),
    );
    // Transparent ascription realizes Inner.t to int, so this still
    // compiles; opaque must not.
    assert!(bad.is_ok());
    let opaque = compile(
        "signature WRAP = sig
           structure Inner : sig type t val mk : int -> t end
         end
         structure W :> WRAP = struct
           structure Inner = struct type t = int fun mk x = x end
         end
         structure Use = struct val v = W.Inner.mk 3 + 1 end",
        &ImportEnv::empty(),
    );
    assert!(opaque.is_err(), "opaque nested type must stay abstract");
}

#[test]
fn two_functors_sharing_one_named_signature() {
    let (unit, v) = run("signature CELL = sig val n : int end
         functor AddOne (C : CELL) = struct val n = C.n + 1 end
         functor Double (C : CELL) = struct val n = C.n * 2 end
         structure Base : CELL = struct val n = 10 end
         structure A = AddOne(Base)
         structure D = Double(Base)
         structure Chain = Double(AddOne(Base))
         structure Out = struct val a = A.n val d = D.n val c = Chain.n end");
    assert_eq!(member(&unit, &v, "Out", "a"), Value::Int(11));
    assert_eq!(member(&unit, &v, "Out", "d"), Value::Int(20));
    assert_eq!(member(&unit, &v, "Out", "c"), Value::Int(22));
}

#[test]
fn functor_result_used_as_functor_argument() {
    // Nested application in one expression: F(G(X)).
    let (unit, v) = run("signature S = sig val v : int end
         functor Inc (X : S) = struct val v = X.v + 1 end
         structure Zero : S = struct val v = 0 end
         structure Three = Inc(Inc(Inc(Zero)))
         structure Out = struct val r = Three.v end");
    assert_eq!(member(&unit, &v, "Out", "r"), Value::Int(3));
}

#[test]
fn include_shared_base_signature() {
    compile_ok(
        "signature BASE = sig type t val zero : t end
         signature RING = sig include BASE val add : t * t -> t end
         signature FIELD = sig include BASE val mul : t * t -> t end
         structure IntRing : RING = struct
           type t = int val zero = 0 fun add (a, b) = a + b
         end
         structure IntField : FIELD = struct
           type t = int val zero = 0 fun mul (a, b) = a * b
         end",
        &ImportEnv::empty(),
    );
}

#[test]
fn opaque_ascription_inside_functor_body() {
    let bad = compile(
        "functor Make (X : sig end) = struct
           structure Hidden :> sig type t val mk : int -> t end = struct
             type t = int
             fun mk x = x
           end
           val leak = Hidden.mk 1 + 1
         end",
        &ImportEnv::empty(),
    );
    assert!(bad.is_err(), "opacity holds inside functor bodies too");
}
