//! Error-reporting coverage: every class of elaboration failure produces
//! a useful message naming the offending entity.

use smlsc_statics::elab::{elaborate_unit, ImportEnv};

fn err(src: &str) -> String {
    let ast = smlsc_syntax::parse_unit(src).unwrap_or_else(|e| panic!("parse: {e}"));
    match elaborate_unit(&ast, &ImportEnv::empty()) {
        Ok(_) => panic!("expected failure:\n{src}"),
        Err(e) => e.to_string(),
    }
}

#[test]
fn unbound_variable() {
    let m = err("structure A = struct val x = missing end");
    assert!(m.contains("unbound variable `missing`"), "{m}");
}

#[test]
fn unbound_type_constructor() {
    let m = err("structure A = struct val f = fn (x : widget) => x end");
    assert!(m.contains("unbound type constructor `widget`"), "{m}");
}

#[test]
fn unbound_structure() {
    let m = err("structure A = struct val x = Ghost.y end");
    assert!(m.contains("unbound structure `Ghost`"), "{m}");
}

#[test]
fn unbound_signature() {
    let m = err("structure A : MISSING_SIG = struct end");
    assert!(m.contains("unbound signature `MISSING_SIG`"), "{m}");
}

#[test]
fn unbound_functor() {
    let m = err("structure A = Ghost(struct end)");
    assert!(m.contains("unbound functor `Ghost`"), "{m}");
}

#[test]
fn tycon_arity_mismatch() {
    let m = err(
        "structure A = struct type t = int list list val x = fn (y : (int, string) list) => y end",
    );
    assert!(m.contains("expects 1 argument"), "{m}");
}

#[test]
fn unbound_tyvar_in_datatype() {
    let m = err("structure A = struct datatype t = C of 'a end");
    assert!(m.contains("unbound type variable `'a`"), "{m}");
}

#[test]
fn nullary_constructor_applied_in_pattern() {
    let m = err("structure A = struct
           datatype t = C
           fun f (C x) = x
         end");
    assert!(m.contains("takes no argument"), "{m}");
}

#[test]
fn unary_constructor_bare_in_pattern() {
    let m = err("structure A = struct
           datatype t = C of int
           fun f C = 1
         end");
    assert!(m.contains("expects an argument"), "{m}");
}

#[test]
fn duplicate_pattern_variable() {
    let m = err("structure A = struct fun f (x, x) = x end");
    assert!(m.contains("duplicate variable `x`"), "{m}");
}

#[test]
fn qualified_name_cannot_bind() {
    let m = err("structure A = struct val B.x = 1 end");
    assert!(
        m.contains("cannot bind") || m.contains("not a constructor"),
        "{m}"
    );
}

#[test]
fn if_branch_mismatch() {
    let m = err(r#"structure A = struct val x = if true then 1 else "s" end"#);
    assert!(m.contains("cannot unify"), "{m}");
}

#[test]
fn condition_must_be_bool() {
    let m = err("structure A = struct val x = if 1 then 2 else 3 end");
    assert!(m.contains("cannot unify"), "{m}");
}

#[test]
fn andalso_needs_bools() {
    let m = err("structure A = struct val x = 1 andalso true end");
    assert!(m.contains("cannot unify"), "{m}");
}

#[test]
fn comparison_needs_int_or_string() {
    let m = err("structure A = struct val x = (1, 2) < (3, 4) end");
    assert!(m.contains("comparison requires int or string"), "{m}");
}

#[test]
fn raise_requires_exn() {
    let m = err("structure A = struct val x : int = raise 5 end");
    assert!(m.contains("cannot unify"), "{m}");
}

#[test]
fn where_type_on_manifest_type_is_rejected() {
    let m = err("signature S = sig type t = int end
         structure A : S where type t = string = struct type t = int end");
    assert!(m.contains("not flexible"), "{m}");
}

#[test]
fn where_type_arity_mismatch() {
    let m = err("signature S = sig type 'a t end
         structure A : S where type t = int = struct type 'a t = int end");
    assert!(m.contains("arity mismatch"), "{m}");
}

#[test]
fn functor_argument_mismatch_names_the_functor() {
    let m = err("signature S = sig val n : int end
         functor F (X : S) = struct end
         structure Bad = F(struct val wrong = 1 end)");
    assert!(m.contains("functor `F`"), "{m}");
    assert!(m.contains("missing value `n`"), "{m}");
}

#[test]
fn signature_mismatch_names_nested_paths() {
    let m = err(
        "structure A : sig structure Inner : sig val deep : int end end =
           struct structure Inner = struct end end",
    );
    assert!(m.contains("Inner.deep"), "{m}");
}

#[test]
fn missing_type_in_signature_match() {
    let m = err("structure A : sig type t end = struct end");
    assert!(m.contains("missing type `t`"), "{m}");
}

#[test]
fn datatype_spec_requires_same_constructors() {
    let m = err("signature S = sig datatype d = X | Y end
         structure A : S = struct datatype d = X | Z end");
    assert!(m.contains("different constructors"), "{m}");
}

#[test]
fn datatype_spec_requires_a_datatype() {
    let m = err("signature S = sig datatype d = X end
         structure A : S = struct type d = int val X = 1 end");
    assert!(m.contains("must be a datatype"), "{m}");
}

#[test]
fn exception_spec_requires_exception() {
    let m = err("signature S = sig exception E end
         structure A : S = struct val E = 1 end");
    assert!(m.contains("must be an exception"), "{m}");
}

#[test]
fn constructor_spec_requires_constructor() {
    let m = err("signature S = sig datatype d = C end
         structure Impl = struct datatype d = C end
         structure A : S = struct type d = int val C = 1 end");
    assert!(
        m.contains("must be a datatype") || m.contains("constructor"),
        "{m}"
    );
}

#[test]
fn errors_carry_locations() {
    let ast = smlsc_syntax::parse_unit("structure A = struct\n  val x = 1\n  val y = missing\nend")
        .unwrap();
    let e = elaborate_unit(&ast, &ImportEnv::empty()).unwrap_err();
    assert!(e.loc.is_some(), "{e}");
}

#[test]
fn arity_of_applied_structure_member() {
    let m = err("structure A = struct type t = int end
         structure B = struct val f = fn (x : int A.t) => x end");
    assert!(m.contains("expects 0 argument"), "{m}");
}
