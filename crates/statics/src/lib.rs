//! Static semantics for the `smlsc` mini-SML compiler.
//!
//! Implements everything the paper's compilation manager presupposes of
//! the frontend's static half:
//!
//! * [`types`] — stamped type constructors, Hindley–Milner inference with
//!   levels and the value restriction;
//! * [`mod@env`] — static environments ([`env::Bindings`]) with the
//!   positional runtime-layout discipline shared with the translator;
//! * [`pervasive`] — the initial basis (`int`, `bool`, `list`, …) whose
//!   entities carry preset persistent pids;
//! * [`realize`] — template realization (one mechanism for signature
//!   instantiation, matching views, `where type`, and generative functor
//!   application);
//! * [`sigmatch`] — signature matching, transparent and opaque;
//! * [`elab`] — elaboration of whole compilation units to export
//!   bindings + runtime IR (`compile`'s static half, §3 of the paper).
//!
//! # Examples
//!
//! Figure 1 of the paper, end to end at the statics level:
//!
//! ```
//! use smlsc_statics::elab::{elaborate_unit, ImportEnv};
//! let src = r#"
//!     signature PARTIAL_ORDER = sig
//!       type elem
//!       val less : elem * elem -> bool
//!     end
//!     structure Factors : PARTIAL_ORDER = struct
//!       type elem = int
//!       fun less (i, j) = (j mod i) = 0
//!     end
//! "#;
//! let ast = smlsc_syntax::parse_unit(src).unwrap();
//! let unit = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
//! assert!(unit.exports.str(smlsc_ids::Symbol::intern("Factors")).is_some());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod elab;
pub mod env;
pub mod error;
pub mod matchcomp;
pub mod pervasive;
pub mod realize;
pub mod sigmatch;
pub mod types;

pub use elab::{elaborate_unit, ElabUnit, ImportEnv, ImportedUnit};
pub use env::{Bindings, FunctorEnv, SignatureEnv, StructureEnv, ValBind, ValKind};
pub use error::{ElabError, ElabWarning};
pub use types::{Scheme, Tycon, TyconDef, Type};
