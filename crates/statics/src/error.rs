//! Elaboration errors.

use std::fmt;

use smlsc_syntax::Loc;

/// An error detected during elaboration (type checking, signature
/// matching, module resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabError {
    /// What went wrong.
    pub message: String,
    /// Best-effort source location.
    pub loc: Option<Loc>,
}

impl ElabError {
    /// Constructs an error without a location.
    pub fn new(message: impl Into<String>) -> ElabError {
        ElabError {
            message: message.into(),
            loc: None,
        }
    }

    /// Attaches a location if none is present.
    pub fn at(mut self, loc: Loc) -> ElabError {
        self.loc.get_or_insert(loc);
        self
    }
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.loc {
            Some(loc) => write!(f, "error at {loc}: {}", self.message),
            None => write!(f, "error: {}", self.message),
        }
    }
}

impl std::error::Error for ElabError {}

/// A non-fatal diagnostic (match exhaustiveness/redundancy).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElabWarning {
    /// What to tell the user.
    pub message: String,
    /// Best-effort source location.
    pub loc: Option<Loc>,
}

impl fmt::Display for ElabWarning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.loc {
            Some(loc) => write!(f, "warning at {loc}: {}", self.message),
            None => write!(f, "warning: {}", self.message),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_with_and_without_loc() {
        let e = ElabError::new("bad");
        assert_eq!(e.to_string(), "error: bad");
        let e = e.at(Loc { line: 3, col: 7 });
        assert_eq!(e.to_string(), "error at 3:7: bad");
    }

    #[test]
    fn at_keeps_existing_loc() {
        let e = ElabError::new("x")
            .at(Loc { line: 1, col: 1 })
            .at(Loc { line: 9, col: 9 });
        assert_eq!(e.loc, Some(Loc { line: 1, col: 1 }));
    }
}
