//! Signature matching and instantiation.
//!
//! Matching a structure against a signature (§2) discovers a
//! *realization* — which actual tycon each flexible (bound) stamp of the
//! signature stands for — checks every specification, and produces the
//! constrained *view*.  Transparent ascription realizes the view to the
//! actual types (so clients still see `FSort.t = int`); opaque ascription
//! (`:>`) instead instantiates the signature freshly, hiding them.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use smlsc_ids::{Stamp, Symbol};

use crate::env::{Bindings, SignatureEnv, StructureEnv, ValKind};
use crate::error::ElabError;
use crate::realize::Realizer;
use crate::types::{unify, Scheme, Tycon, TyconDef, Type};

/// The result of a successful match.
#[derive(Debug)]
pub struct MatchOk {
    /// Realization of the signature's bound stamps.
    pub realization: HashMap<Stamp, Arc<Tycon>>,
    /// The constrained view of the structure (layout = template layout).
    pub view: Arc<StructureEnv>,
}

/// Instantiates a signature with fresh (skolem) tycons.
///
/// Returns the instance structure and the skolem stamps parallel to
/// `sig.bound`.  Used for functor parameters and opaque ascription.
pub fn instantiate(sig: &SignatureEnv) -> (Arc<StructureEnv>, Vec<Stamp>) {
    let mut r = Realizer::new(HashMap::new(), sig.lo, sig.hi);
    let inst = r.structure(&sig.body);
    let skolems = sig
        .bound
        .iter()
        .map(|s| {
            r.cloned_tycon(*s)
                .map(|tc| tc.stamp)
                // A bound stamp not reached during realization can only
                // come from a malformed template; keep the old stamp so
                // downstream lookups fail loudly rather than silently.
                .unwrap_or(*s)
        })
        .collect();
    (inst, skolems)
}

/// Matches `actual` against `sig`.
///
/// `opaque` selects `:>` semantics: the returned view's flexible types are
/// fresh abstractions instead of the actual realizations.
///
/// # Errors
///
/// Returns an [`ElabError`] naming the first missing or mismatched
/// component.
pub fn match_structure(
    actual: &Arc<StructureEnv>,
    sig: &Arc<SignatureEnv>,
    opaque: bool,
) -> Result<MatchOk, ElabError> {
    let bound: HashSet<Stamp> = sig.bound.iter().copied().collect();
    let mut realization = HashMap::new();
    discover(
        &sig.body.bindings,
        &actual.bindings,
        &bound,
        &mut realization,
        "",
    )?;

    // Realize the template with the discovered realization.
    let mut r = Realizer::new(realization.clone(), sig.lo, sig.hi);
    let view = r.structure(&sig.body);

    // Check every specification against the actual structure.
    check(&view.bindings, &actual.bindings, "")?;

    let view = if opaque {
        // Fresh abstraction: a brand-new instance of the signature.  The
        // runtime coercion is identical; only the types are hidden.
        let (inst, _) = instantiate(sig);
        inst
    } else {
        view
    };
    Ok(MatchOk { realization, view })
}

fn path_of(prefix: &str, name: Symbol) -> String {
    if prefix.is_empty() {
        name.to_string()
    } else {
        format!("{prefix}.{name}")
    }
}

/// Phase 1: walk template vs. actual, mapping flexible stamps to actual
/// tycons.
fn discover(
    template: &Bindings,
    actual: &Bindings,
    bound: &HashSet<Stamp>,
    realization: &mut HashMap<Stamp, Arc<Tycon>>,
    prefix: &str,
) -> Result<(), ElabError> {
    for (name, ttc) in &template.tycons {
        let Some(atc) = actual.tycon(*name) else {
            return Err(ElabError::new(format!(
                "signature mismatch: missing type `{}`",
                path_of(prefix, *name)
            )));
        };
        if bound.contains(&ttc.stamp) {
            if atc.arity != ttc.arity {
                return Err(ElabError::new(format!(
                    "signature mismatch: type `{}` has arity {}, spec requires {}",
                    path_of(prefix, *name),
                    atc.arity,
                    ttc.arity
                )));
            }
            if let TyconDef::Datatype(tinfo) = &*ttc.def.read() {
                // A datatype spec additionally pins the constructors.
                let Some(ainfo) = atc.datatype_info() else {
                    return Err(ElabError::new(format!(
                        "signature mismatch: `{}` must be a datatype",
                        path_of(prefix, *name)
                    )));
                };
                if tinfo.cons.len() != ainfo.cons.len()
                    || tinfo
                        .cons
                        .iter()
                        .zip(&ainfo.cons)
                        .any(|(t, a)| t.name != a.name || t.arg.is_some() != a.arg.is_some())
                {
                    return Err(ElabError::new(format!(
                        "signature mismatch: datatype `{}` has different constructors",
                        path_of(prefix, *name)
                    )));
                }
            }
            realization.insert(ttc.stamp, atc.clone());
        }
    }
    for (name, tstr) in &template.strs {
        let Some(astr) = actual.str(*name) else {
            return Err(ElabError::new(format!(
                "signature mismatch: missing structure `{}`",
                path_of(prefix, *name)
            )));
        };
        discover(
            &tstr.bindings,
            &astr.bindings,
            bound,
            realization,
            &path_of(prefix, *name),
        )?;
    }
    Ok(())
}

/// Phase 2: the realized view's specs must hold of the actual structure.
fn check(view: &Bindings, actual: &Bindings, prefix: &str) -> Result<(), ElabError> {
    // Manifest types must agree (flexible ones were realized *to* the
    // actual tycons, so checking is vacuous for them).
    for (name, vtc) in &view.tycons {
        let atc = actual.tycon(*name).expect("checked in discover");
        if !tycon_equal(vtc, atc) {
            return Err(ElabError::new(format!(
                "signature mismatch: type `{}` does not match its specification",
                path_of(prefix, *name)
            )));
        }
    }
    for (name, vspec) in &view.vals {
        let Some(avb) = actual.val(*name) else {
            return Err(ElabError::new(format!(
                "signature mismatch: missing value `{}`",
                path_of(prefix, *name)
            )));
        };
        match (&vspec.kind, &avb.kind) {
            (ValKind::Con { tag: tspec, .. }, ValKind::Con { tag: ta, .. }) => {
                if tspec.tag != ta.tag || tspec.has_arg != ta.has_arg {
                    return Err(ElabError::new(format!(
                        "signature mismatch: constructor `{}` differs",
                        path_of(prefix, *name)
                    )));
                }
            }
            (ValKind::Con { .. }, _) => {
                return Err(ElabError::new(format!(
                    "signature mismatch: `{}` must be a constructor",
                    path_of(prefix, *name)
                )));
            }
            (ValKind::Exn, ValKind::Exn) => {}
            (ValKind::Exn, _) => {
                return Err(ElabError::new(format!(
                    "signature mismatch: `{}` must be an exception",
                    path_of(prefix, *name)
                )));
            }
            (ValKind::Plain | ValKind::Prim(_), _) => {}
        }
        if !scheme_matches(&avb.scheme, &vspec.scheme) {
            return Err(ElabError::new(format!(
                "signature mismatch: value `{}` has type {}, spec requires {}",
                path_of(prefix, *name),
                crate::types::format_scheme(&avb.scheme),
                crate::types::format_scheme(&vspec.scheme),
            )));
        }
    }
    for (name, vstr) in &view.strs {
        let astr = actual.str(*name).expect("checked in discover");
        check(&vstr.bindings, &astr.bindings, &path_of(prefix, *name))?;
    }
    Ok(())
}

/// Type-constructor equality up to alias expansion, checked by applying
/// both to the same rigid parameters.
pub fn tycon_equal(a: &Arc<Tycon>, b: &Arc<Tycon>) -> bool {
    if a.stamp == b.stamp {
        return true;
    }
    if a.arity != b.arity {
        return false;
    }
    let params: Vec<Type> = (0..a.arity)
        .map(|_| {
            Type::Con(
                Tycon::new(
                    smlsc_ids::StampGenerator::global_fresh(),
                    Symbol::intern("?rigid"),
                    0,
                    TyconDef::Abstract,
                ),
                vec![],
            )
        })
        .collect();
    let ta = Type::Con(a.clone(), params.clone());
    let tb = Type::Con(b.clone(), params);
    unify(&ta, &tb).is_ok()
}

/// `actual` is at least as general as `spec`: instantiating `spec` with
/// rigid skolems must unify with a fresh instance of `actual`.
pub fn scheme_matches(actual: &Scheme, spec: &Scheme) -> bool {
    let skolems: Vec<Type> = (0..spec.arity)
        .map(|i| {
            Type::Con(
                Tycon::new(
                    smlsc_ids::StampGenerator::global_fresh(),
                    Symbol::intern(&format!("?sk{i}")),
                    0,
                    TyconDef::Abstract,
                ),
                vec![],
            )
        })
        .collect();
    let spec_ty = spec.instantiate_with(&skolems);
    let actual_ty = actual.instantiate(u32::MAX);
    unify(&actual_ty, &spec_ty).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pervasive::pervasives;

    #[test]
    fn scheme_generality() {
        let p = pervasives();
        // actual: ∀a. a -> a ; spec: int -> int  — matches.
        let id = Scheme {
            arity: 1,
            body: Type::Arrow(Box::new(Type::Param(0)), Box::new(Type::Param(0))),
        };
        let mono = Scheme::mono(Type::Arrow(Box::new(p.int_ty()), Box::new(p.int_ty())));
        assert!(scheme_matches(&id, &mono));
        // And not the other way around.
        assert!(!scheme_matches(&mono, &id));
    }

    #[test]
    fn scheme_same_poly_matches() {
        let id = || Scheme {
            arity: 1,
            body: Type::Arrow(Box::new(Type::Param(0)), Box::new(Type::Param(0))),
        };
        assert!(scheme_matches(&id(), &id()));
    }

    #[test]
    fn tycon_equality_sees_through_aliases() {
        let p = pervasives();
        let alias = Tycon::new(
            smlsc_ids::StampGenerator::global_fresh(),
            Symbol::intern("t"),
            0,
            TyconDef::Alias(p.int_ty()),
        );
        assert!(tycon_equal(&alias, &p.int));
        assert!(!tycon_equal(&alias, &p.string));
    }

    #[test]
    fn parametric_alias_equality() {
        let p = pervasives();
        // type 'a t = 'a list  vs  list
        let alias = Tycon::new(
            smlsc_ids::StampGenerator::global_fresh(),
            Symbol::intern("t"),
            1,
            TyconDef::Alias(Type::Con(p.list.clone(), vec![Type::Param(0)])),
        );
        assert!(tycon_equal(&alias, &p.list));
    }
}
