//! Match analysis: exhaustiveness and redundancy.
//!
//! A usefulness check (in the style of Maranget) over the
//! position-resolved pattern language: a pattern vector is *useful* with
//! respect to a matrix if some value matches it and no earlier row.  A
//! match is inexhaustive iff the all-wildcards vector is still useful
//! after every rule; a rule is redundant iff it is not useful with
//! respect to the rules before it.
//!
//! The elaborator runs this on every `case`, `fn`, and `fun` match and on
//! refutable `val` bindings, producing warnings (never errors — SML
//! semantics raise `Match`/`Bind` at runtime, which the interpreter
//! implements).  `handle` matches are exempt: falling through re-raises
//! by design.

use smlsc_dynamics::ir::{ConTag, IrPat, IrRule};

/// The result of analyzing one match.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MatchAnalysis {
    /// The match does not cover every value of its type.
    pub inexhaustive: bool,
    /// Indices of rules that can never fire.
    pub redundant: Vec<usize>,
}

/// Analyzes a match.
pub fn analyze_match(rules: &[IrRule]) -> MatchAnalysis {
    let mut analysis = MatchAnalysis::default();
    let mut matrix: Vec<Vec<IrPat>> = Vec::new();
    for (i, r) in rules.iter().enumerate() {
        let row = vec![r.pat.clone()];
        if !useful(&matrix, &row) {
            analysis.redundant.push(i);
        }
        matrix.push(row);
    }
    analysis.inexhaustive = useful(&matrix, &[IrPat::Wild]);
    analysis
}

/// True when `pat` matches every value of its type (so a `val` binding
/// with it cannot raise `Bind`).
pub fn irrefutable(pat: &IrPat) -> bool {
    !useful(&[vec![pat.clone()]], &[IrPat::Wild])
}

/// The head constructor cases a pattern column can discriminate on.
#[derive(Debug, Clone, PartialEq)]
enum Head {
    /// A datatype constructor.
    Con(ConTag),
    /// An integer literal.
    Int(i64),
    /// A string literal.
    Str(String),
    /// The unit value (complete by itself).
    Unit,
    /// A tuple of the given width (complete by itself).
    Tuple(usize),
    /// An exception constructor (identity only known at runtime; the
    /// space is open, like literals).
    Exn(usize),
}

impl Head {
    /// Sub-pattern count after specialization.
    fn arity(&self) -> usize {
        match self {
            Head::Con(tag) => usize::from(tag.has_arg),
            Head::Int(_) | Head::Str(_) | Head::Unit => 0,
            Head::Tuple(n) => *n,
            Head::Exn(args) => *args,
        }
    }
}

fn head_of(pat: &IrPat) -> Option<(Head, Vec<IrPat>)> {
    match pat {
        IrPat::Wild | IrPat::Var(_) => None,
        // Layering is transparent for coverage.
        IrPat::As(_, inner) => head_of(inner),
        IrPat::Int(n) => Some((Head::Int(*n), vec![])),
        IrPat::Str(s) => Some((Head::Str(s.clone()), vec![])),
        IrPat::Unit => Some((Head::Unit, vec![])),
        IrPat::Tuple(ps) => Some((Head::Tuple(ps.len()), ps.clone())),
        IrPat::Con(tag, arg) => {
            Some((Head::Con(*tag), arg.iter().map(|p| (**p).clone()).collect()))
        }
        IrPat::Exn(_, arg) => Some((
            Head::Exn(arg.iter().len()),
            arg.iter().map(|p| (**p).clone()).collect(),
        )),
    }
}

/// Is `row` useful with respect to `matrix` (can some value match `row`
/// and none of the matrix rows)?
fn useful(matrix: &[Vec<IrPat>], row: &[IrPat]) -> bool {
    if row.is_empty() {
        return matrix.is_empty();
    }
    let first = &row[0];
    match head_of(first) {
        Some((head, args)) => {
            let spec = specialize(matrix, &head);
            let mut new_row = args;
            new_row.extend_from_slice(&row[1..]);
            useful(&spec, &new_row)
        }
        None => {
            // Wildcard: if the matrix's first-column heads form a complete
            // signature, the wildcard is useful iff it is useful under
            // some specialization; otherwise check the default matrix.
            let heads = collect_heads(matrix);
            if signature_complete(&heads) {
                heads.into_iter().any(|h| {
                    let arity = h.arity();
                    let spec = specialize(matrix, &h);
                    let mut new_row = vec![IrPat::Wild; arity];
                    new_row.extend_from_slice(&row[1..]);
                    useful(&spec, &new_row)
                })
            } else {
                let default = default_matrix(matrix);
                useful(&default, &row[1..])
            }
        }
    }
}

fn collect_heads(matrix: &[Vec<IrPat>]) -> Vec<Head> {
    let mut out: Vec<Head> = Vec::new();
    for r in matrix {
        if let Some((h, _)) = head_of(&r[0]) {
            if !out.contains(&h) {
                out.push(h);
            }
        }
    }
    out
}

/// True when the observed heads cover the whole type.
fn signature_complete(heads: &[Head]) -> bool {
    match heads.first() {
        None => false,
        Some(Head::Unit) | Some(Head::Tuple(_)) => true, // singleton signatures
        Some(Head::Int(_)) | Some(Head::Str(_)) | Some(Head::Exn(_)) => false, // open domains
        Some(Head::Con(tag)) => {
            let span = tag.span as usize;
            let mut seen = vec![false; span];
            for h in heads {
                if let Head::Con(t) = h {
                    if (t.tag as usize) < span {
                        seen[t.tag as usize] = true;
                    }
                }
            }
            seen.iter().all(|b| *b)
        }
    }
}

/// Specializes the matrix to rows whose first column can match `head`.
fn specialize(matrix: &[Vec<IrPat>], head: &Head) -> Vec<Vec<IrPat>> {
    let arity = head.arity();
    let mut out = Vec::new();
    for r in matrix {
        match head_of(&r[0]) {
            None => {
                // Wildcard row matches any head.
                let mut row = vec![IrPat::Wild; arity];
                row.extend_from_slice(&r[1..]);
                out.push(row);
            }
            Some((h, args)) => {
                let compatible = match (&h, head) {
                    (Head::Con(a), Head::Con(b)) => a.tag == b.tag,
                    (Head::Int(a), Head::Int(b)) => a == b,
                    (Head::Str(a), Head::Str(b)) => a == b,
                    (Head::Unit, Head::Unit) => true,
                    (Head::Tuple(a), Head::Tuple(b)) => a == b,
                    // Exception identities are runtime values; two
                    // exception patterns may or may not denote the same
                    // constructor, so conservatively treat them as
                    // overlapping (affects redundancy only, and only to
                    // stay quiet).
                    (Head::Exn(_), Head::Exn(_)) => true,
                    _ => false,
                };
                if compatible {
                    let mut row = args;
                    while row.len() < arity {
                        row.push(IrPat::Wild);
                    }
                    row.truncate(arity);
                    row.extend_from_slice(&r[1..]);
                    out.push(row);
                }
            }
        }
    }
    out
}

/// Rows whose first column is a wildcard, with it removed.
fn default_matrix(matrix: &[Vec<IrPat>]) -> Vec<Vec<IrPat>> {
    matrix
        .iter()
        .filter(|r| head_of(&r[0]).is_none())
        .map(|r| r[1..].to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use smlsc_dynamics::ir::Ir;
    use smlsc_ids::Symbol;

    fn tag(t: u32, span: u32, has_arg: bool) -> ConTag {
        ConTag {
            tag: t,
            span,
            has_arg,
            name: Symbol::intern("c"),
        }
    }

    fn rule(pat: IrPat) -> IrRule {
        IrRule {
            pat,
            body: Ir::Unit,
        }
    }

    #[test]
    fn wildcard_is_exhaustive() {
        let a = analyze_match(&[rule(IrPat::Wild)]);
        assert!(!a.inexhaustive);
        assert!(a.redundant.is_empty());
    }

    #[test]
    fn variable_is_irrefutable() {
        assert!(irrefutable(&IrPat::Var(0)));
        assert!(!irrefutable(&IrPat::Int(3)));
        assert!(irrefutable(&IrPat::Tuple(vec![IrPat::Var(0), IrPat::Wild])));
    }

    #[test]
    fn missing_constructor_is_inexhaustive() {
        // datatype with 3 constructors; only 2 covered.
        let a = analyze_match(&[
            rule(IrPat::Con(tag(0, 3, false), None)),
            rule(IrPat::Con(tag(1, 3, false), None)),
        ]);
        assert!(a.inexhaustive);
    }

    #[test]
    fn all_constructors_are_exhaustive() {
        let a = analyze_match(&[
            rule(IrPat::Con(tag(0, 2, false), None)),
            rule(IrPat::Con(tag(1, 2, true), Some(Box::new(IrPat::Wild)))),
        ]);
        assert!(!a.inexhaustive);
        assert!(a.redundant.is_empty());
    }

    #[test]
    fn duplicate_rule_is_redundant() {
        let a = analyze_match(&[
            rule(IrPat::Con(tag(0, 2, false), None)),
            rule(IrPat::Con(tag(0, 2, false), None)),
            rule(IrPat::Con(tag(1, 2, false), None)),
        ]);
        assert_eq!(a.redundant, vec![1]);
        assert!(!a.inexhaustive);
    }

    #[test]
    fn rule_after_wildcard_is_redundant() {
        let a = analyze_match(&[rule(IrPat::Wild), rule(IrPat::Int(3))]);
        assert_eq!(a.redundant, vec![1]);
    }

    #[test]
    fn integer_literals_never_exhaust() {
        let a = analyze_match(&[rule(IrPat::Int(0)), rule(IrPat::Int(1))]);
        assert!(a.inexhaustive);
    }

    #[test]
    fn tuples_of_exhaustive_columns_are_exhaustive() {
        // (bool, bool) covered by (_, false), (true, true), (false, true)
        let t = |b: bool| IrPat::Con(tag(u32::from(b), 2, false), None);
        let a = analyze_match(&[
            rule(IrPat::Tuple(vec![IrPat::Wild, t(false)])),
            rule(IrPat::Tuple(vec![t(true), t(true)])),
            rule(IrPat::Tuple(vec![t(false), t(true)])),
        ]);
        assert!(!a.inexhaustive);
        assert!(a.redundant.is_empty());
    }

    #[test]
    fn tuple_with_hole_is_inexhaustive() {
        let t = |b: bool| IrPat::Con(tag(u32::from(b), 2, false), None);
        let a = analyze_match(&[
            rule(IrPat::Tuple(vec![t(true), t(true)])),
            rule(IrPat::Tuple(vec![t(false), t(true)])),
        ]);
        assert!(a.inexhaustive, "missing (_, false)");
    }

    #[test]
    fn nested_list_patterns() {
        // [] | x :: _  over lists is exhaustive; [] | [x] is not.
        let nil = || IrPat::Con(tag(0, 2, false), None);
        let cons = |h: IrPat, t: IrPat| {
            IrPat::Con(tag(1, 2, true), Some(Box::new(IrPat::Tuple(vec![h, t]))))
        };
        let a = analyze_match(&[rule(nil()), rule(cons(IrPat::Var(0), IrPat::Wild))]);
        assert!(!a.inexhaustive);
        let a = analyze_match(&[rule(nil()), rule(cons(IrPat::Var(0), nil()))]);
        assert!(a.inexhaustive, "missing two-or-more element lists");
    }

    #[test]
    fn exception_patterns_stay_open() {
        // Matching on exceptions can never be exhaustive.
        let e = IrPat::Exn(Box::new(Ir::Local(0)), None);
        let a = analyze_match(&[rule(e)]);
        assert!(a.inexhaustive);
    }

    #[test]
    fn unit_pattern_is_exhaustive() {
        let a = analyze_match(&[rule(IrPat::Unit)]);
        assert!(!a.inexhaustive);
    }
}
