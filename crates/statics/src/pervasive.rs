//! The pervasive (initial) static environment.
//!
//! Primitive types (`int`, `string`, `unit`, `exn`) and the built-in
//! datatypes (`bool`, `list`, `option`) with their constructors.  Each
//! pervasive tycon's `entity_pid` is preset to a well-known digest so
//! interfaces that mention them hash identically in every process — they
//! are the "pids known to the bootstrap loader" of §7.
//!
//! Pervasives are a process-wide singleton: every compilation — on any
//! build-worker thread — shares the same instance, which is what makes
//! stamped type equality work across units (and across threads when the
//! IRM builds the project in parallel).

use std::sync::{Arc, OnceLock};

use smlsc_dynamics::ir::ConTag;
use smlsc_ids::{Pid, StampGenerator, Symbol};

use crate::env::{Bindings, ValBind, ValKind};
use crate::types::{ConDef, DatatypeInfo, Scheme, Tycon, TyconDef, Type};

/// Handles to every pervasive entity.
#[derive(Debug)]
pub struct Pervasives {
    /// `int`
    pub int: Arc<Tycon>,
    /// `string`
    pub string: Arc<Tycon>,
    /// `unit`
    pub unit: Arc<Tycon>,
    /// `exn`
    pub exn: Arc<Tycon>,
    /// `bool` (datatype `false | true`)
    pub bool: Arc<Tycon>,
    /// `'a list` (datatype `nil | ::`)
    pub list: Arc<Tycon>,
    /// `'a option` (datatype `NONE | SOME`)
    pub option: Arc<Tycon>,
    /// The initial environment layer.
    pub bindings: Bindings,
}

impl Pervasives {
    /// `int` as a type.
    pub fn int_ty(&self) -> Type {
        Type::Con(self.int.clone(), vec![])
    }

    /// `string` as a type.
    pub fn string_ty(&self) -> Type {
        Type::Con(self.string.clone(), vec![])
    }

    /// `unit` as a type.
    pub fn unit_ty(&self) -> Type {
        Type::Con(self.unit.clone(), vec![])
    }

    /// `exn` as a type.
    pub fn exn_ty(&self) -> Type {
        Type::Con(self.exn.clone(), vec![])
    }

    /// `bool` as a type.
    pub fn bool_ty(&self) -> Type {
        Type::Con(self.bool.clone(), vec![])
    }

    /// `t list` as a type.
    pub fn list_ty(&self, t: Type) -> Type {
        Type::Con(self.list.clone(), vec![t])
    }

    /// The runtime tag of `true` / `false`.
    pub fn bool_tag(&self, b: bool) -> ConTag {
        ConTag {
            tag: u32::from(b),
            span: 2,
            has_arg: false,
            name: Symbol::intern(if b { "true" } else { "false" }),
        }
    }

    /// The runtime tag of `nil`.
    pub fn nil_tag(&self) -> ConTag {
        ConTag {
            tag: 0,
            span: 2,
            has_arg: false,
            name: Symbol::intern("nil"),
        }
    }

    /// The runtime tag of `::`.
    pub fn cons_tag(&self) -> ConTag {
        ConTag {
            tag: 1,
            span: 2,
            has_arg: true,
            name: Symbol::intern("::"),
        }
    }

    /// Looks up a pervasive tycon by its preset pid, for the pickler's
    /// rehydration of primitive references.
    pub fn tycon_by_pid(&self, pid: Pid) -> Option<Arc<Tycon>> {
        [
            &self.int,
            &self.string,
            &self.unit,
            &self.exn,
            &self.bool,
            &self.list,
            &self.option,
        ]
        .into_iter()
        .find(|tc| tc.entity_pid.get() == Some(pid))
        .cloned()
    }
}

fn prim_pid(name: &str) -> Pid {
    Pid::of_bytes(format!("smlsc:pervasive:{name}").as_bytes())
}

fn prim(g: &mut StampGenerator, name: &str) -> Arc<Tycon> {
    let tc = Tycon::new(g.fresh(), Symbol::intern(name), 0, TyconDef::Prim);
    tc.entity_pid.set(Some(prim_pid(name)));
    tc
}

fn build() -> Arc<Pervasives> {
    let mut g = StampGenerator::new();
    let int = prim(&mut g, "int");
    let string = prim(&mut g, "string");
    let unit = prim(&mut g, "unit");
    let exn = prim(&mut g, "exn");

    // datatype bool = false | true
    let bool_tc = Tycon::new(
        g.fresh(),
        Symbol::intern("bool"),
        0,
        TyconDef::Datatype(DatatypeInfo {
            cons: vec![
                ConDef {
                    name: Symbol::intern("false"),
                    arg: None,
                },
                ConDef {
                    name: Symbol::intern("true"),
                    arg: None,
                },
            ],
        }),
    );
    bool_tc.entity_pid.set(Some(prim_pid("bool")));

    // datatype 'a list = nil | :: of 'a * 'a list
    let list_tc = Tycon::new(g.fresh(), Symbol::intern("list"), 1, TyconDef::Abstract);
    let list_arg = Type::Tuple(vec![
        Type::Param(0),
        Type::Con(list_tc.clone(), vec![Type::Param(0)]),
    ]);
    *list_tc.def.write() = TyconDef::Datatype(DatatypeInfo {
        cons: vec![
            ConDef {
                name: Symbol::intern("nil"),
                arg: None,
            },
            ConDef {
                name: Symbol::intern("::"),
                arg: Some(list_arg),
            },
        ],
    });
    list_tc.entity_pid.set(Some(prim_pid("list")));

    // datatype 'a option = NONE | SOME of 'a
    let option_tc = Tycon::new(g.fresh(), Symbol::intern("option"), 1, TyconDef::Abstract);
    *option_tc.def.write() = TyconDef::Datatype(DatatypeInfo {
        cons: vec![
            ConDef {
                name: Symbol::intern("NONE"),
                arg: None,
            },
            ConDef {
                name: Symbol::intern("SOME"),
                arg: Some(Type::Param(0)),
            },
        ],
    });
    option_tc.entity_pid.set(Some(prim_pid("option")));

    let mut b = Bindings::new();
    for tc in [&int, &string, &unit, &exn, &bool_tc, &list_tc, &option_tc] {
        b.tycons.push((tc.name, tc.clone()));
    }

    // Constructor value bindings.
    let con = |tycon: &Arc<Tycon>, tag: u32, span: u32, name: &str, scheme: Scheme| {
        (
            Symbol::intern(name),
            ValBind {
                kind: ValKind::Con {
                    tycon: tycon.clone(),
                    tag: ConTag {
                        tag,
                        span,
                        has_arg: matches!(scheme.body, Type::Arrow(..)),
                        name: Symbol::intern(name),
                    },
                },
                scheme,
            },
        )
    };
    let bool_ty = Type::Con(bool_tc.clone(), vec![]);
    let list_p = Type::Con(list_tc.clone(), vec![Type::Param(0)]);
    let option_p = Type::Con(option_tc.clone(), vec![Type::Param(0)]);
    b.vals
        .push(con(&bool_tc, 0, 2, "false", Scheme::mono(bool_ty.clone())));
    b.vals
        .push(con(&bool_tc, 1, 2, "true", Scheme::mono(bool_ty)));
    b.vals.push(con(
        &list_tc,
        0,
        2,
        "nil",
        Scheme {
            arity: 1,
            body: list_p.clone(),
        },
    ));
    b.vals.push(con(
        &list_tc,
        1,
        2,
        "::",
        Scheme {
            arity: 1,
            body: Type::Arrow(
                Box::new(Type::Tuple(vec![Type::Param(0), list_p.clone()])),
                Box::new(list_p),
            ),
        },
    ));
    b.vals.push(con(
        &option_tc,
        0,
        2,
        "NONE",
        Scheme {
            arity: 1,
            body: option_p.clone(),
        },
    ));
    // Primitive values.
    let int_ty = Type::Con(int.clone(), vec![]);
    let string_ty = Type::Con(string.clone(), vec![]);
    b.vals.push((
        Symbol::intern("itos"),
        ValBind {
            scheme: Scheme::mono(Type::Arrow(
                Box::new(int_ty.clone()),
                Box::new(string_ty.clone()),
            )),
            kind: ValKind::Prim(smlsc_syntax::ast::PrimOp::ItoS),
        },
    ));
    b.vals.push((
        Symbol::intern("size"),
        ValBind {
            scheme: Scheme::mono(Type::Arrow(Box::new(string_ty), Box::new(int_ty))),
            kind: ValKind::Prim(smlsc_syntax::ast::PrimOp::Size),
        },
    ));
    b.vals.push(con(
        &option_tc,
        1,
        2,
        "SOME",
        Scheme {
            arity: 1,
            body: Type::Arrow(Box::new(Type::Param(0)), Box::new(option_p)),
        },
    ));

    Arc::new(Pervasives {
        int,
        string,
        unit,
        exn,
        bool: bool_tc,
        list: list_tc,
        option: option_tc,
        bindings: b,
    })
}

static PERVASIVES: OnceLock<Arc<Pervasives>> = OnceLock::new();

/// The process-wide pervasive environment.
pub fn pervasives() -> Arc<Pervasives> {
    PERVASIVES.get_or_init(build).clone()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pervasive_pids_are_preset_and_stable() {
        let p = pervasives();
        let pid = p.int.entity_pid.get().unwrap();
        assert_eq!(pid, prim_pid("int"));
        assert_eq!(p.tycon_by_pid(pid).unwrap().stamp, p.int.stamp);
    }

    #[test]
    fn all_threads_share_instances() {
        let a = pervasives();
        let b = pervasives();
        assert!(Arc::ptr_eq(&a.int, &b.int));
        let c = std::thread::spawn(pervasives).join().unwrap();
        assert!(Arc::ptr_eq(&a.int, &c.int));
        assert_eq!(a.int.stamp, c.int.stamp);
    }

    #[test]
    fn constructors_are_bound() {
        let p = pervasives();
        for name in ["true", "false", "nil", "::", "NONE", "SOME"] {
            let vb = p.bindings.val(Symbol::intern(name)).unwrap();
            assert!(matches!(vb.kind, ValKind::Con { .. }), "{name}");
        }
    }

    #[test]
    fn cons_scheme_shape() {
        let p = pervasives();
        let vb = p.bindings.val(Symbol::intern("::")).unwrap();
        assert_eq!(vb.scheme.arity, 1);
        assert!(matches!(vb.scheme.body, Type::Arrow(..)));
    }

    #[test]
    fn list_is_a_recursive_datatype() {
        let p = pervasives();
        let info = p.list.datatype_info().unwrap();
        assert_eq!(info.cons.len(), 2);
        assert_eq!(info.cons[1].name.as_str(), "::");
    }
}
