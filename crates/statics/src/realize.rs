//! Realization: rewriting environment templates.
//!
//! One mechanism serves four jobs:
//!
//! * **signature instantiation** — fresh skolem tycons for a functor
//!   parameter or an opaque ascription;
//! * **signature matching views** — flexible stamps realized to the
//!   actual structure's tycons (transparency: the realized view exposes
//!   the actual types, which is how Figure 1's `FSort.t = int` becomes
//!   visible);
//! * **functor application** — skolems realized to the argument's tycons
//!   and every stamp in the body's generative range refreshed (SML
//!   generativity: each application mints fresh datatypes);
//! * **`where type`** — a single flexible stamp realized to a manifest
//!   abbreviation.
//!
//! The rewrite is: a stamp in the `map` becomes its target; a stamp inside
//! the generative range `[lo, hi)` is cloned with a fresh stamp (memoized,
//! cycles handled by allocating the clone before descending into its
//! definition); anything else — created *before* the range, hence unable
//! to reference anything inside it — is shared untouched.

use std::collections::HashMap;
use std::sync::Arc;

use smlsc_ids::{Stamp, StampGenerator};

use crate::env::{Bindings, StructureEnv, ValBind, ValKind};
use crate::types::{ConDef, DatatypeInfo, Scheme, Tycon, TyconDef, Type};

/// A realization pass over a template.
#[derive(Debug)]
pub struct Realizer {
    /// Flexible/skolem stamps and their realizations.
    pub map: HashMap<Stamp, Arc<Tycon>>,
    /// Raw-stamp generative range `[lo, hi)`.
    pub lo: u64,
    /// See `lo`.
    pub hi: u64,
    memo_tycon: HashMap<Stamp, Arc<Tycon>>,
    memo_str: HashMap<Stamp, Arc<StructureEnv>>,
    stamper: StampGenerator,
}

impl Realizer {
    /// Creates a realizer over the generative range `[lo, hi)` with the
    /// given flexible-stamp realizations.
    pub fn new(map: HashMap<Stamp, Arc<Tycon>>, lo: u64, hi: u64) -> Realizer {
        Realizer {
            map,
            lo,
            hi,
            memo_tycon: HashMap::new(),
            memo_str: HashMap::new(),
            stamper: StampGenerator::new(),
        }
    }

    fn in_range(&self, s: Stamp) -> bool {
        let r = s.as_raw();
        self.lo <= r && r < self.hi
    }

    /// The fresh tycon a generative-range stamp was cloned to (after the
    /// fact); used to recover new bound-stamp lists.
    pub fn cloned_tycon(&self, old: Stamp) -> Option<&Arc<Tycon>> {
        self.memo_tycon.get(&old)
    }

    /// Realizes a tycon reference.
    pub fn tycon(&mut self, tc: &Arc<Tycon>) -> Arc<Tycon> {
        if let Some(target) = self.map.get(&tc.stamp) {
            return target.clone();
        }
        if let Some(done) = self.memo_tycon.get(&tc.stamp) {
            return done.clone();
        }
        if !self.in_range(tc.stamp) {
            return tc.clone();
        }
        // Clone with a fresh stamp.  Allocate the shell first so that
        // recursive datatypes terminate, then fill the definition.
        let fresh = Tycon::new(self.stamper.fresh(), tc.name, tc.arity, TyconDef::Abstract);
        self.memo_tycon.insert(tc.stamp, fresh.clone());
        let def = tc.def.read().clone();
        let new_def = match def {
            TyconDef::Prim => TyconDef::Prim,
            TyconDef::Abstract => TyconDef::Abstract,
            TyconDef::Alias(body) => TyconDef::Alias(self.ty(&body)),
            TyconDef::Datatype(info) => TyconDef::Datatype(DatatypeInfo {
                cons: info
                    .cons
                    .iter()
                    .map(|c| ConDef {
                        name: c.name,
                        arg: c.arg.as_ref().map(|t| self.ty(t)),
                    })
                    .collect(),
            }),
        };
        *fresh.def.write() = new_def;
        fresh
    }

    /// Realizes a type.
    pub fn ty(&mut self, t: &Type) -> Type {
        match t {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                match link {
                    Some(t2) => self.ty(&t2),
                    None => t.clone(),
                }
            }
            Type::Param(i) => Type::Param(*i),
            Type::Con(tc, args) => {
                let tc2 = self.tycon(tc);
                Type::Con(tc2, args.iter().map(|a| self.ty(a)).collect())
            }
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| self.ty(t)).collect()),
            Type::Arrow(a, b) => Type::Arrow(Box::new(self.ty(a)), Box::new(self.ty(b))),
        }
    }

    /// Realizes a scheme.
    pub fn scheme(&mut self, s: &Scheme) -> Scheme {
        Scheme {
            arity: s.arity,
            body: self.ty(&s.body),
        }
    }

    /// Realizes a value binding.
    pub fn valbind(&mut self, vb: &ValBind) -> ValBind {
        ValBind {
            scheme: self.scheme(&vb.scheme),
            kind: match &vb.kind {
                ValKind::Plain => ValKind::Plain,
                ValKind::Exn => ValKind::Exn,
                ValKind::Prim(op) => ValKind::Prim(*op),
                ValKind::Con { tycon, tag } => ValKind::Con {
                    tycon: self.tycon(tycon),
                    tag: *tag,
                },
            },
        }
    }

    /// Realizes a structure.
    ///
    /// Structures outside the generative range are shared; inside it they
    /// are rebuilt with fresh stamps (each functor application / ascription
    /// yields a generatively new structure).
    pub fn structure(&mut self, s: &Arc<StructureEnv>) -> Arc<StructureEnv> {
        if let Some(done) = self.memo_str.get(&s.stamp) {
            return done.clone();
        }
        if !self.in_range(s.stamp) {
            return s.clone();
        }
        let bindings = self.bindings(&s.bindings);
        let fresh = StructureEnv::new(self.stamper.fresh(), bindings);
        self.memo_str.insert(s.stamp, fresh.clone());
        fresh
    }

    /// Realizes a record of bindings.
    pub fn bindings(&mut self, b: &Bindings) -> Bindings {
        Bindings {
            vals: b
                .vals
                .iter()
                .map(|(n, vb)| (*n, self.valbind(vb)))
                .collect(),
            tycons: b
                .tycons
                .iter()
                .map(|(n, tc)| (*n, self.tycon(tc)))
                .collect(),
            strs: b
                .strs
                .iter()
                .map(|(n, s)| (*n, self.structure(s)))
                .collect(),
            // Signatures and functors inside generative ranges only occur
            // at the unit level, which is never realized; share them.
            sigs: b.sigs.clone(),
            fcts: b.fcts.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pervasive::pervasives;
    use smlsc_ids::Symbol;

    #[test]
    fn external_tycons_are_shared() {
        let p = pervasives();
        let mut r = Realizer::new(HashMap::new(), u64::MAX - 1, u64::MAX);
        let got = r.tycon(&p.int);
        assert!(Arc::ptr_eq(&got, &p.int));
    }

    #[test]
    fn mapped_stamps_are_replaced() {
        let p = pervasives();
        let mut g = StampGenerator::new();
        let flex = Tycon::new(g.fresh(), Symbol::intern("t"), 0, TyconDef::Abstract);
        let mut map = HashMap::new();
        map.insert(flex.stamp, p.int.clone());
        let mut r = Realizer::new(map, 0, 0);
        let t = Type::Con(flex, vec![]);
        let got = r.ty(&t);
        assert!(matches!(got, Type::Con(tc, _) if tc.stamp == p.int.stamp));
    }

    #[test]
    fn generative_range_clones_fresh() {
        let lo = StampGenerator::peek_raw();
        let mut g = StampGenerator::new();
        let dt = Tycon::new(
            g.fresh(),
            Symbol::intern("t"),
            0,
            TyconDef::Datatype(DatatypeInfo { cons: vec![] }),
        );
        let hi = StampGenerator::peek_raw();
        let mut r = Realizer::new(HashMap::new(), lo, hi);
        let c1 = r.tycon(&dt);
        let c2 = r.tycon(&dt);
        assert!(Arc::ptr_eq(&c1, &c2), "memoized within one pass");
        assert_ne!(c1.stamp, dt.stamp, "fresh stamp");
        let mut r2 = Realizer::new(HashMap::new(), lo, hi);
        let c3 = r2.tycon(&dt);
        assert_ne!(c3.stamp, c1.stamp, "fresh per pass");
    }

    #[test]
    fn recursive_datatype_clone_terminates() {
        let lo = StampGenerator::peek_raw();
        let mut g = StampGenerator::new();
        let dt = Tycon::new(g.fresh(), Symbol::intern("t"), 0, TyconDef::Abstract);
        *dt.def.write() = TyconDef::Datatype(DatatypeInfo {
            cons: vec![
                ConDef {
                    name: Symbol::intern("Leaf"),
                    arg: None,
                },
                ConDef {
                    name: Symbol::intern("Node"),
                    arg: Some(Type::Con(dt.clone(), vec![])),
                },
            ],
        });
        let hi = StampGenerator::peek_raw();
        let mut r = Realizer::new(HashMap::new(), lo, hi);
        let c = r.tycon(&dt);
        // The clone's recursive occurrence points at the clone itself.
        let info = c.datatype_info().unwrap();
        let Some(Type::Con(inner, _)) = &info.cons[1].arg else {
            panic!()
        };
        assert_eq!(inner.stamp, c.stamp);
    }

    #[test]
    fn structures_in_range_get_fresh_stamps() {
        let lo = StampGenerator::peek_raw();
        let mut g = StampGenerator::new();
        let s = StructureEnv::new(g.fresh(), Bindings::new());
        let hi = StampGenerator::peek_raw();
        let mut r = Realizer::new(HashMap::new(), lo, hi);
        let s2 = r.structure(&s);
        assert_ne!(s2.stamp, s.stamp);
        let s3 = r.structure(&s);
        assert!(Arc::ptr_eq(&s2, &s3));
    }
}
