//! Types, type constructors, schemes, and unification.
//!
//! Every type constructor carries a generative [`Stamp`] — two tycons are
//! the same type iff their stamps are equal — and an `entity_pid` cell
//! that the compilation manager fills when the tycon is first exported
//! (§5: provisional pids are replaced by "real" pids derived from the
//! export hash).  Inference is standard Hindley–Milner with level-based
//! generalization and the SML value restriction.

use std::fmt;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;
use smlsc_ids::{PidCell, Stamp, Symbol};

/// How a type constructor is defined.
#[derive(Debug, Clone)]
pub enum TyconDef {
    /// A primitive (pervasive) type: `int`, `string`, `unit`, `exn`.
    Prim,
    /// An abstract type (signature spec or opaque ascription).
    Abstract,
    /// A generative datatype with its constructors.
    Datatype(DatatypeInfo),
    /// A transparent abbreviation; `body` uses [`Type::Param`] indices
    /// below the tycon's arity.
    Alias(Type),
}

/// The constructors of a datatype.
#[derive(Debug, Clone)]
pub struct DatatypeInfo {
    /// Constructors in declaration order; the index is the runtime tag.
    pub cons: Vec<ConDef>,
}

/// One datatype constructor.
#[derive(Debug, Clone)]
pub struct ConDef {
    /// Constructor name.
    pub name: Symbol,
    /// Argument type (with [`Type::Param`] for the datatype's type
    /// variables), if the constructor takes one.
    pub arg: Option<Type>,
}

/// A stamped type constructor.
///
/// The definition lives in a lock because recursive datatypes are built
/// in two phases (allocate the tycon, then fill its constructors, which
/// mention it) — and the pickler rebuilds cyclic structure the same way.
/// It is an `RwLock` (not a `RefCell`) so environments can be shared
/// across build-worker threads.
pub struct Tycon {
    /// Generative identity.
    pub stamp: Stamp,
    /// Name for printing (last path component at its definition).
    pub name: Symbol,
    /// Number of type parameters.
    pub arity: usize,
    /// The definition.
    pub def: RwLock<TyconDef>,
    /// Persistent identity, assigned when the tycon is first exported
    /// (pre-set for pervasives so they hash identically everywhere).
    pub entity_pid: PidCell,
}

impl fmt::Debug for Tycon {
    /// Shallow: recursive datatypes make the definition graph cyclic, so
    /// `Debug` prints only the identity and the definition's kind.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &*self.def.read() {
            TyconDef::Prim => "prim",
            TyconDef::Abstract => "abstract",
            TyconDef::Datatype(_) => "datatype",
            TyconDef::Alias(_) => "alias",
        };
        write!(
            f,
            "Tycon({}/{} {} {})",
            self.name, self.arity, self.stamp, kind
        )
    }
}

impl Tycon {
    /// Allocates a tycon.
    pub fn new(stamp: Stamp, name: Symbol, arity: usize, def: TyconDef) -> Arc<Tycon> {
        Arc::new(Tycon {
            stamp,
            name,
            arity,
            def: RwLock::new(def),
            entity_pid: PidCell::new(None),
        })
    }

    /// True if this tycon is a datatype.
    pub fn is_datatype(&self) -> bool {
        matches!(&*self.def.read(), TyconDef::Datatype(_))
    }

    /// The datatype info, if this is a datatype.
    pub fn datatype_info(&self) -> Option<DatatypeInfo> {
        match &*self.def.read() {
            TyconDef::Datatype(d) => Some(d.clone()),
            _ => None,
        }
    }
}

/// A unification variable.
#[derive(Debug)]
pub struct UVar {
    /// Display/debug identity.
    pub id: u64,
    /// Binding level for generalization.
    pub level: AtomicU32,
    /// The solution, once unified.
    pub link: RwLock<Option<Type>>,
}

impl UVar {
    /// The current binding level.
    pub fn level(&self) -> u32 {
        self.level.load(Ordering::Relaxed)
    }

    /// Lowers (or raises) the binding level.
    pub fn set_level(&self, level: u32) {
        self.level.store(level, Ordering::Relaxed);
    }
}

static NEXT_UVAR: AtomicU64 = AtomicU64::new(1);

/// A semantic type.
#[derive(Debug, Clone)]
pub enum Type {
    /// A unification variable.
    UVar(Arc<UVar>),
    /// A bound variable: index into the enclosing [`Scheme`], alias body,
    /// or constructor definition.
    Param(u32),
    /// Constructor application (primitives and nullary constructors
    /// included).
    Con(Arc<Tycon>, Vec<Type>),
    /// Tuple type (the empty tuple is not used; `unit` is a prim tycon).
    Tuple(Vec<Type>),
    /// Function type.
    Arrow(Box<Type>, Box<Type>),
}

impl Type {
    /// A fresh unification variable at `level`.
    pub fn fresh(level: u32) -> Type {
        Type::UVar(Arc::new(UVar {
            id: NEXT_UVAR.fetch_add(1, Ordering::Relaxed),
            level: AtomicU32::new(level),
            link: RwLock::new(None),
        }))
    }

    /// Follows links and expands top-level aliases until the head is
    /// structural.
    pub fn head_normalize(&self) -> Type {
        match self {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                match link {
                    Some(t) => t.head_normalize(),
                    None => self.clone(),
                }
            }
            Type::Con(tc, args) => {
                let expanded = match &*tc.def.read() {
                    TyconDef::Alias(body) => Some(subst_params(body, args)),
                    _ => None,
                };
                match expanded {
                    Some(t) => t.head_normalize(),
                    None => self.clone(),
                }
            }
            other => other.clone(),
        }
    }

    /// Resolves all links (not aliases), producing a link-free type.
    /// Unsolved variables remain as `UVar`.
    pub fn zonk(&self) -> Type {
        match self {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                match link {
                    Some(t) => t.zonk(),
                    None => self.clone(),
                }
            }
            Type::Param(i) => Type::Param(*i),
            Type::Con(tc, args) => Type::Con(tc.clone(), args.iter().map(Type::zonk).collect()),
            Type::Tuple(ts) => Type::Tuple(ts.iter().map(Type::zonk).collect()),
            Type::Arrow(a, b) => Type::Arrow(Box::new(a.zonk()), Box::new(b.zonk())),
        }
    }

    /// Collects unsolved unification variables (after zonking callers
    /// usually want this to be empty for exports).
    pub fn free_uvars(&self, out: &mut Vec<Arc<UVar>>) {
        match self {
            Type::UVar(uv) => {
                let link = uv.link.read().clone();
                match link {
                    Some(t) => t.free_uvars(out),
                    None => {
                        if !out.iter().any(|v| Arc::ptr_eq(v, uv)) {
                            out.push(uv.clone());
                        }
                    }
                }
            }
            Type::Param(_) => {}
            Type::Con(_, args) => {
                for a in args {
                    a.free_uvars(out);
                }
            }
            Type::Tuple(ts) => {
                for t in ts {
                    t.free_uvars(out);
                }
            }
            Type::Arrow(a, b) => {
                a.free_uvars(out);
                b.free_uvars(out);
            }
        }
    }
}

/// Substitutes `args` for `Param(i)` in `body`.
pub fn subst_params(body: &Type, args: &[Type]) -> Type {
    match body {
        Type::Param(i) => args
            .get(*i as usize)
            .cloned()
            .unwrap_or_else(|| body.clone()),
        Type::UVar(_) => body.clone(),
        Type::Con(tc, ts) => Type::Con(
            tc.clone(),
            ts.iter().map(|t| subst_params(t, args)).collect(),
        ),
        Type::Tuple(ts) => Type::Tuple(ts.iter().map(|t| subst_params(t, args)).collect()),
        Type::Arrow(a, b) => Type::Arrow(
            Box::new(subst_params(a, args)),
            Box::new(subst_params(b, args)),
        ),
    }
}

/// A type scheme: `∀ Param(0..arity). body`.
#[derive(Debug, Clone)]
pub struct Scheme {
    /// Number of quantified variables.
    pub arity: u32,
    /// The body, with `Param` indices below `arity`.
    pub body: Type,
}

impl Scheme {
    /// A monomorphic scheme.
    pub fn mono(ty: Type) -> Scheme {
        Scheme { arity: 0, body: ty }
    }

    /// Instantiates with fresh unification variables at `level`.
    pub fn instantiate(&self, level: u32) -> Type {
        if self.arity == 0 {
            return self.body.clone();
        }
        let args: Vec<Type> = (0..self.arity).map(|_| Type::fresh(level)).collect();
        subst_params(&self.body, &args)
    }

    /// Instantiates with the given types (used by signature matching).
    pub fn instantiate_with(&self, args: &[Type]) -> Type {
        subst_params(&self.body, args)
    }
}

/// A unification failure, rendered by the elaborator into an error.
#[derive(Debug, Clone)]
pub struct UnifyError {
    /// The two irreconcilable types, pretty-printed.
    pub left: String,
    /// See `left`.
    pub right: String,
    /// Extra context ("occurs check", "arity"), if any.
    pub detail: Option<String>,
}

impl fmt::Display for UnifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot unify `{}` with `{}`", self.left, self.right)?;
        if let Some(d) = &self.detail {
            write!(f, " ({d})")?;
        }
        Ok(())
    }
}

fn mismatch(a: &Type, b: &Type, detail: Option<&str>) -> UnifyError {
    UnifyError {
        left: format_type(a),
        right: format_type(b),
        detail: detail.map(str::to_owned),
    }
}

/// Unifies two types in place.
///
/// # Errors
///
/// Returns a [`UnifyError`] on constructor clash, arity mismatch, or
/// occurs-check failure.
pub fn unify(a: &Type, b: &Type) -> Result<(), UnifyError> {
    let a = a.head_normalize();
    let b = b.head_normalize();
    match (&a, &b) {
        (Type::UVar(ua), Type::UVar(ub)) if Arc::ptr_eq(ua, ub) => Ok(()),
        (Type::UVar(uv), other) | (other, Type::UVar(uv)) => {
            if occurs(uv, other) {
                return Err(mismatch(&a, &b, Some("occurs check")));
            }
            lower_levels(uv.level(), other);
            *uv.link.write() = Some(other.clone());
            Ok(())
        }
        (Type::Param(i), Type::Param(j)) if i == j => Ok(()),
        (Type::Con(tc1, args1), Type::Con(tc2, args2)) => {
            if tc1.stamp != tc2.stamp {
                return Err(mismatch(&a, &b, None));
            }
            if args1.len() != args2.len() {
                return Err(mismatch(&a, &b, Some("arity")));
            }
            for (x, y) in args1.iter().zip(args2) {
                unify(x, y)?;
            }
            Ok(())
        }
        (Type::Tuple(ts1), Type::Tuple(ts2)) => {
            if ts1.len() != ts2.len() {
                return Err(mismatch(&a, &b, Some("tuple width")));
            }
            for (x, y) in ts1.iter().zip(ts2) {
                unify(x, y)?;
            }
            Ok(())
        }
        (Type::Arrow(a1, r1), Type::Arrow(a2, r2)) => {
            unify(a1, a2)?;
            unify(r1, r2)
        }
        _ => Err(mismatch(&a, &b, None)),
    }
}

fn occurs(uv: &Arc<UVar>, t: &Type) -> bool {
    match t {
        Type::UVar(other) => {
            if Arc::ptr_eq(uv, other) {
                return true;
            }
            let link = other.link.read().clone();
            match link {
                Some(t2) => occurs(uv, &t2),
                None => false,
            }
        }
        Type::Param(_) => false,
        Type::Con(_, args) => args.iter().any(|t| occurs(uv, t)),
        Type::Tuple(ts) => ts.iter().any(|t| occurs(uv, t)),
        Type::Arrow(a, b) => occurs(uv, a) || occurs(uv, b),
    }
}

/// Lowers the level of every variable in `t` to at most `level`, so a
/// variable bound outside a `let` cannot be generalized by it.
fn lower_levels(level: u32, t: &Type) {
    match t {
        Type::UVar(uv) => {
            let link = uv.link.read().clone();
            match link {
                Some(t2) => lower_levels(level, &t2),
                None => {
                    if uv.level() > level {
                        uv.set_level(level);
                    }
                }
            }
        }
        Type::Param(_) => {}
        Type::Con(_, args) => {
            for a in args {
                lower_levels(level, a);
            }
        }
        Type::Tuple(ts) => {
            for t in ts {
                lower_levels(level, t);
            }
        }
        Type::Arrow(a, b) => {
            lower_levels(level, a);
            lower_levels(level, b);
        }
    }
}

/// Generalizes `t` over every unsolved variable at a level deeper than
/// `level`, producing a scheme.
pub fn generalize(level: u32, t: &Type) -> Scheme {
    let mut vars: Vec<Arc<UVar>> = Vec::new();
    collect_generalizable(level, t, &mut vars);
    for (i, uv) in vars.iter().enumerate() {
        *uv.link.write() = Some(Type::Param(i as u32));
    }
    Scheme {
        arity: vars.len() as u32,
        body: t.zonk(),
    }
}

fn collect_generalizable(level: u32, t: &Type, out: &mut Vec<Arc<UVar>>) {
    match t {
        Type::UVar(uv) => {
            let link = uv.link.read().clone();
            match link {
                Some(t2) => collect_generalizable(level, &t2, out),
                None => {
                    if uv.level() > level && !out.iter().any(|v| Arc::ptr_eq(v, uv)) {
                        out.push(uv.clone());
                    }
                }
            }
        }
        Type::Param(_) => {}
        Type::Con(_, args) => {
            for a in args {
                collect_generalizable(level, a, out);
            }
        }
        Type::Tuple(ts) => {
            for t in ts {
                collect_generalizable(level, t, out);
            }
        }
        Type::Arrow(a, b) => {
            collect_generalizable(level, a, out);
            collect_generalizable(level, b, out);
        }
    }
}

/// Pretty-prints a type for error messages and the session REPL.
pub fn format_type(t: &Type) -> String {
    fn go(t: &Type, prec: u8, out: &mut String) {
        match &t.head_normalize() {
            Type::UVar(uv) => {
                out.push_str(&format!("'u{}", uv.id));
            }
            Type::Param(i) => {
                out.push('\'');
                let i = *i;
                if i < 26 {
                    out.push((b'a' + i as u8) as char);
                } else {
                    out.push_str(&format!("v{i}"));
                }
            }
            Type::Con(tc, args) => {
                match args.len() {
                    0 => {}
                    1 => {
                        go(&args[0], 2, out);
                        out.push(' ');
                    }
                    _ => {
                        out.push('(');
                        for (i, a) in args.iter().enumerate() {
                            if i > 0 {
                                out.push_str(", ");
                            }
                            go(a, 0, out);
                        }
                        out.push_str(") ");
                    }
                }
                out.push_str(tc.name.as_str());
            }
            Type::Tuple(ts) => {
                if prec > 1 {
                    out.push('(');
                }
                for (i, x) in ts.iter().enumerate() {
                    if i > 0 {
                        out.push_str(" * ");
                    }
                    go(x, 2, out);
                }
                if prec > 1 {
                    out.push(')');
                }
            }
            Type::Arrow(a, b) => {
                if prec > 0 {
                    out.push('(');
                }
                go(a, 1, out);
                out.push_str(" -> ");
                go(b, 0, out);
                if prec > 0 {
                    out.push(')');
                }
            }
        }
    }
    let mut s = String::new();
    go(t, 0, &mut s);
    s
}

/// Pretty-prints a scheme.
pub fn format_scheme(s: &Scheme) -> String {
    format_type(&s.body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use smlsc_ids::StampGenerator;

    fn prim(name: &str) -> Arc<Tycon> {
        Tycon::new(
            StampGenerator::global_fresh(),
            Symbol::intern(name),
            0,
            TyconDef::Prim,
        )
    }

    #[test]
    fn unify_identical_prims() {
        let int = prim("int");
        let a = Type::Con(int.clone(), vec![]);
        let b = Type::Con(int, vec![]);
        assert!(unify(&a, &b).is_ok());
    }

    #[test]
    fn unify_distinct_stamps_fails() {
        let a = Type::Con(prim("int"), vec![]);
        let b = Type::Con(prim("int"), vec![]); // same name, fresh stamp
        assert!(unify(&a, &b).is_err());
    }

    #[test]
    fn uvar_links_and_zonks() {
        let int = prim("int");
        let v = Type::fresh(0);
        unify(&v, &Type::Con(int.clone(), vec![])).unwrap();
        let z = v.zonk();
        assert!(matches!(z, Type::Con(tc, _) if tc.stamp == int.stamp));
    }

    #[test]
    fn occurs_check_fires() {
        let v = Type::fresh(0);
        let arrow = Type::Arrow(Box::new(v.clone()), Box::new(v.clone()));
        let e = unify(&v, &arrow).unwrap_err();
        assert_eq!(e.detail.as_deref(), Some("occurs check"));
    }

    #[test]
    fn alias_expansion_in_unify() {
        let int = prim("int");
        let g = StampGenerator::global_fresh();
        let alias = Tycon::new(
            g,
            Symbol::intern("t"),
            0,
            TyconDef::Alias(Type::Con(int.clone(), vec![])),
        );
        let a = Type::Con(alias, vec![]);
        let b = Type::Con(int, vec![]);
        assert!(unify(&a, &b).is_ok());
    }

    #[test]
    fn parametric_alias_expansion() {
        // type 'a pair = 'a * 'a ; pair int ~ int * int
        let int = prim("int");
        let pair = Tycon::new(
            StampGenerator::global_fresh(),
            Symbol::intern("pair"),
            1,
            TyconDef::Alias(Type::Tuple(vec![Type::Param(0), Type::Param(0)])),
        );
        let a = Type::Con(pair, vec![Type::Con(int.clone(), vec![])]);
        let b = Type::Tuple(vec![Type::Con(int.clone(), vec![]), Type::Con(int, vec![])]);
        assert!(unify(&a, &b).is_ok());
    }

    #[test]
    fn generalize_and_instantiate() {
        let v = Type::fresh(1);
        let t = Type::Arrow(Box::new(v.clone()), Box::new(v));
        let s = generalize(0, &t);
        assert_eq!(s.arity, 1);
        let i1 = s.instantiate(0);
        let i2 = s.instantiate(0);
        // The two instances are independent: unifying i1 with int must not
        // constrain i2.
        let int = prim("int");
        let Type::Arrow(a1, _) = &i1 else { panic!() };
        unify(a1, &Type::Con(int.clone(), vec![])).unwrap();
        let Type::Arrow(a2, _) = &i2 else { panic!() };
        let str_tc = prim("string");
        assert!(unify(a2, &Type::Con(str_tc, vec![])).is_ok());
    }

    #[test]
    fn levels_prevent_overgeneralization() {
        let outer = Type::fresh(1);
        // Unify inner var (level 2) with outer: level drops to 1, so
        // generalizing at level 1 captures nothing.
        let inner = Type::fresh(2);
        unify(&inner, &outer).unwrap();
        let s = generalize(1, &inner);
        assert_eq!(s.arity, 0);
    }

    #[test]
    fn format_types() {
        let int = prim("int");
        let t = Type::Arrow(
            Box::new(Type::Tuple(vec![
                Type::Con(int.clone(), vec![]),
                Type::Con(int.clone(), vec![]),
            ])),
            Box::new(Type::Con(int, vec![])),
        );
        assert_eq!(format_type(&t), "int * int -> int");
    }

    #[test]
    fn format_nested_arrow() {
        let int = prim("int");
        let i = || Type::Con(int.clone(), vec![]);
        let t = Type::Arrow(
            Box::new(Type::Arrow(Box::new(i()), Box::new(i()))),
            Box::new(i()),
        );
        assert_eq!(format_type(&t), "(int -> int) -> int");
    }
}
