//! Static environments: the bindings of modules, signatures and functors.
//!
//! A [`Bindings`] is the paper's "environment mapping names to types and
//! values" (§3), split by namespace and kept in insertion order — order
//! matters both for deterministic intrinsic-pid hashing (§5 does a
//! prefix-order traversal) and because a module's *runtime record layout*
//! is derived positionally from its bindings (see [`runtime_slots`]).

use smlsc_ids::PidCell;
use std::sync::Arc;

use smlsc_dynamics::ir::ConTag;
use smlsc_ids::{Stamp, Symbol};
use smlsc_syntax::ast::PrimOp;

use crate::types::{Scheme, Tycon};

/// How a value binding behaves.
#[derive(Debug, Clone)]
pub enum ValKind {
    /// An ordinary value; occupies a runtime record slot.
    Plain,
    /// A datatype constructor; purely static (no slot), applied or matched
    /// via its tag.
    Con {
        /// The datatype it belongs to.
        tycon: Arc<Tycon>,
        /// Runtime tag information.
        tag: ConTag,
    },
    /// An exception constructor; generative at runtime, occupies a slot.
    Exn,
    /// A compiler-primitive value (`itos`, `size`); purely static (no
    /// slot), applied directly or eta-expanded when used first-class.
    Prim(PrimOp),
}

/// A value binding: scheme plus kind.
#[derive(Debug, Clone)]
pub struct ValBind {
    /// The (possibly polymorphic) type.
    pub scheme: Scheme,
    /// Value, constructor, or exception.
    pub kind: ValKind,
}

/// The bindings of one structure (or one environment layer).
#[derive(Debug, Clone, Default)]
pub struct Bindings {
    /// Value bindings in insertion order.
    pub vals: Vec<(Symbol, ValBind)>,
    /// Type constructors.
    pub tycons: Vec<(Symbol, Arc<Tycon>)>,
    /// Substructures.
    pub strs: Vec<(Symbol, Arc<StructureEnv>)>,
    /// Signatures (unit-level only; structures cannot contain them).
    pub sigs: Vec<(Symbol, Arc<SignatureEnv>)>,
    /// Functors.
    pub fcts: Vec<(Symbol, Arc<FunctorEnv>)>,
}

impl Bindings {
    /// An empty record of bindings.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Looks up a value (last binding wins).
    pub fn val(&self, name: Symbol) -> Option<&ValBind> {
        self.vals
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Looks up a type constructor.
    pub fn tycon(&self, name: Symbol) -> Option<&Arc<Tycon>> {
        self.tycons
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Looks up a substructure.
    pub fn str(&self, name: Symbol) -> Option<&Arc<StructureEnv>> {
        self.strs
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Looks up a signature.
    pub fn sig(&self, name: Symbol) -> Option<&Arc<SignatureEnv>> {
        self.sigs
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// Looks up a functor.
    pub fn fct(&self, name: Symbol) -> Option<&Arc<FunctorEnv>> {
        self.fcts
            .iter()
            .rev()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v)
    }

    /// True if nothing is bound.
    pub fn is_empty(&self) -> bool {
        self.vals.is_empty()
            && self.tycons.is_empty()
            && self.strs.is_empty()
            && self.sigs.is_empty()
            && self.fcts.is_empty()
    }

    /// Total number of bindings across namespaces.
    pub fn len(&self) -> usize {
        self.vals.len() + self.tycons.len() + self.strs.len() + self.sigs.len() + self.fcts.len()
    }
}

/// An elaborated structure: generative stamp plus bindings.
#[derive(Debug)]
pub struct StructureEnv {
    /// Generative identity.
    pub stamp: Stamp,
    /// Persistent identity, filled at first export.
    pub entity_pid: PidCell,
    /// The members.
    pub bindings: Bindings,
}

impl StructureEnv {
    /// Allocates a structure environment.
    pub fn new(stamp: Stamp, bindings: Bindings) -> Arc<StructureEnv> {
        Arc::new(StructureEnv {
            stamp,
            entity_pid: PidCell::new(None),
            bindings,
        })
    }
}

/// An elaborated signature: a structure *template* whose `bound` stamps
/// are flexible — instantiated afresh per use, realized to actual tycons
/// by signature matching.
#[derive(Debug)]
pub struct SignatureEnv {
    /// Generative identity of the signature itself.
    pub stamp: Stamp,
    /// Persistent identity, filled at first export.
    pub entity_pid: PidCell,
    /// Stamps of the flexible components (abstract types and datatype
    /// specs), in template traversal order.
    pub bound: Vec<Stamp>,
    /// The template.
    pub body: Arc<StructureEnv>,
    /// Raw-stamp range `[lo, hi)` of the template's own entities; realizing
    /// the template regenerates exactly this range (external references
    /// stay shared).
    pub lo: u64,
    /// See `lo`.
    pub hi: u64,
}

/// An elaborated functor.
///
/// The body was elaborated once against a skolemized instance of the
/// parameter signature; application realizes `skolems` to the argument's
/// actual tycons and refreshes every stamp in the generative range
/// (`gen_lo..gen_hi`) — so each application yields fresh datatypes,
/// exactly SML's generativity.
#[derive(Debug)]
pub struct FunctorEnv {
    /// Generative identity.
    pub stamp: Stamp,
    /// Persistent identity, filled at first export.
    pub entity_pid: PidCell,
    /// The formal parameter name (for error messages).
    pub param_name: Symbol,
    /// The parameter signature.
    pub param_sig: Arc<SignatureEnv>,
    /// The skolemized parameter instance the body saw.
    pub param_inst: Arc<StructureEnv>,
    /// Skolem stamps, parallel to `param_sig.bound`.
    pub skolems: Vec<Stamp>,
    /// The body template (references skolems and generative stamps).
    pub body: Arc<StructureEnv>,
    /// Raw-stamp range `[gen_lo, gen_hi)` of entities generated while
    /// elaborating the body; these are refreshed per application.
    pub gen_lo: u64,
    /// See `gen_lo`.
    pub gen_hi: u64,
}

/// What occupies one runtime record slot of a structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Slot {
    /// A value (kind `Plain` or `Exn`).
    Val(Symbol),
    /// A substructure record.
    Str(Symbol),
    /// A functor closure.
    Fct(Symbol),
}

/// The runtime record layout of a structure with these bindings.
///
/// Layout rule (shared by the elaborator, coercion generator and linker):
/// every `Plain`/`Exn` value in order, then every substructure, then every
/// functor.  Constructors and signatures have no runtime representation.
/// When a name is bound more than once, only the *last* binding gets a
/// slot (earlier ones are shadowed and unreachable).
pub fn runtime_slots(b: &Bindings) -> Vec<Slot> {
    let mut out = Vec::new();
    for (i, (name, vb)) in b.vals.iter().enumerate() {
        let last = b
            .vals
            .iter()
            .rposition(|(n, _)| n == name)
            .expect("name present");
        if last != i {
            continue; // shadowed
        }
        match vb.kind {
            ValKind::Plain | ValKind::Exn => out.push(Slot::Val(*name)),
            ValKind::Con { .. } | ValKind::Prim(_) => {}
        }
    }
    for (i, (name, _)) in b.strs.iter().enumerate() {
        let last = b
            .strs
            .iter()
            .rposition(|(n, _)| n == name)
            .expect("name present");
        if last == i {
            out.push(Slot::Str(*name));
        }
    }
    for (i, (name, _)) in b.fcts.iter().enumerate() {
        let last = b
            .fcts
            .iter()
            .rposition(|(n, _)| n == name)
            .expect("name present");
        if last == i {
            out.push(Slot::Fct(*name));
        }
    }
    out
}

/// The slot index of value `name` in the layout of `b`, if it has one.
pub fn val_slot(b: &Bindings, name: Symbol) -> Option<u32> {
    runtime_slots(b)
        .iter()
        .position(|s| *s == Slot::Val(name))
        .map(|i| i as u32)
}

/// The slot index of substructure `name`.
pub fn str_slot(b: &Bindings, name: Symbol) -> Option<u32> {
    runtime_slots(b)
        .iter()
        .position(|s| *s == Slot::Str(name))
        .map(|i| i as u32)
}

/// The slot index of functor `name`.
pub fn fct_slot(b: &Bindings, name: Symbol) -> Option<u32> {
    runtime_slots(b)
        .iter()
        .position(|s| *s == Slot::Fct(name))
        .map(|i| i as u32)
}

// `Bindings` crosses build-worker threads in the IRM's parallel
// scheduler; this fails to compile if any component regresses to a
// single-threaded cell.
#[allow(dead_code)]
fn assert_bindings_shareable() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Bindings>();
    assert_send_sync::<StructureEnv>();
    assert_send_sync::<SignatureEnv>();
    assert_send_sync::<FunctorEnv>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{TyconDef, Type};
    use smlsc_ids::StampGenerator;

    fn plain_val() -> ValBind {
        ValBind {
            scheme: Scheme::mono(Type::fresh(0)),
            kind: ValKind::Plain,
        }
    }

    fn con_val(tycon: Arc<Tycon>) -> ValBind {
        ValBind {
            scheme: Scheme::mono(Type::fresh(0)),
            kind: ValKind::Con {
                tycon,
                tag: ConTag {
                    tag: 0,
                    span: 1,
                    has_arg: false,
                    name: Symbol::intern("C"),
                },
            },
        }
    }

    #[test]
    fn layout_skips_constructors() {
        let mut g = StampGenerator::new();
        let tc = Tycon::new(g.fresh(), Symbol::intern("t"), 0, TyconDef::Abstract);
        let mut b = Bindings::new();
        b.vals.push((Symbol::intern("x"), plain_val()));
        b.vals.push((Symbol::intern("C"), con_val(tc)));
        b.vals.push((Symbol::intern("y"), plain_val()));
        let slots = runtime_slots(&b);
        assert_eq!(
            slots,
            vec![
                Slot::Val(Symbol::intern("x")),
                Slot::Val(Symbol::intern("y"))
            ]
        );
        assert_eq!(val_slot(&b, Symbol::intern("y")), Some(1));
        assert_eq!(val_slot(&b, Symbol::intern("C")), None);
    }

    #[test]
    fn layout_orders_vals_then_strs_then_fcts() {
        let mut g = StampGenerator::new();
        let mut b = Bindings::new();
        b.strs.push((
            Symbol::intern("S"),
            StructureEnv::new(g.fresh(), Bindings::new()),
        ));
        b.vals.push((Symbol::intern("x"), plain_val()));
        let slots = runtime_slots(&b);
        assert_eq!(
            slots,
            vec![
                Slot::Val(Symbol::intern("x")),
                Slot::Str(Symbol::intern("S"))
            ]
        );
        assert_eq!(str_slot(&b, Symbol::intern("S")), Some(1));
    }

    #[test]
    fn shadowed_bindings_lose_their_slot() {
        let mut b = Bindings::new();
        b.vals.push((Symbol::intern("x"), plain_val()));
        b.vals.push((Symbol::intern("x"), plain_val()));
        assert_eq!(runtime_slots(&b).len(), 1);
    }

    #[test]
    fn lookup_finds_last_binding() {
        let mut b = Bindings::new();
        let v1 = ValBind {
            scheme: Scheme::mono(Type::Param(0)),
            kind: ValKind::Plain,
        };
        let v2 = ValBind {
            scheme: Scheme::mono(Type::Param(1)),
            kind: ValKind::Plain,
        };
        b.vals.push((Symbol::intern("x"), v1));
        b.vals.push((Symbol::intern("x"), v2));
        let got = b.val(Symbol::intern("x")).unwrap();
        assert!(matches!(got.scheme.body, Type::Param(1)));
    }
}
