//! The elaborator: type checking plus translation to runtime IR.
//!
//! `compile`'s static half (§3): elaborating a unit against the static
//! environments of its imports yields the unit's export bindings (its
//! *statenv*) and its code object.  The elaborator resolves every name to
//! either a local lvar or a positional path rooted at an import slot, so
//! the code it emits is exactly the paper's "closed code parameterized by
//! a vector of import values".

mod core;
mod modules;

use std::collections::HashMap;
use std::sync::Arc;

use smlsc_dynamics::ir::{Ir, IrDec, LVar};
use smlsc_ids::{StampGenerator, Symbol};
use smlsc_syntax::ast::{Path, UnitAst};

use crate::env::{
    fct_slot, runtime_slots, str_slot, val_slot, Bindings, FunctorEnv, SignatureEnv, Slot,
    StructureEnv, ValBind, ValKind,
};
use crate::error::ElabError;
use crate::pervasive::{pervasives, Pervasives};
use crate::types::{Scheme, Tycon, Type};

/// One unit visible to the unit being compiled, occupying import slot `i`
/// (its position in [`ImportEnv::units`]).
#[derive(Debug, Clone)]
pub struct ImportedUnit {
    /// The unit's name (file stem), for error messages.
    pub name: Symbol,
    /// The unit's exported bindings (rehydrated from its bin file).
    pub exports: Arc<Bindings>,
}

/// The compilation context: every import, in slot order.
#[derive(Debug, Clone, Default)]
pub struct ImportEnv {
    /// Imported units; index = import slot.
    pub units: Vec<ImportedUnit>,
    /// When `false` (batch compilation), a name exported by two imports is
    /// ambiguous and errors.  When `true` (interactive sessions), the
    /// *latest* import wins — the read-eval-print loop's layered
    /// environments (§7).
    pub shadowing: bool,
}

impl ImportEnv {
    /// A context with no imports.
    pub fn empty() -> ImportEnv {
        ImportEnv::default()
    }
}

/// The result of elaborating one unit.
#[derive(Debug)]
pub struct ElabUnit {
    /// The unit's exported static environment.
    pub exports: Arc<Bindings>,
    /// The unit's code: evaluates to its export record given one import
    /// record per [`ImportEnv`] slot.
    pub code: Ir,
    /// Non-fatal diagnostics: inexhaustive matches, redundant rules,
    /// refutable `val` bindings.
    pub warnings: Vec<crate::error::ElabWarning>,
}

/// Elaborates (type checks and translates) a compilation unit.
///
/// # Errors
///
/// Returns the first [`ElabError`]: unbound names, type clashes, signature
/// mismatches, or unresolved polymorphism at the unit boundary.
///
/// # Examples
///
/// ```
/// use smlsc_statics::elab::{elaborate_unit, ImportEnv};
/// let ast = smlsc_syntax::parse_unit(
///     "structure A = struct val x = 1 + 2 end",
/// ).unwrap();
/// let unit = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
/// assert_eq!(unit.exports.strs.len(), 1);
/// ```
pub fn elaborate_unit(unit: &UnitAst, imports: &ImportEnv) -> Result<ElabUnit, ElabError> {
    let mut el = Elaborator::new(imports);
    // Bind every import record to a local variable up front.  References
    // to imports compile to these locals, so closures *capture* them —
    // `Ir::Import` must never appear under a lambda, where it would be
    // resolved against the calling unit's import vector.
    let mut irdecs: Vec<IrDec> = (0..imports.units.len() as u32)
        .map(|slot| {
            IrDec::Val(
                smlsc_dynamics::ir::IrPat::Var(el.import_lvars[slot as usize]),
                Ir::Import(slot),
            )
        })
        .collect();
    el.frames.push(Frame::default());
    for dec in &unit.decs {
        el.elab_topdec(dec, &mut irdecs)?;
    }
    let frame = el.frames.pop().expect("unit frame");
    let bindings = frame.to_bindings();
    check_exports_resolved(&bindings)?;
    let record = frame.record_ir(&bindings)?;
    Ok(ElabUnit {
        exports: Arc::new(bindings),
        code: Ir::Let(irdecs, Box::new(record)),
        warnings: el.warnings,
    })
}

/// Errors if any exported scheme still contains an unsolved unification
/// variable (SML's "free type variable at top level").
fn check_exports_resolved(b: &Bindings) -> Result<(), ElabError> {
    fn check_scheme(name: Symbol, s: &Scheme) -> Result<(), ElabError> {
        let mut vs = Vec::new();
        s.body.free_uvars(&mut vs);
        if vs.is_empty() {
            Ok(())
        } else {
            Err(ElabError::new(format!(
                "unresolved type variable in exported value `{name}`"
            )))
        }
    }
    fn go(b: &Bindings) -> Result<(), ElabError> {
        for (n, vb) in &b.vals {
            check_scheme(*n, &vb.scheme)?;
        }
        for (_, s) in &b.strs {
            go(&s.bindings)?;
        }
        Ok(())
    }
    go(b)
}

/// How a value is reached at runtime.
#[derive(Debug, Clone)]
pub enum Access {
    /// A local variable.
    Local(LVar),
    /// An import slot's export record.
    Import(u32),
    /// A record field of another access.
    Select(Arc<Access>, u32),
}

impl Access {
    /// Lowers the access path to IR.
    pub fn ir(&self) -> Ir {
        match self {
            Access::Local(v) => Ir::Local(*v),
            Access::Import(i) => Ir::Import(*i),
            Access::Select(base, slot) => Ir::Select(Box::new(base.ir()), *slot),
        }
    }

    /// Selects a field.
    pub fn field(&self, slot: u32) -> Access {
        Access::Select(Arc::new(self.clone()), slot)
    }
}

/// One lexical scope of the elaborator, mirroring [`Bindings`] but
/// carrying runtime access information.
#[derive(Debug, Default)]
pub(crate) struct Frame {
    pub vals: Vec<(Symbol, ValBind, Option<Access>)>,
    pub tycons: Vec<(Symbol, Arc<Tycon>)>,
    pub strs: Vec<(Symbol, Arc<StructureEnv>, Option<Access>)>,
    pub sigs: Vec<(Symbol, Arc<SignatureEnv>)>,
    pub fcts: Vec<(Symbol, Arc<FunctorEnv>, Option<Access>)>,
}

impl Frame {
    pub fn to_bindings(&self) -> Bindings {
        Bindings {
            vals: self.vals.iter().map(|(n, v, _)| (*n, v.clone())).collect(),
            tycons: self.tycons.clone(),
            strs: self.strs.iter().map(|(n, s, _)| (*n, s.clone())).collect(),
            sigs: self.sigs.clone(),
            fcts: self.fcts.iter().map(|(n, f, _)| (*n, f.clone())).collect(),
        }
    }

    /// Builds the record expression materializing these bindings with the
    /// canonical layout of `bindings` (which must be `self.to_bindings()`).
    pub fn record_ir(&self, bindings: &Bindings) -> Result<Ir, ElabError> {
        let mut fields = Vec::new();
        for slot in runtime_slots(bindings) {
            let ir = match slot {
                Slot::Val(name) => self
                    .vals
                    .iter()
                    .rev()
                    .find(|(n, _, _)| *n == name)
                    .and_then(|(_, _, a)| a.as_ref())
                    .map(Access::ir),
                Slot::Str(name) => self
                    .strs
                    .iter()
                    .rev()
                    .find(|(n, _, _)| *n == name)
                    .and_then(|(_, _, a)| a.as_ref())
                    .map(Access::ir),
                Slot::Fct(name) => self
                    .fcts
                    .iter()
                    .rev()
                    .find(|(n, _, _)| *n == name)
                    .and_then(|(_, _, a)| a.as_ref())
                    .map(Access::ir),
            };
            fields.push(ir.ok_or_else(|| {
                ElabError::new("internal: binding without runtime access in record")
            })?);
        }
        Ok(Ir::Record(fields))
    }
}

pub(crate) struct Elaborator<'a> {
    pub imports: &'a ImportEnv,
    pub perv: Arc<Pervasives>,
    pub stamper: StampGenerator,
    pub frames: Vec<Frame>,
    pub next_lvar: LVar,
    pub level: u32,
    /// Scoped type-variable environments for `val`/`fun` declarations.
    pub tyvars: Vec<HashMap<Symbol, Type>>,
    /// The lvar each import record is bound to at unit entry.
    pub import_lvars: Vec<LVar>,
    /// Accumulated non-fatal diagnostics.
    pub warnings: Vec<crate::error::ElabWarning>,
}

impl<'a> Elaborator<'a> {
    pub fn new(imports: &'a ImportEnv) -> Elaborator<'a> {
        let n = imports.units.len() as LVar;
        Elaborator {
            imports,
            perv: pervasives(),
            stamper: StampGenerator::new(),
            frames: Vec::new(),
            next_lvar: n,
            level: 0,
            tyvars: Vec::new(),
            import_lvars: (0..n).collect(),
            warnings: Vec::new(),
        }
    }

    /// Records a non-fatal diagnostic.
    pub fn warn(&mut self, message: impl Into<String>) {
        self.warnings.push(crate::error::ElabWarning {
            message: message.into(),
            loc: None,
        });
    }

    pub fn fresh_lvar(&mut self) -> LVar {
        let v = self.next_lvar;
        self.next_lvar += 1;
        v
    }

    pub fn cur_frame(&mut self) -> &mut Frame {
        self.frames.last_mut().expect("at least one frame")
    }

    // ----- name resolution -------------------------------------------------

    /// Finds the import slot and member access for a root symbol exported
    /// by some imported unit, in the given namespace.
    fn import_member(
        &self,
        name: Symbol,
        pick: impl Fn(&Bindings, Symbol) -> Option<u32>,
    ) -> Result<Option<(u32, u32, &ImportedUnit)>, ElabError> {
        let mut found = None;
        for (slot, u) in self.imports.units.iter().enumerate() {
            if let Some(member) = pick(&u.exports, name) {
                // Under shadowing (interactive sessions), the later unit
                // wins; otherwise a name in two imports is ambiguous.
                if found.is_some() && !self.imports.shadowing {
                    return Err(ElabError::new(format!(
                        "`{name}` is exported by more than one imported unit"
                    )));
                }
                found = Some((slot as u32, member, u));
            }
        }
        Ok(found)
    }

    pub fn lookup_str_root(
        &self,
        name: Symbol,
    ) -> Result<(Arc<StructureEnv>, Option<Access>), ElabError> {
        for frame in self.frames.iter().rev() {
            if let Some((_, s, a)) = frame.strs.iter().rev().find(|(n, _, _)| *n == name) {
                return Ok((s.clone(), a.clone()));
            }
        }
        if let Some((slot, member, u)) = self.import_member(name, str_slot)? {
            let s = u.exports.str(name).expect("slot implies presence").clone();
            let base = Access::Local(self.import_lvars[slot as usize]);
            return Ok((s, Some(base.field(member))));
        }
        // A structure exported without a runtime slot cannot exist; report
        // unbound.
        Err(ElabError::new(format!("unbound structure `{name}`")))
    }

    /// Resolves the structure named by `path` (all components).
    pub fn lookup_str_path(
        &self,
        path: &Path,
    ) -> Result<(Arc<StructureEnv>, Option<Access>), ElabError> {
        let (mut cur, mut acc) = self.lookup_str_root(path.root())?;
        let mut components: Vec<Symbol> = path.qualifiers.iter().skip(1).copied().collect();
        if !path.is_simple() {
            components.push(path.last);
        }
        for q in components {
            let sub = cur.bindings.str(q).ok_or_else(|| {
                ElabError::new(format!(
                    "structure `{}` has no substructure `{q}`",
                    cur_name(&cur)
                ))
            })?;
            let slot = str_slot(&cur.bindings, q)
                .ok_or_else(|| ElabError::new("internal: substructure without slot"))?;
            acc = acc.map(|a| a.field(slot));
            cur = sub.clone();
        }
        Ok((cur, acc))
    }

    /// Resolves the structure prefix of a qualified path (everything but
    /// `last`).
    fn lookup_prefix(&self, path: &Path) -> Result<(Arc<StructureEnv>, Option<Access>), ElabError> {
        let (mut cur, mut acc) = self.lookup_str_root(path.qualifiers[0])?;
        for q in &path.qualifiers[1..] {
            let sub = cur.bindings.str(*q).ok_or_else(|| {
                ElabError::new(format!(
                    "structure `{}` has no substructure `{q}`",
                    cur_name(&cur)
                ))
            })?;
            let slot = str_slot(&cur.bindings, *q)
                .ok_or_else(|| ElabError::new("internal: substructure without slot"))?;
            acc = acc.map(|a| a.field(slot));
            cur = sub.clone();
        }
        Ok((cur, acc))
    }

    pub fn lookup_val(&self, path: &Path) -> Result<(ValBind, Option<Access>), ElabError> {
        if path.is_simple() {
            let name = path.last;
            for frame in self.frames.iter().rev() {
                if let Some((_, vb, a)) = frame.vals.iter().rev().find(|(n, _, _)| *n == name) {
                    return Ok((vb.clone(), a.clone()));
                }
            }
            if let Some(vb) = self.perv.bindings.val(name) {
                return Ok((vb.clone(), None));
            }
            return Err(ElabError::new(format!("unbound variable `{name}`")));
        }
        let (str_env, acc) = self.lookup_prefix(path)?;
        let vb = str_env
            .bindings
            .val(path.last)
            .ok_or_else(|| ElabError::new(format!("structure has no value `{}`", path.last)))?;
        let access = match vb.kind {
            ValKind::Con { .. } | ValKind::Prim(_) => None,
            ValKind::Plain | ValKind::Exn => {
                let slot = val_slot(&str_env.bindings, path.last)
                    .ok_or_else(|| ElabError::new("internal: value without slot"))?;
                Some(
                    acc.ok_or_else(|| {
                        ElabError::new(format!(
                            "`{path}` has no runtime access (signature-only context)"
                        ))
                    })?
                    .field(slot),
                )
            }
        };
        Ok((vb.clone(), access))
    }

    pub fn lookup_tycon(&self, path: &Path) -> Result<Arc<Tycon>, ElabError> {
        if path.is_simple() {
            let name = path.last;
            for frame in self.frames.iter().rev() {
                if let Some((_, tc)) = frame.tycons.iter().rev().find(|(n, _)| *n == name) {
                    return Ok(tc.clone());
                }
            }
            if let Some(tc) = self.perv.bindings.tycon(name) {
                return Ok(tc.clone());
            }
            return Err(ElabError::new(format!("unbound type constructor `{name}`")));
        }
        let (str_env, _) = self.lookup_prefix(path)?;
        str_env
            .bindings
            .tycon(path.last)
            .cloned()
            .ok_or_else(|| ElabError::new(format!("structure has no type `{}`", path.last)))
    }

    pub fn lookup_sig(&self, name: Symbol) -> Result<Arc<SignatureEnv>, ElabError> {
        for frame in self.frames.iter().rev() {
            if let Some((_, s)) = frame.sigs.iter().rev().find(|(n, _)| *n == name) {
                return Ok(s.clone());
            }
        }
        // Under shadowing (interactive sessions) the latest import wins.
        let mut hit = None;
        for u in &self.imports.units {
            if let Some(s) = u.exports.sig(name) {
                hit = Some(s.clone());
                if !self.imports.shadowing {
                    break;
                }
            }
        }
        hit.ok_or_else(|| ElabError::new(format!("unbound signature `{name}`")))
    }

    pub fn lookup_fct(&self, name: Symbol) -> Result<(Arc<FunctorEnv>, Option<Access>), ElabError> {
        for frame in self.frames.iter().rev() {
            if let Some((_, f, a)) = frame.fcts.iter().rev().find(|(n, _, _)| *n == name) {
                return Ok((f.clone(), a.clone()));
            }
        }
        if let Some((slot, member, u)) = self.import_member(name, fct_slot)? {
            let f = u.exports.fct(name).expect("slot implies presence").clone();
            let base = Access::Local(self.import_lvars[slot as usize]);
            return Ok((f, Some(base.field(member))));
        }
        Err(ElabError::new(format!("unbound functor `{name}`")))
    }
}

fn cur_name(s: &StructureEnv) -> String {
    format!("<structure {}>", s.stamp)
}

/// Builds the IR coercing a record laid out per `actual` into one laid out
/// per `view` (signature thinning; §2's ascription, and argument passing
/// at functor applications).
pub(crate) fn coerce_ir(
    el: &mut Elaborator<'_>,
    actual: &Bindings,
    view: &Bindings,
    base: Ir,
) -> Result<Ir, ElabError> {
    if same_layout(actual, view) {
        return Ok(base);
    }
    let v = el.fresh_lvar();
    let body = build_view_record(el, actual, view, &Access::Local(v))?;
    Ok(Ir::Let(
        vec![IrDec::Val(smlsc_dynamics::ir::IrPat::Var(v), base)],
        Box::new(body),
    ))
}

fn build_view_record(
    el: &mut Elaborator<'_>,
    actual: &Bindings,
    view: &Bindings,
    base: &Access,
) -> Result<Ir, ElabError> {
    let mut fields = Vec::new();
    for slot in runtime_slots(view) {
        let ir = match slot {
            Slot::Val(name) => {
                let avb = actual
                    .val(name)
                    .ok_or_else(|| ElabError::new(format!("coercion: missing value `{name}`")))?;
                match &avb.kind {
                    ValKind::Plain | ValKind::Exn => {
                        let s = val_slot(actual, name)
                            .ok_or_else(|| ElabError::new("internal: value without slot"))?;
                        base.field(s).ir()
                    }
                    ValKind::Con { tag, .. } => {
                        if tag.has_arg {
                            Ir::ConFn(*tag)
                        } else {
                            Ir::Con(*tag, None)
                        }
                    }
                    ValKind::Prim(op) => {
                        let v = el.fresh_lvar();
                        Ir::Fn(vec![smlsc_dynamics::ir::IrRule {
                            pat: smlsc_dynamics::ir::IrPat::Var(v),
                            body: Ir::Prim(*op, vec![Ir::Local(v)]),
                        }])
                    }
                }
            }
            Slot::Str(name) => {
                let astr = actual.str(name).ok_or_else(|| {
                    ElabError::new(format!("coercion: missing structure `{name}`"))
                })?;
                let vstr = view.str(name).expect("view slot implies presence");
                let s = str_slot(actual, name)
                    .ok_or_else(|| ElabError::new("internal: structure without slot"))?;
                if same_layout(&astr.bindings, &vstr.bindings) {
                    base.field(s).ir()
                } else {
                    let inner = el.fresh_lvar();
                    let body = build_view_record(
                        el,
                        &astr.bindings,
                        &vstr.bindings,
                        &Access::Local(inner),
                    )?;
                    Ir::Let(
                        vec![IrDec::Val(
                            smlsc_dynamics::ir::IrPat::Var(inner),
                            base.field(s).ir(),
                        )],
                        Box::new(body),
                    )
                }
            }
            Slot::Fct(name) => {
                let s = fct_slot(actual, name)
                    .ok_or_else(|| ElabError::new(format!("coercion: missing functor `{name}`")))?;
                base.field(s).ir()
            }
        };
        fields.push(ir);
    }
    Ok(Ir::Record(fields))
}

/// True when both binding sets induce identical runtime layouts (so no
/// coercion record needs to be built).
pub(crate) fn same_layout(a: &Bindings, b: &Bindings) -> bool {
    let sa = runtime_slots(a);
    let sb = runtime_slots(b);
    if sa != sb {
        return false;
    }
    sa.iter().all(|slot| match slot {
        Slot::Str(name) => {
            let x = a.str(*name).expect("slot implies presence");
            let y = b.str(*name).expect("slot implies presence");
            same_layout(&x.bindings, &y.bindings)
        }
        _ => true,
    })
}
