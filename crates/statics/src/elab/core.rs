//! Core-language elaboration: expressions, patterns, declarations.

use std::collections::HashMap;
use std::sync::Arc;

use smlsc_dynamics::ir::{ConTag, Ir, IrDec, IrPat, IrRule, LVar};
use smlsc_ids::Symbol;
use smlsc_syntax::ast::{Clause, DatBind, Dec, Exp, FunBind, Lit, Pat, PrimOp, Rule, Ty};

use crate::env::{ValBind, ValKind};
use crate::error::ElabError;
use crate::types::{
    format_type, generalize, subst_params, unify, ConDef, DatatypeInfo, Scheme, Tycon, TyconDef,
    Type, UnifyError,
};

use super::{Access, Elaborator};

/// How type variables in a `Ty` AST are interpreted.
pub(crate) enum TyvarMode<'m> {
    /// `'a` must be one of the declared parameters (datatype/type/spec).
    Params(&'m HashMap<Symbol, u32>),
    /// `'a` denotes a scoped unification variable (expression contexts).
    UVars,
}

impl<'a> Elaborator<'a> {
    fn unify_err(&self, e: UnifyError) -> ElabError {
        ElabError::new(e.to_string())
    }

    // ----- types ------------------------------------------------------------

    pub(crate) fn elab_ty(&mut self, ty: &Ty, mode: &TyvarMode<'_>) -> Result<Type, ElabError> {
        match ty {
            Ty::Var(name) => match mode {
                TyvarMode::Params(map) => map
                    .get(name)
                    .map(|i| Type::Param(*i))
                    .ok_or_else(|| ElabError::new(format!("unbound type variable `'{name}`"))),
                TyvarMode::UVars => {
                    if let Some(t) = self.tyvars.iter().rev().find_map(|scope| scope.get(name)) {
                        return Ok(t.clone());
                    }
                    let t = Type::fresh(self.level);
                    self.tyvars
                        .last_mut()
                        .expect("tyvar scope")
                        .insert(*name, t.clone());
                    Ok(t)
                }
            },
            Ty::Con(path, args) => {
                let tc = self.lookup_tycon(path)?;
                if tc.arity != args.len() {
                    return Err(ElabError::new(format!(
                        "type constructor `{path}` expects {} argument(s), got {}",
                        tc.arity,
                        args.len()
                    )));
                }
                let args = args
                    .iter()
                    .map(|a| self.elab_ty(a, mode))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(Type::Con(tc, args))
            }
            Ty::Tuple(ts) => Ok(Type::Tuple(
                ts.iter()
                    .map(|t| self.elab_ty(t, mode))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            Ty::Arrow(a, b) => Ok(Type::Arrow(
                Box::new(self.elab_ty(a, mode)?),
                Box::new(self.elab_ty(b, mode)?),
            )),
        }
    }

    // ----- expressions --------------------------------------------------------

    pub(crate) fn elab_exp(&mut self, exp: &Exp) -> Result<(Type, Ir), ElabError> {
        match exp {
            Exp::Lit(l) => Ok(self.elab_lit(l)),
            Exp::Var(path) => {
                let (vb, access) = self.lookup_val(path)?;
                let ty = vb.scheme.instantiate(self.level);
                let ir = match &vb.kind {
                    ValKind::Plain | ValKind::Exn => access
                        .as_ref()
                        .map(Access::ir)
                        .ok_or_else(|| ElabError::new(format!("`{path}` has no runtime value")))?,
                    ValKind::Con { tag, .. } => {
                        if tag.has_arg {
                            Ir::ConFn(*tag)
                        } else {
                            Ir::Con(*tag, None)
                        }
                    }
                    // Eta-expand a first-class primitive.
                    ValKind::Prim(op) => {
                        let v = self.fresh_lvar();
                        Ir::Fn(vec![IrRule {
                            pat: IrPat::Var(v),
                            body: Ir::Prim(*op, vec![Ir::Local(v)]),
                        }])
                    }
                };
                Ok((ty, ir))
            }
            Exp::Tuple(es) => {
                let mut tys = Vec::new();
                let mut irs = Vec::new();
                for e in es {
                    let (t, ir) = self.elab_exp(e)?;
                    tys.push(t);
                    irs.push(ir);
                }
                Ok((Type::Tuple(tys), Ir::Tuple(irs)))
            }
            Exp::List(es) => {
                let elem = Type::fresh(self.level);
                let mut irs = Vec::new();
                for e in es {
                    let (t, ir) = self.elab_exp(e)?;
                    unify(&t, &elem).map_err(|e| self.unify_err(e))?;
                    irs.push(ir);
                }
                let nil = self.perv.nil_tag();
                let cons = self.perv.cons_tag();
                let list_ir = irs.into_iter().rev().fold(Ir::Con(nil, None), |acc, x| {
                    Ir::Con(cons, Some(Box::new(Ir::Tuple(vec![x, acc]))))
                });
                Ok((self.perv.list_ty(elem), list_ir))
            }
            Exp::App(f, a) => {
                // Direct constructor application avoids a closure.
                if let Exp::Var(path) = f.as_ref() {
                    if let Ok((vb, access)) = self.lookup_val(path) {
                        match &vb.kind {
                            ValKind::Con { tag, .. } if tag.has_arg => {
                                let con_ty = vb.scheme.instantiate(self.level);
                                let Type::Arrow(at, rt) = con_ty.head_normalize() else {
                                    return Err(ElabError::new("constructor type is not an arrow"));
                                };
                                let (t, ir) = self.elab_exp(a)?;
                                unify(&t, &at).map_err(|e| self.unify_err(e))?;
                                return Ok((*rt, Ir::Con(*tag, Some(Box::new(ir)))));
                            }
                            ValKind::Prim(op) => {
                                // Direct primitive application avoids the
                                // eta closure.
                                let prim_ty = vb.scheme.instantiate(self.level);
                                let Type::Arrow(at, rt) = prim_ty.head_normalize() else {
                                    return Err(ElabError::new("primitive type is not an arrow"));
                                };
                                let (t, ir) = self.elab_exp(a)?;
                                unify(&t, &at).map_err(|e| self.unify_err(e))?;
                                return Ok((*rt, Ir::Prim(*op, vec![ir])));
                            }
                            ValKind::Exn => {
                                // Fall through to generic application using
                                // the exception constructor's slot value.
                                let _ = access;
                            }
                            _ => {}
                        }
                    }
                }
                let (ft, fir) = self.elab_exp(f)?;
                let (at, air) = self.elab_exp(a)?;
                let rt = Type::fresh(self.level);
                unify(&ft, &Type::Arrow(Box::new(at), Box::new(rt.clone())))
                    .map_err(|e| self.unify_err(e))?;
                Ok((rt, Ir::App(Box::new(fir), Box::new(air))))
            }
            Exp::Prim(op, args) => self.elab_prim(*op, args),
            Exp::Andalso(a, b) => {
                let (ta, ia) = self.elab_exp(a)?;
                let (tb, ib) = self.elab_exp(b)?;
                unify(&ta, &self.perv.bool_ty()).map_err(|e| self.unify_err(e))?;
                unify(&tb, &self.perv.bool_ty()).map_err(|e| self.unify_err(e))?;
                let f = Ir::Con(self.perv.bool_tag(false), None);
                Ok((
                    self.perv.bool_ty(),
                    Ir::If(Box::new(ia), Box::new(ib), Box::new(f)),
                ))
            }
            Exp::Orelse(a, b) => {
                let (ta, ia) = self.elab_exp(a)?;
                let (tb, ib) = self.elab_exp(b)?;
                unify(&ta, &self.perv.bool_ty()).map_err(|e| self.unify_err(e))?;
                unify(&tb, &self.perv.bool_ty()).map_err(|e| self.unify_err(e))?;
                let t = Ir::Con(self.perv.bool_tag(true), None);
                Ok((
                    self.perv.bool_ty(),
                    Ir::If(Box::new(ia), Box::new(t), Box::new(ib)),
                ))
            }
            Exp::Fn(rules) => {
                let arg = Type::fresh(self.level);
                let res = Type::fresh(self.level);
                let irrules = self.elab_rules(rules, &arg, &res)?;
                self.check_match("fn expression", &irrules);
                Ok((Type::Arrow(Box::new(arg), Box::new(res)), Ir::Fn(irrules)))
            }
            Exp::Let(decs, body) => {
                self.frames.push(super::Frame::default());
                let mut irdecs = Vec::new();
                for d in decs {
                    self.elab_dec(d, &mut irdecs)?;
                }
                let (t, bir) = self.elab_exp(body)?;
                self.frames.pop();
                Ok((t, Ir::Let(irdecs, Box::new(bir))))
            }
            Exp::If(c, t, e) => {
                let (tc, ic) = self.elab_exp(c)?;
                unify(&tc, &self.perv.bool_ty()).map_err(|e| self.unify_err(e))?;
                let (tt, it) = self.elab_exp(t)?;
                let (te, ie) = self.elab_exp(e)?;
                unify(&tt, &te).map_err(|e| self.unify_err(e))?;
                Ok((tt, Ir::If(Box::new(ic), Box::new(it), Box::new(ie))))
            }
            Exp::Case(scrut, rules) => {
                let (ts, is) = self.elab_exp(scrut)?;
                let res = Type::fresh(self.level);
                let irrules = self.elab_rules(rules, &ts, &res)?;
                self.check_match("case expression", &irrules);
                Ok((res, Ir::Case(Box::new(is), irrules)))
            }
            Exp::Raise(e) => {
                let (t, ir) = self.elab_exp(e)?;
                unify(&t, &self.perv.exn_ty()).map_err(|e| self.unify_err(e))?;
                Ok((Type::fresh(self.level), Ir::Raise(Box::new(ir))))
            }
            Exp::Handle(e, rules) => {
                let (t, ir) = self.elab_exp(e)?;
                let exn = self.perv.exn_ty();
                let irrules = self.elab_rules(rules, &exn, &t)?;
                Ok((t, Ir::Handle(Box::new(ir), irrules)))
            }
            Exp::Seq(es) => {
                let mut last_ty = self.perv.unit_ty();
                let mut irs = Vec::new();
                for e in es {
                    let (t, ir) = self.elab_exp(e)?;
                    last_ty = t;
                    irs.push(ir);
                }
                Ok((last_ty, Ir::Seq(irs)))
            }
            Exp::Ascribe(e, ty) => {
                let (t, ir) = self.elab_exp(e)?;
                let want = self.elab_ty(ty, &TyvarMode::UVars)?;
                unify(&t, &want).map_err(|e| self.unify_err(e))?;
                Ok((want, ir))
            }
        }
    }

    fn elab_lit(&self, l: &Lit) -> (Type, Ir) {
        match l {
            Lit::Int(n) => (self.perv.int_ty(), Ir::Int(*n)),
            Lit::Str(s) => (self.perv.string_ty(), Ir::Str(s.clone())),
            Lit::Unit => (self.perv.unit_ty(), Ir::Unit),
        }
    }

    fn elab_prim(&mut self, op: PrimOp, args: &[Exp]) -> Result<(Type, Ir), ElabError> {
        use PrimOp::*;
        let mut tys = Vec::new();
        let mut irs = Vec::new();
        for a in args {
            let (t, ir) = self.elab_exp(a)?;
            tys.push(t);
            irs.push(ir);
        }
        let int = self.perv.int_ty();
        let string = self.perv.string_ty();
        let bool_ty = self.perv.bool_ty();
        let result = match op {
            Neg => {
                unify(&tys[0], &int).map_err(|e| self.unify_err(e))?;
                int
            }
            Add | Sub | Mul | Div | Mod => {
                unify(&tys[0], &int).map_err(|e| self.unify_err(e))?;
                unify(&tys[1], &int).map_err(|e| self.unify_err(e))?;
                int
            }
            Concat => {
                unify(&tys[0], &string).map_err(|e| self.unify_err(e))?;
                unify(&tys[1], &string).map_err(|e| self.unify_err(e))?;
                string
            }
            Lt | Le | Gt | Ge => {
                unify(&tys[0], &tys[1]).map_err(|e| self.unify_err(e))?;
                // Overloaded over int and string; default to int when
                // unconstrained (SML's default overloading).
                match tys[0].head_normalize() {
                    Type::UVar(_) => {
                        unify(&tys[0], &int).map_err(|e| self.unify_err(e))?;
                    }
                    Type::Con(tc, _)
                        if tc.stamp == self.perv.int.stamp
                            || tc.stamp == self.perv.string.stamp => {}
                    other => {
                        return Err(ElabError::new(format!(
                            "comparison requires int or string, got {}",
                            format_type(&other)
                        )))
                    }
                }
                bool_ty
            }
            Eq | Neq => {
                unify(&tys[0], &tys[1]).map_err(|e| self.unify_err(e))?;
                bool_ty
            }
            Append => {
                let elem = Type::fresh(self.level);
                let list = self.perv.list_ty(elem);
                unify(&tys[0], &list).map_err(|e| self.unify_err(e))?;
                unify(&tys[1], &list).map_err(|e| self.unify_err(e))?;
                list
            }
            ItoS => {
                unify(&tys[0], &int).map_err(|e| self.unify_err(e))?;
                string
            }
            Size => {
                unify(&tys[0], &string).map_err(|e| self.unify_err(e))?;
                int
            }
        };
        Ok((result, Ir::Prim(op, irs)))
    }

    /// Runs exhaustiveness/redundancy analysis on an elaborated match and
    /// records warnings.  `handle` matches are never checked (falling
    /// through re-raises by design).
    pub(crate) fn check_match(&mut self, what: &str, rules: &[IrRule]) {
        let analysis = crate::matchcomp::analyze_match(rules);
        if analysis.inexhaustive {
            self.warn(format!("{what}: match is not exhaustive"));
        }
        for i in analysis.redundant {
            self.warn(format!("{what}: rule {} is redundant", i + 1));
        }
    }

    /// Elaborates a match (used by `fn`, `case`, `handle`).
    pub(crate) fn elab_rules(
        &mut self,
        rules: &[Rule],
        arg_ty: &Type,
        res_ty: &Type,
    ) -> Result<Vec<IrRule>, ElabError> {
        let mut out = Vec::new();
        for r in rules {
            let mut binds = Vec::new();
            let (pt, irpat) = self.elab_pat(&r.pat, &mut binds)?;
            unify(&pt, arg_ty).map_err(|e| self.unify_err(e))?;
            self.frames.push(super::Frame::default());
            for (name, lv, ty) in &binds {
                self.cur_frame().vals.push((
                    *name,
                    ValBind {
                        scheme: Scheme::mono(ty.clone()),
                        kind: ValKind::Plain,
                    },
                    Some(Access::Local(*lv)),
                ));
            }
            let body = self.elab_exp(&r.exp);
            self.frames.pop();
            let (bt, bir) = body?;
            unify(&bt, res_ty).map_err(|e| self.unify_err(e))?;
            out.push(IrRule {
                pat: irpat,
                body: bir,
            });
        }
        Ok(out)
    }

    // ----- patterns -------------------------------------------------------------

    pub(crate) fn elab_pat(
        &mut self,
        pat: &Pat,
        binds: &mut Vec<(Symbol, LVar, Type)>,
    ) -> Result<(Type, IrPat), ElabError> {
        match pat {
            Pat::Wild => Ok((Type::fresh(self.level), IrPat::Wild)),
            Pat::Lit(l) => {
                let (t, _) = self.elab_lit(l);
                let p = match l {
                    Lit::Int(n) => IrPat::Int(*n),
                    Lit::Str(s) => IrPat::Str(s.clone()),
                    Lit::Unit => IrPat::Unit,
                };
                Ok((t, p))
            }
            Pat::Var(path) => {
                // A name bound as a constructor is a constructor pattern;
                // anything else (when unqualified) is a binder.
                if let Ok((vb, access)) = self.lookup_val(path) {
                    match &vb.kind {
                        ValKind::Con { tag, .. } => {
                            if tag.has_arg {
                                return Err(ElabError::new(format!(
                                    "constructor `{path}` expects an argument in patterns"
                                )));
                            }
                            return Ok((vb.scheme.instantiate(self.level), IrPat::Con(*tag, None)));
                        }
                        ValKind::Exn => {
                            let t = vb.scheme.instantiate(self.level);
                            if matches!(t.head_normalize(), Type::Arrow(..)) {
                                return Err(ElabError::new(format!(
                                    "exception `{path}` expects an argument in patterns"
                                )));
                            }
                            let acc = access.ok_or_else(|| {
                                ElabError::new(format!("exception `{path}` has no runtime access"))
                            })?;
                            return Ok((self.perv.exn_ty(), IrPat::Exn(Box::new(acc.ir()), None)));
                        }
                        ValKind::Plain | ValKind::Prim(_) => {}
                    }
                }
                if !path.is_simple() {
                    return Err(ElabError::new(format!(
                        "`{path}` is not a constructor and qualified names cannot bind"
                    )));
                }
                if binds.iter().any(|(n, _, _)| *n == path.last) {
                    return Err(ElabError::new(format!(
                        "duplicate variable `{}` in pattern",
                        path.last
                    )));
                }
                let lv = self.fresh_lvar();
                let t = Type::fresh(self.level);
                binds.push((path.last, lv, t.clone()));
                Ok((t, IrPat::Var(lv)))
            }
            Pat::Tuple(ps) => {
                let mut tys = Vec::new();
                let mut irs = Vec::new();
                for p in ps {
                    let (t, ir) = self.elab_pat(p, binds)?;
                    tys.push(t);
                    irs.push(ir);
                }
                Ok((Type::Tuple(tys), IrPat::Tuple(irs)))
            }
            Pat::List(ps) => {
                let elem = Type::fresh(self.level);
                let mut irs = Vec::new();
                for p in ps {
                    let (t, ir) = self.elab_pat(p, binds)?;
                    unify(&t, &elem).map_err(|e| self.unify_err(e))?;
                    irs.push(ir);
                }
                let nil = self.perv.nil_tag();
                let cons = self.perv.cons_tag();
                let pat = irs.into_iter().rev().fold(IrPat::Con(nil, None), |acc, x| {
                    IrPat::Con(cons, Some(Box::new(IrPat::Tuple(vec![x, acc]))))
                });
                Ok((self.perv.list_ty(elem), pat))
            }
            Pat::Con(path, argp) => {
                let (vb, access) = self.lookup_val(path)?;
                match &vb.kind {
                    ValKind::Con { tag, .. } => {
                        if !tag.has_arg {
                            return Err(ElabError::new(format!(
                                "constructor `{path}` takes no argument"
                            )));
                        }
                        let con_ty = vb.scheme.instantiate(self.level);
                        let Type::Arrow(at, rt) = con_ty.head_normalize() else {
                            return Err(ElabError::new("constructor type is not an arrow"));
                        };
                        let (t, irp) = self.elab_pat(argp, binds)?;
                        unify(&t, &at).map_err(|e| self.unify_err(e))?;
                        Ok((*rt, IrPat::Con(*tag, Some(Box::new(irp)))))
                    }
                    ValKind::Exn => {
                        let t = vb.scheme.instantiate(self.level);
                        let Type::Arrow(at, _) = t.head_normalize() else {
                            return Err(ElabError::new(format!(
                                "exception `{path}` takes no argument"
                            )));
                        };
                        let (pt, irp) = self.elab_pat(argp, binds)?;
                        unify(&pt, &at).map_err(|e| self.unify_err(e))?;
                        let acc = access.ok_or_else(|| {
                            ElabError::new(format!("exception `{path}` has no runtime access"))
                        })?;
                        Ok((
                            self.perv.exn_ty(),
                            IrPat::Exn(Box::new(acc.ir()), Some(Box::new(irp))),
                        ))
                    }
                    ValKind::Plain | ValKind::Prim(_) => {
                        Err(ElabError::new(format!("`{path}` is not a constructor")))
                    }
                }
            }
            Pat::Ascribe(p, ty) => {
                let (t, irp) = self.elab_pat(p, binds)?;
                let want = self.elab_ty(ty, &TyvarMode::UVars)?;
                unify(&t, &want).map_err(|e| self.unify_err(e))?;
                Ok((want, irp))
            }
            Pat::As(name, inner) => {
                let lv = self.fresh_lvar();
                let (t, irp) = self.elab_pat(inner, binds)?;
                // The layered name must not collide with anything the
                // sub-pattern (or siblings) bound.
                if binds.iter().any(|(n, _, _)| n == name) {
                    return Err(ElabError::new(format!(
                        "duplicate variable `{name}` in pattern"
                    )));
                }
                binds.push((*name, lv, t.clone()));
                Ok((t, IrPat::As(lv, Box::new(irp))))
            }
        }
    }

    // ----- declarations -----------------------------------------------------------

    pub(crate) fn elab_dec(&mut self, dec: &Dec, out: &mut Vec<IrDec>) -> Result<(), ElabError> {
        match dec {
            Dec::Val { pat, exp, loc } => {
                self.level += 1;
                self.tyvars.push(HashMap::new());
                let res = (|| {
                    let (et, eir) = self.elab_exp(exp)?;
                    let mut binds = Vec::new();
                    let (pt, irpat) = self.elab_pat(pat, &mut binds)?;
                    unify(&et, &pt).map_err(|e| self.unify_err(e))?;
                    Ok((eir, irpat, binds))
                })();
                self.tyvars.pop();
                self.level -= 1;
                let (eir, irpat, binds) = res.map_err(|e: ElabError| e.at(*loc))?;
                if !crate::matchcomp::irrefutable(&irpat) {
                    self.warn(format!(
                        "val binding at {loc} may fail: the pattern is refutable"
                    ));
                }
                let generalizable = nonexpansive(exp);
                for (name, lv, ty) in binds {
                    let scheme = if generalizable {
                        generalize(self.level, &ty)
                    } else {
                        Scheme::mono(ty)
                    };
                    self.cur_frame().vals.push((
                        name,
                        ValBind {
                            scheme,
                            kind: ValKind::Plain,
                        },
                        Some(Access::Local(lv)),
                    ));
                }
                out.push(IrDec::Val(irpat, eir));
                Ok(())
            }
            Dec::Fun(fbs) => self.elab_funbinds(fbs, out),
            Dec::Type { tyvars, name, def } => {
                let map: HashMap<Symbol, u32> = tyvars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (*v, i as u32))
                    .collect();
                let body = self.elab_ty(def, &TyvarMode::Params(&map))?;
                let tc = Tycon::new(
                    self.stamper.fresh(),
                    *name,
                    tyvars.len(),
                    TyconDef::Alias(body),
                );
                self.cur_frame().tycons.push((*name, tc));
                Ok(())
            }
            Dec::Datatype(dbs) => {
                self.elab_datbinds(dbs, None)?;
                Ok(())
            }
            Dec::Exception { name, arg } => {
                let exn = self.perv.exn_ty();
                let empty = HashMap::new();
                let (scheme, has_arg) = match arg {
                    None => (Scheme::mono(exn), false),
                    Some(ty) => {
                        let at = self.elab_ty(ty, &TyvarMode::Params(&empty))?;
                        (Scheme::mono(Type::Arrow(Box::new(at), Box::new(exn))), true)
                    }
                };
                let lv = self.fresh_lvar();
                out.push(IrDec::Exception {
                    lvar: lv,
                    name: *name,
                    has_arg,
                });
                self.cur_frame().vals.push((
                    *name,
                    ValBind {
                        scheme,
                        kind: ValKind::Exn,
                    },
                    Some(Access::Local(lv)),
                ));
                Ok(())
            }
            Dec::Local(hidden, visible) => {
                self.frames.push(super::Frame::default());
                for d in hidden {
                    self.elab_dec(d, out)?;
                }
                self.frames.push(super::Frame::default());
                for d in visible {
                    self.elab_dec(d, out)?;
                }
                let vis = self.frames.pop().expect("visible frame");
                self.frames.pop();
                let outer = self.cur_frame();
                outer.vals.extend(vis.vals);
                outer.tycons.extend(vis.tycons);
                outer.strs.extend(vis.strs);
                outer.sigs.extend(vis.sigs);
                outer.fcts.extend(vis.fcts);
                Ok(())
            }
            Dec::Open(paths) => {
                for path in paths {
                    let (str_env, access) = self.lookup_str_path(path)?;
                    self.open_structure(&str_env, access)?;
                }
                Ok(())
            }
        }
    }

    /// Splices a structure's bindings into the current frame, deriving
    /// member accesses from the structure's access.
    pub(crate) fn open_structure(
        &mut self,
        str_env: &Arc<crate::env::StructureEnv>,
        access: Option<Access>,
    ) -> Result<(), ElabError> {
        let b = &str_env.bindings;
        let entries: Vec<(Symbol, ValBind, Option<Access>)> = b
            .vals
            .iter()
            .map(|(n, vb)| {
                let acc = match vb.kind {
                    ValKind::Con { .. } | ValKind::Prim(_) => None,
                    ValKind::Plain | ValKind::Exn => crate::env::val_slot(b, *n)
                        .and_then(|s| access.as_ref().map(|a| a.field(s))),
                };
                (*n, vb.clone(), acc)
            })
            .collect();
        let strs: Vec<_> = b
            .strs
            .iter()
            .map(|(n, s)| {
                let acc = crate::env::str_slot(b, *n)
                    .and_then(|slot| access.as_ref().map(|a| a.field(slot)));
                (*n, s.clone(), acc)
            })
            .collect();
        let fcts: Vec<_> = b
            .fcts
            .iter()
            .map(|(n, f)| {
                let acc = crate::env::fct_slot(b, *n)
                    .and_then(|slot| access.as_ref().map(|a| a.field(slot)));
                (*n, f.clone(), acc)
            })
            .collect();
        let frame = self.cur_frame();
        frame.vals.extend(entries);
        frame.tycons.extend(b.tycons.iter().cloned());
        frame.strs.extend(strs);
        frame.sigs.extend(b.sigs.iter().cloned());
        frame.fcts.extend(fcts);
        Ok(())
    }

    fn elab_funbinds(&mut self, fbs: &[FunBind], out: &mut Vec<IrDec>) -> Result<(), ElabError> {
        self.level += 1;
        self.tyvars.push(HashMap::new());
        // Bind every function monomorphically for the recursive group.
        let fn_tys: Vec<Type> = fbs.iter().map(|_| Type::fresh(self.level)).collect();
        let lvars: Vec<LVar> = fbs.iter().map(|_| self.fresh_lvar()).collect();
        self.frames.push(super::Frame::default());
        for ((fb, ty), lv) in fbs.iter().zip(&fn_tys).zip(&lvars) {
            self.cur_frame().vals.push((
                fb.name,
                ValBind {
                    scheme: Scheme::mono(ty.clone()),
                    kind: ValKind::Plain,
                },
                Some(Access::Local(*lv)),
            ));
        }
        let compiled: Result<Vec<Vec<IrRule>>, ElabError> = fbs
            .iter()
            .zip(&fn_tys)
            .map(|(fb, ty)| self.compile_clauses(fb, ty).map_err(|e| e.at(fb.loc)))
            .collect();
        self.frames.pop();
        self.tyvars.pop();
        self.level -= 1;
        let compiled = compiled?;
        out.push(IrDec::Fix(lvars.iter().copied().zip(compiled).collect()));
        for ((fb, ty), lv) in fbs.iter().zip(&fn_tys).zip(&lvars) {
            let scheme = generalize(self.level, ty);
            self.cur_frame().vals.push((
                fb.name,
                ValBind {
                    scheme,
                    kind: ValKind::Plain,
                },
                Some(Access::Local(*lv)),
            ));
        }
        Ok(())
    }

    /// Compiles the clauses of one `fun` binding into the rules of its
    /// outermost lambda; multi-parameter clause groups become nested
    /// lambdas over a tuple-matching `case`.
    fn compile_clauses(&mut self, fb: &FunBind, fn_ty: &Type) -> Result<Vec<IrRule>, ElabError> {
        let arity = fb.clauses[0].params.len();
        if arity == 1 {
            let arg = Type::fresh(self.level);
            let res = Type::fresh(self.level);
            unify(
                fn_ty,
                &Type::Arrow(Box::new(arg.clone()), Box::new(res.clone())),
            )
            .map_err(|e| self.unify_err(e))?;
            let mut rules = Vec::new();
            for cl in &fb.clauses {
                rules.push(self.elab_clause_rule(cl, std::slice::from_ref(&arg), &res)?);
            }
            self.check_match(&format!("function `{}`", fb.name), &rules);
            return Ok(rules);
        }
        // Curried: t1 -> t2 -> ... -> res
        let param_tys: Vec<Type> = (0..arity).map(|_| Type::fresh(self.level)).collect();
        let res = Type::fresh(self.level);
        let full = param_tys.iter().rev().fold(res.clone(), |acc, t| {
            Type::Arrow(Box::new(t.clone()), Box::new(acc))
        });
        unify(fn_ty, &full).map_err(|e| self.unify_err(e))?;
        let mut case_rules = Vec::new();
        for cl in &fb.clauses {
            case_rules.push(self.elab_clause_rule(cl, &param_tys, &res)?);
        }
        self.check_match(&format!("function `{}`", fb.name), &case_rules);
        let param_lvars: Vec<LVar> = (0..arity).map(|_| self.fresh_lvar()).collect();
        let scrut = Ir::Tuple(param_lvars.iter().map(|v| Ir::Local(*v)).collect());
        let mut body = Ir::Case(Box::new(scrut), case_rules);
        for lv in param_lvars.iter().skip(1).rev() {
            body = Ir::Fn(vec![IrRule {
                pat: IrPat::Var(*lv),
                body,
            }]);
        }
        Ok(vec![IrRule {
            pat: IrPat::Var(param_lvars[0]),
            body,
        }])
    }

    /// Elaborates one clause into a rule matching the tuple of its
    /// parameters (or the single parameter when `param_tys.len() == 1`).
    fn elab_clause_rule(
        &mut self,
        cl: &Clause,
        param_tys: &[Type],
        res: &Type,
    ) -> Result<IrRule, ElabError> {
        let mut binds = Vec::new();
        let mut irpats = Vec::new();
        for (p, want) in cl.params.iter().zip(param_tys) {
            let (t, irp) = self.elab_pat(p, &mut binds)?;
            unify(&t, want).map_err(|e| self.unify_err(e))?;
            irpats.push(irp);
        }
        self.frames.push(super::Frame::default());
        for (name, lv, ty) in &binds {
            self.cur_frame().vals.push((
                *name,
                ValBind {
                    scheme: Scheme::mono(ty.clone()),
                    kind: ValKind::Plain,
                },
                Some(Access::Local(*lv)),
            ));
        }
        let body = (|| {
            let (bt, bir) = self.elab_exp(&cl.body)?;
            if let Some(rt) = &cl.result_ty {
                let want = self.elab_ty(rt, &TyvarMode::UVars)?;
                unify(&bt, &want).map_err(|e| self.unify_err(e))?;
            }
            unify(&bt, res).map_err(|e| self.unify_err(e))?;
            Ok(bir)
        })();
        self.frames.pop();
        let bir = body?;
        let pat = if irpats.len() == 1 {
            irpats.pop().expect("one pattern")
        } else {
            IrPat::Tuple(irpats)
        };
        Ok(IrRule { pat, body: bir })
    }

    /// Elaborates a (possibly mutually recursive) datatype group; when
    /// `bound` is provided (signature specs), the new stamps are recorded
    /// as flexible.
    pub(crate) fn elab_datbinds(
        &mut self,
        dbs: &[DatBind],
        mut bound: Option<&mut Vec<smlsc_ids::Stamp>>,
    ) -> Result<Vec<Arc<Tycon>>, ElabError> {
        // Phase 1: allocate all tycons so constructors can reference the
        // whole group.
        let mut tycons = Vec::new();
        for db in dbs {
            let tc = Tycon::new(
                self.stamper.fresh(),
                db.name,
                db.tyvars.len(),
                TyconDef::Abstract,
            );
            self.cur_frame().tycons.push((db.name, tc.clone()));
            if let Some(b) = bound.as_deref_mut() {
                b.push(tc.stamp);
            }
            tycons.push(tc);
        }
        // Phase 2: elaborate constructors and fill definitions.
        for (db, tc) in dbs.iter().zip(&tycons) {
            let map: HashMap<Symbol, u32> = db
                .tyvars
                .iter()
                .enumerate()
                .map(|(i, v)| (*v, i as u32))
                .collect();
            let mut cons = Vec::new();
            for (name, arg) in &db.cons {
                let arg_ty = match arg {
                    None => None,
                    Some(ty) => Some(self.elab_ty(ty, &TyvarMode::Params(&map))?),
                };
                cons.push(ConDef {
                    name: *name,
                    arg: arg_ty,
                });
            }
            let span = cons.len() as u32;
            *tc.def.write() = TyconDef::Datatype(DatatypeInfo { cons: cons.clone() });
            // Bind the constructors as values.
            let params: Vec<Type> = (0..db.tyvars.len() as u32).map(Type::Param).collect();
            let data_ty = Type::Con(tc.clone(), params);
            for (i, c) in cons.iter().enumerate() {
                let body = match &c.arg {
                    None => data_ty.clone(),
                    Some(at) => Type::Arrow(
                        Box::new(subst_params(
                            at,
                            &(0..db.tyvars.len() as u32)
                                .map(Type::Param)
                                .collect::<Vec<_>>(),
                        )),
                        Box::new(data_ty.clone()),
                    ),
                };
                let tag = ConTag {
                    tag: i as u32,
                    span,
                    has_arg: c.arg.is_some(),
                    name: c.name,
                };
                self.cur_frame().vals.push((
                    c.name,
                    ValBind {
                        scheme: Scheme {
                            arity: db.tyvars.len() as u32,
                            body,
                        },
                        kind: ValKind::Con {
                            tycon: tc.clone(),
                            tag,
                        },
                    },
                    None,
                ));
            }
        }
        Ok(tycons)
    }
}

/// SML's value restriction: only syntactic values may be generalized.
pub(crate) fn nonexpansive(e: &Exp) -> bool {
    match e {
        Exp::Lit(_) | Exp::Var(_) | Exp::Fn(_) => true,
        Exp::Tuple(es) | Exp::List(es) => es.iter().all(nonexpansive),
        Exp::Ascribe(e, _) => nonexpansive(e),
        // Constructor application of a value is a value; conservatively we
        // accept `Var applied to nonexpansive` only when the head is a bare
        // variable (the elaborator will have ensured it is a constructor or
        // this is a (possibly effectful) call — being conservative here only
        // costs polymorphism, never soundness... but a function call CAN
        // allocate a ref in a richer language, so restrict to constructor
        // syntax: a single application whose head is a capitalized-looking
        // path is still not decidable syntactically. Be conservative.
        _ => false,
    }
}
