//! Module-language elaboration: structures, signatures, functors.
//!
//! This is where the paper's §2 semantics lives: transparent signature
//! matching (clients of `FSort = TopSort(Factors)` see `FSort.t = int`),
//! opaque ascription, and generative functor application.

use std::collections::HashMap;
use std::sync::Arc;

use smlsc_dynamics::ir::{Ir, IrDec, IrPat};
use smlsc_ids::{StampGenerator, Symbol};
use smlsc_syntax::ast::{SigExp, Spec, StrDec, StrExp, TopDec, Ty};

use crate::env::{FunctorEnv, SignatureEnv, StructureEnv, ValBind, ValKind};
use crate::error::ElabError;
use crate::realize::Realizer;
use crate::sigmatch::{instantiate, match_structure};
use crate::types::{Scheme, Tycon, TyconDef, Type};

use super::core::TyvarMode;
use super::{coerce_ir, Access, Elaborator, Frame};

impl<'a> Elaborator<'a> {
    pub(crate) fn elab_topdec(
        &mut self,
        dec: &TopDec,
        out: &mut Vec<IrDec>,
    ) -> Result<(), ElabError> {
        match dec {
            TopDec::Signature { name, def, loc } => {
                let sig = self.elab_sigexp(def).map_err(|e| e.at(*loc))?;
                self.cur_frame().sigs.push((*name, sig));
                Ok(())
            }
            TopDec::Structure {
                name,
                constraint,
                def,
                loc,
            } => self
                .elab_structure_binding(*name, constraint.as_ref(), def, out)
                .map_err(|e| e.at(*loc)),
            TopDec::Functor {
                name,
                param,
                param_sig,
                result,
                body,
                loc,
            } => self
                .elab_functor(*name, *param, param_sig, result.as_ref(), body, out)
                .map_err(|e| e.at(*loc)),
        }
    }

    pub(crate) fn elab_structure_binding(
        &mut self,
        name: Symbol,
        constraint: Option<&(SigExp, bool)>,
        def: &StrExp,
        out: &mut Vec<IrDec>,
    ) -> Result<(), ElabError> {
        let (mut env, mut ir) = self.elab_strexp(def)?;
        if let Some((sigexp, opaque)) = constraint {
            let sig = self.elab_sigexp(sigexp)?;
            let m = match_structure(&env, &sig, *opaque)?;
            ir = coerce_ir(self, &env.bindings, &m.view.bindings, ir)?;
            env = m.view;
        }
        let lv = self.fresh_lvar();
        out.push(IrDec::Val(IrPat::Var(lv), ir));
        self.cur_frame()
            .strs
            .push((name, env, Some(Access::Local(lv))));
        Ok(())
    }

    fn elab_functor(
        &mut self,
        name: Symbol,
        param: Symbol,
        param_sig: &SigExp,
        result: Option<&(SigExp, bool)>,
        body: &StrExp,
        out: &mut Vec<IrDec>,
    ) -> Result<(), ElabError> {
        let sig = self.elab_sigexp(param_sig)?;
        let gen_lo = StampGenerator::peek_raw();
        let (param_inst, skolems) = instantiate(&sig);
        let pl = self.fresh_lvar();
        self.frames.push(Frame::default());
        self.cur_frame()
            .strs
            .push((param, param_inst.clone(), Some(Access::Local(pl))));
        let elaborated = self.elab_strexp(body);
        self.frames.pop();
        let (mut benv, mut bir) = elaborated?;
        if let Some((rsig, opaque)) = result {
            // The result signature may mention the parameter, so elaborate
            // it in a scope where the parameter is visible.
            self.frames.push(Frame::default());
            self.cur_frame()
                .strs
                .push((param, param_inst.clone(), Some(Access::Local(pl))));
            let rs = self.elab_sigexp(rsig);
            self.frames.pop();
            let rs = rs?;
            let m = match_structure(&benv, &rs, *opaque)?;
            bir = coerce_ir(self, &benv.bindings, &m.view.bindings, bir)?;
            benv = m.view;
        }
        let gen_hi = StampGenerator::peek_raw();
        let fenv = Arc::new(FunctorEnv {
            stamp: self.stamper.fresh(),
            entity_pid: smlsc_ids::PidCell::new(None),
            param_name: param,
            param_sig: sig,
            param_inst,
            skolems,
            body: benv,
            gen_lo,
            gen_hi,
        });
        let lv = self.fresh_lvar();
        out.push(IrDec::Val(
            IrPat::Var(lv),
            Ir::Functor {
                param: pl,
                body: Box::new(bir),
            },
        ));
        self.cur_frame()
            .fcts
            .push((name, fenv, Some(Access::Local(lv))));
        Ok(())
    }

    // ----- structure expressions -------------------------------------------

    pub(crate) fn elab_strexp(
        &mut self,
        se: &StrExp,
    ) -> Result<(Arc<StructureEnv>, Ir), ElabError> {
        match se {
            StrExp::Var(path) => {
                let (env, access) = self.lookup_str_path(path)?;
                let ir = access.map(|a| a.ir()).ok_or_else(|| {
                    ElabError::new(format!("structure `{path}` has no runtime value"))
                })?;
                Ok((env, ir))
            }
            StrExp::Struct(decs) => {
                self.frames.push(Frame::default());
                let mut irdecs = Vec::new();
                let mut result = Ok(());
                for d in decs {
                    result = self.elab_strdec(d, &mut irdecs);
                    if result.is_err() {
                        break;
                    }
                }
                let frame = self.frames.pop().expect("struct frame");
                result?;
                let bindings = frame.to_bindings();
                let record = frame.record_ir(&bindings)?;
                let env = StructureEnv::new(self.stamper.fresh(), bindings);
                Ok((env, Ir::Let(irdecs, Box::new(record))))
            }
            StrExp::Ascribe { str, sig, opaque } => {
                let (env, ir) = self.elab_strexp(str)?;
                let s = self.elab_sigexp(sig)?;
                let m = match_structure(&env, &s, *opaque)?;
                let cir = coerce_ir(self, &env.bindings, &m.view.bindings, ir)?;
                Ok((m.view, cir))
            }
            StrExp::App(fname, arg) => {
                let (fct, faccess) = self.lookup_fct(*fname)?;
                let (aenv, air) = self.elab_strexp(arg)?;
                let m = match_structure(&aenv, &fct.param_sig, false).map_err(|e| {
                    ElabError::new(format!(
                        "argument of functor `{fname}` does not match its parameter: {}",
                        e.message
                    ))
                })?;
                let carg = coerce_ir(self, &aenv.bindings, &m.view.bindings, air)?;
                // skolem[i] stands for param_sig.bound[i]; realize the body
                // with the argument's actual tycons and fresh generative
                // entities.
                let mut map = HashMap::new();
                for (sk, b) in fct.skolems.iter().zip(&fct.param_sig.bound) {
                    if let Some(actual) = m.realization.get(b) {
                        map.insert(*sk, actual.clone());
                    }
                }
                let mut r = Realizer::new(map, fct.gen_lo, fct.gen_hi);
                let result = r.structure(&fct.body);
                let fir = faccess.map(|a| a.ir()).ok_or_else(|| {
                    ElabError::new(format!("functor `{fname}` has no runtime value"))
                })?;
                Ok((result, Ir::App(Box::new(fir), Box::new(carg))))
            }
            StrExp::Let(decs, body) => {
                self.frames.push(Frame::default());
                let mut irdecs = Vec::new();
                let mut result = Ok(());
                for d in decs {
                    result = self.elab_strdec(d, &mut irdecs);
                    if result.is_err() {
                        break;
                    }
                }
                let inner = result.and_then(|()| self.elab_strexp(body));
                self.frames.pop();
                let (env, bir) = inner?;
                Ok((env, Ir::Let(irdecs, Box::new(bir))))
            }
        }
    }

    pub(crate) fn elab_strdec(
        &mut self,
        dec: &StrDec,
        out: &mut Vec<IrDec>,
    ) -> Result<(), ElabError> {
        match dec {
            StrDec::Core(d) => self.elab_dec(d, out),
            StrDec::Structure {
                name,
                constraint,
                def,
                loc,
            } => self
                .elab_structure_binding(*name, constraint.as_ref(), def, out)
                .map_err(|e| e.at(*loc)),
        }
    }

    // ----- signature expressions ---------------------------------------------

    pub(crate) fn elab_sigexp(&mut self, se: &SigExp) -> Result<Arc<SignatureEnv>, ElabError> {
        match se {
            SigExp::Var(name) => self.lookup_sig(*name),
            SigExp::Sig(specs) => {
                let lo = StampGenerator::peek_raw();
                let mut bound = Vec::new();
                self.frames.push(Frame::default());
                let mut result = Ok(());
                for spec in specs {
                    result = self.elab_spec(spec, &mut bound);
                    if result.is_err() {
                        break;
                    }
                }
                let frame = self.frames.pop().expect("sig frame");
                result?;
                let body = StructureEnv::new(self.stamper.fresh(), frame.to_bindings());
                let hi = StampGenerator::peek_raw();
                Ok(Arc::new(SignatureEnv {
                    stamp: self.stamper.fresh(),
                    entity_pid: smlsc_ids::PidCell::new(None),
                    bound,
                    body,
                    lo,
                    hi,
                }))
            }
            SigExp::WhereType {
                base,
                tyvars,
                ty_path,
                def,
            } => {
                let base_sig = self.elab_sigexp(base)?;
                // Locate the constrained tycon inside the template.
                let mut cur = base_sig.body.clone();
                for q in &ty_path.qualifiers {
                    cur = cur.bindings.str(*q).cloned().ok_or_else(|| {
                        ElabError::new(format!("`where type`: no substructure `{q}`"))
                    })?;
                }
                let tc = cur.bindings.tycon(ty_path.last).cloned().ok_or_else(|| {
                    ElabError::new(format!("`where type`: no type `{}`", ty_path.last))
                })?;
                if !base_sig.bound.contains(&tc.stamp) {
                    return Err(ElabError::new(format!(
                        "`where type {ty_path}`: type is not flexible in the signature"
                    )));
                }
                if tc.arity != tyvars.len() {
                    return Err(ElabError::new(format!(
                        "`where type {ty_path}`: arity mismatch"
                    )));
                }
                let map: HashMap<Symbol, u32> = tyvars
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (*v, i as u32))
                    .collect();
                let body_ty = self.elab_ty(def, &TyvarMode::Params(&map))?;
                let alias = Tycon::new(
                    self.stamper.fresh(),
                    ty_path.last,
                    tyvars.len(),
                    TyconDef::Alias(body_ty),
                );
                // Rebuild the template with the constrained stamp manifest.
                let lo = StampGenerator::peek_raw();
                let mut m = HashMap::new();
                m.insert(tc.stamp, alias);
                let mut r = Realizer::new(m, base_sig.lo, base_sig.hi);
                let new_body = r.structure(&base_sig.body);
                let new_bound = base_sig
                    .bound
                    .iter()
                    .filter(|s| **s != tc.stamp)
                    .map(|s| r.cloned_tycon(*s).map(|t| t.stamp).unwrap_or(*s))
                    .collect();
                let hi = StampGenerator::peek_raw();
                Ok(Arc::new(SignatureEnv {
                    stamp: self.stamper.fresh(),
                    entity_pid: smlsc_ids::PidCell::new(None),
                    bound: new_bound,
                    body: new_body,
                    lo,
                    hi,
                }))
            }
        }
    }

    fn elab_spec(
        &mut self,
        spec: &Spec,
        bound: &mut Vec<smlsc_ids::Stamp>,
    ) -> Result<(), ElabError> {
        match spec {
            Spec::Val(name, ty) => {
                let mut order = Vec::new();
                collect_tyvars(ty, &mut order);
                let map: HashMap<Symbol, u32> = order
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (*v, i as u32))
                    .collect();
                let body = self.elab_ty(ty, &TyvarMode::Params(&map))?;
                self.cur_frame().vals.push((
                    *name,
                    ValBind {
                        scheme: Scheme {
                            arity: order.len() as u32,
                            body,
                        },
                        kind: ValKind::Plain,
                    },
                    None,
                ));
                Ok(())
            }
            Spec::Type { tyvars, name, def } => {
                let tc = match def {
                    None => {
                        let tc = Tycon::new(
                            self.stamper.fresh(),
                            *name,
                            tyvars.len(),
                            TyconDef::Abstract,
                        );
                        bound.push(tc.stamp);
                        tc
                    }
                    Some(ty) => {
                        let map: HashMap<Symbol, u32> = tyvars
                            .iter()
                            .enumerate()
                            .map(|(i, v)| (*v, i as u32))
                            .collect();
                        let body = self.elab_ty(ty, &TyvarMode::Params(&map))?;
                        Tycon::new(
                            self.stamper.fresh(),
                            *name,
                            tyvars.len(),
                            TyconDef::Alias(body),
                        )
                    }
                };
                self.cur_frame().tycons.push((*name, tc));
                Ok(())
            }
            Spec::Datatype(dbs) => {
                self.elab_datbinds(dbs, Some(bound))?;
                Ok(())
            }
            Spec::Exception(name, arg) => {
                let exn = self.perv.exn_ty();
                let empty = HashMap::new();
                let scheme = match arg {
                    None => Scheme::mono(exn),
                    Some(ty) => {
                        let at = self.elab_ty(ty, &TyvarMode::Params(&empty))?;
                        Scheme::mono(Type::Arrow(Box::new(at), Box::new(exn)))
                    }
                };
                self.cur_frame().vals.push((
                    *name,
                    ValBind {
                        scheme,
                        kind: ValKind::Exn,
                    },
                    None,
                ));
                Ok(())
            }
            Spec::Structure(name, se) => {
                let inner = self.elab_sigexp(se)?;
                // Embed a fresh instance so each use of a named signature
                // contributes its own flexible stamps.
                let (inst, skolems) = instantiate(&inner);
                bound.extend(skolems);
                self.cur_frame().strs.push((*name, inst, None));
                Ok(())
            }
            Spec::Include(se) => {
                let inner = self.elab_sigexp(se)?;
                let (inst, skolems) = instantiate(&inner);
                bound.extend(skolems);
                // Splice the instance's bindings into the current frame.
                let b = inst.bindings.clone();
                let frame = self.cur_frame();
                frame
                    .vals
                    .extend(b.vals.into_iter().map(|(n, v)| (n, v, None)));
                frame.tycons.extend(b.tycons);
                frame
                    .strs
                    .extend(b.strs.into_iter().map(|(n, s)| (n, s, None)));
                frame.sigs.extend(b.sigs);
                frame
                    .fcts
                    .extend(b.fcts.into_iter().map(|(n, f)| (n, f, None)));
                Ok(())
            }
        }
    }
}

/// Collects the distinct type variables of a `Ty` in first-occurrence
/// order (implicit quantification of `val` specs).
fn collect_tyvars(ty: &Ty, out: &mut Vec<Symbol>) {
    match ty {
        Ty::Var(v) => {
            if !out.contains(v) {
                out.push(*v);
            }
        }
        Ty::Con(_, args) => {
            for a in args {
                collect_tyvars(a, out);
            }
        }
        Ty::Tuple(ts) => {
            for t in ts {
                collect_tyvars(t, out);
            }
        }
        Ty::Arrow(a, b) => {
            collect_tyvars(a, out);
            collect_tyvars(b, out);
        }
    }
}
