//! Single-daemon-per-project lockfile with stale-owner takeover.
//!
//! The lockfile (in the project's bin directory, next to the socket)
//! holds the owning daemon's pid, created with `O_EXCL` so two daemons
//! racing for the same project resolve to exactly one winner.  A lock
//! whose recorded pid is no longer alive (crashed daemon, `kill -9`) is
//! *stale*: the next `acquire` removes the dead owner's lock and socket
//! and takes over.

use std::io::{Error, ErrorKind, Write};
use std::path::{Path, PathBuf};

use crate::protocol;

/// Ownership of a project's daemon lock; dropping it releases the
/// lockfile (the server also removes it explicitly on clean shutdown).
#[derive(Debug)]
pub struct LockGuard {
    path: PathBuf,
    released: bool,
}

impl LockGuard {
    /// The lockfile path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Removes the lockfile now (idempotent with drop).
    pub fn release(&mut self) {
        if !self.released {
            std::fs::remove_file(&self.path).ok();
            self.released = true;
        }
    }
}

impl Drop for LockGuard {
    fn drop(&mut self) {
        self.release();
    }
}

/// Is the process alive?  Linux: its `/proc/<pid>/stat` exists and the
/// state field is not `Z` — a zombie (killed but not yet reaped, e.g. a
/// SIGKILLed daemon whose parent already exited) is dead for lock
/// purposes: it will never serve the socket again.  Public so the CLI's
/// restart-once dispatch applies the same liveness rule before deciding
/// a resident daemon is dead.
pub fn pid_alive(pid: u64) -> bool {
    let Ok(stat) = std::fs::read_to_string(format!("/proc/{pid}/stat")) else {
        return false;
    };
    // The state is the first field after the parenthesised comm.
    !matches!(
        stat.rfind(')')
            .and_then(|i| stat[i + 1..].trim_start().chars().next()),
        Some('Z') | None
    )
}

/// Acquires the daemon lock for `bin_dir`, taking over from a dead
/// owner (removing its lockfile and stale socket) when needed.
///
/// # Errors
///
/// [`ErrorKind::AddrInUse`] when a live daemon already owns the lock;
/// other IO errors when the bin directory is unusable.
pub fn acquire(bin_dir: &Path) -> std::io::Result<LockGuard> {
    std::fs::create_dir_all(bin_dir)?;
    let path = protocol::lock_path(bin_dir);
    for _ in 0..2 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)
        {
            Ok(mut f) => {
                writeln!(f, "{}", std::process::id())?;
                // `daemon.lock` fault point: a crash here dies owning a
                // freshly written lockfile — exactly the stale-lock
                // debris the next acquire (and `smlsc doctor`) must
                // clear; an io fault backs the lock out instead.
                if matches!(
                    smlsc_faults::check(
                        smlsc_faults::points::DAEMON_LOCK,
                        &path.display().to_string()
                    ),
                    Some(smlsc_faults::FaultKind::Io)
                ) {
                    drop(f);
                    std::fs::remove_file(&path).ok();
                    return Err(smlsc_faults::io_error(
                        smlsc_faults::points::DAEMON_LOCK,
                        &path.display().to_string(),
                    ));
                }
                return Ok(LockGuard {
                    path,
                    released: false,
                });
            }
            Err(e) if e.kind() == ErrorKind::AlreadyExists => {
                match owner(&path) {
                    Some(pid) if pid_alive(pid) => {
                        return Err(Error::new(
                            ErrorKind::AddrInUse,
                            format!("daemon already running (pid {pid})"),
                        ));
                    }
                    // Dead owner or unreadable lock: stale. Remove the
                    // corpse's lock and socket and retry the O_EXCL
                    // create (a concurrent acquirer may still win it).
                    _ => {
                        std::fs::remove_file(&path).ok();
                        std::fs::remove_file(protocol::socket_path(bin_dir)).ok();
                    }
                }
            }
            Err(e) => return Err(e),
        }
    }
    Err(Error::new(
        ErrorKind::AddrInUse,
        "daemon lock contended during takeover",
    ))
}

/// The pid recorded in a lockfile, if it parses.
pub fn owner(path: &Path) -> Option<u64> {
    std::fs::read_to_string(path)
        .ok()?
        .trim()
        .parse::<u64>()
        .ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smlsc-lock-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    #[test]
    fn second_acquire_fails_while_owner_lives() {
        let dir = temp("live");
        let guard = acquire(&dir).unwrap();
        // Our own pid is alive, so a second acquire must refuse.
        let err = acquire(&dir).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::AddrInUse);
        drop(guard);
        // Released: now it succeeds again.
        acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_lock_of_a_dead_pid_is_taken_over() {
        let dir = temp("stale");
        std::fs::create_dir_all(&dir).unwrap();
        // Pid u32::MAX is above Linux's pid_max; certainly dead.
        std::fs::write(protocol::lock_path(&dir), format!("{}\n", u32::MAX)).unwrap();
        std::fs::write(protocol::socket_path(&dir), b"stale socket").unwrap();
        let guard = acquire(&dir).unwrap();
        assert_eq!(owner(guard.path()), Some(u64::from(std::process::id())));
        assert!(
            !protocol::socket_path(&dir).exists(),
            "takeover removes the dead owner's socket"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn garbage_lockfile_is_treated_as_stale() {
        let dir = temp("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(protocol::lock_path(&dir), b"not a pid").unwrap();
        acquire(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
