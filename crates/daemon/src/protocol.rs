//! The daemon's wire protocol: length-prefixed JSON frames over a
//! per-project Unix-domain socket.
//!
//! Every connection starts with a versioned handshake ([`Hello`] →
//! [`HelloAck`]); a version or magic mismatch is answered with
//! `ok: false` and the connection closed, so an old client against a
//! new daemon degrades to the in-process fallback instead of
//! misparsing frames.  After the handshake, the client sends one
//! [`Request`] and reads one [`Response`].
//!
//! Frames are a little-endian `u32` byte length followed by that many
//! bytes of JSON.  One frame is written with a single `write_all`, and
//! the server gives each connection its own handler thread, so
//! concurrent clients can never observe interleaved frame bytes.

use std::io::{Read, Write};
use std::path::{Path, PathBuf};

use serde::{Deserialize, Serialize};

/// Version of the wire protocol; bumped on any incompatible change.
/// v2 added `Request::timeout_ms` and `Response::timed_out`.
pub const PROTOCOL_VERSION: u32 = 2;
/// Handshake magic — catches a non-smlsc peer before any parsing.
pub const MAGIC: &str = "smlsc-daemon";
/// Socket filename inside the project's bin directory.
pub const SOCKET_FILE: &str = "daemon.sock";
/// Lockfile filename inside the project's bin directory.
pub const LOCK_FILE: &str = "daemon.lock";
/// Upper bound on a single frame; a length prefix beyond this is
/// treated as a corrupt stream, not an allocation request.
pub const MAX_FRAME: u32 = 64 << 20;

/// The daemon socket for a project's bin directory.
pub fn socket_path(bin_dir: &Path) -> PathBuf {
    bin_dir.join(SOCKET_FILE)
}

/// The daemon lockfile for a project's bin directory.
pub fn lock_path(bin_dir: &Path) -> PathBuf {
    bin_dir.join(LOCK_FILE)
}

/// Client's opening frame.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Hello {
    /// Must equal [`MAGIC`].
    pub magic: String,
    /// Must equal [`PROTOCOL_VERSION`].
    pub version: u32,
}

impl Hello {
    /// A handshake for the current protocol version.
    pub fn current() -> Hello {
        Hello {
            magic: MAGIC.to_string(),
            version: PROTOCOL_VERSION,
        }
    }
}

/// Server's handshake reply.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HelloAck {
    /// Whether the handshake was accepted; when `false` the server
    /// closes the connection after this frame.
    pub ok: bool,
    /// The server's protocol version.
    pub version: u32,
    /// The daemon's pid (matches the lockfile).
    pub pid: u64,
}

/// One client request.  `kind` selects the operation; the remaining
/// fields only matter to `build`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// `"build"`, `"stats"`, `"status"`, or `"stop"`.
    pub kind: String,
    /// Build: re-stat the source directory before deciding (the
    /// CLI-dispatch default — correct even when the watcher has not
    /// polled the latest edit yet).  `false` trusts the watcher and is
    /// the sub-millisecond no-op path.
    pub fresh: bool,
    /// Build: worker count; `0` means the daemon's default.
    pub jobs: u64,
    /// Build: keep going past failures.
    pub keep_going: bool,
    /// Build: include per-unit rebuild decisions in the response.
    pub explain: bool,
    /// Build: per-request deadline in milliseconds; `0` takes the
    /// server's configured default.  A build still running at the
    /// deadline is answered with a typed timeout reply
    /// ([`Response::timed_out`]) while the build itself runs on to
    /// completion inside the daemon.
    pub timeout_ms: u64,
}

impl Request {
    /// A build request with daemon-default jobs.
    pub fn build(fresh: bool) -> Request {
        Request {
            kind: "build".to_string(),
            fresh,
            jobs: 0,
            keep_going: false,
            explain: false,
            timeout_ms: 0,
        }
    }

    /// A non-build request of `kind`.
    pub fn simple(kind: &str) -> Request {
        Request {
            kind: kind.to_string(),
            fresh: false,
            jobs: 0,
            keep_going: false,
            explain: false,
            timeout_ms: 0,
        }
    }
}

/// One server response; which fields are meaningful depends on the
/// request kind, and `ok: false` carries the reason in `error`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Response {
    /// Whether the request was served.
    pub ok: bool,
    /// Why not, when `ok` is false.
    pub error: String,
    /// The request's deadline expired before the build finished (a
    /// typed refusal, distinct from a build failure; the build keeps
    /// running inside the daemon).
    pub timed_out: bool,
    /// Build: the CLI exit code the build maps to.
    pub exit_code: i32,
    /// Build: served from the no-change snapshot without running the
    /// analysis ladder.
    pub cached: bool,
    /// Build/stats: the snapshot's sequence number within the daemon.
    pub seq: u64,
    /// Build: the one-line summary the CLI prints.
    pub summary: String,
    /// Build: stderr diagnostics (warnings, failures, skips).
    pub notes: Vec<String>,
    /// Build: `--explain` lines (when requested).
    pub explain: Vec<String>,
    /// Build/stats: the build's full telemetry JSON.
    pub stats_json: String,
    /// Status: the daemon's own state and counters as JSON.
    pub status_json: String,
}

impl Response {
    /// An empty all-defaults response to fill in.
    pub fn new() -> Response {
        Response {
            ok: true,
            error: String::new(),
            timed_out: false,
            exit_code: 0,
            cached: false,
            seq: 0,
            summary: String::new(),
            notes: Vec::new(),
            explain: Vec::new(),
            stats_json: String::new(),
            status_json: String::new(),
        }
    }

    /// A refusal carrying `error`.
    pub fn refuse(error: impl Into<String>) -> Response {
        let mut r = Response::new();
        r.ok = false;
        r.error = error.into();
        r
    }
}

impl Default for Response {
    fn default() -> Response {
        Response::new()
    }
}

/// Writes one length-prefixed frame with a single `write_all`.
///
/// # Errors
///
/// Any socket write error; oversized payloads are `InvalidData`.
pub fn write_frame(stream: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|&n| n <= MAX_FRAME)
        .ok_or_else(|| {
            std::io::Error::new(std::io::ErrorKind::InvalidData, "frame exceeds MAX_FRAME")
        })?;
    // One buffer, one write: a frame is never split across syscalls at
    // this layer, so a reader sees length and body together.
    let mut buf = Vec::with_capacity(4 + payload.len());
    buf.extend_from_slice(&len.to_le_bytes());
    buf.extend_from_slice(payload);
    stream.write_all(&buf)?;
    stream.flush()
}

/// Reads one length-prefixed frame.
///
/// # Errors
///
/// `UnexpectedEof` on a closed peer; `InvalidData` on an oversized
/// length prefix.
pub fn read_frame(stream: &mut impl Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len);
    if len > MAX_FRAME {
        return Err(std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds MAX_FRAME"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    stream.read_exact(&mut payload)?;
    Ok(payload)
}

/// Serializes `msg` and writes it as one frame.
///
/// # Errors
///
/// Socket errors from [`write_frame`].
pub fn send<T: Serialize>(stream: &mut impl Write, msg: &T) -> std::io::Result<()> {
    let json = serde_json::to_string(msg)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    write_frame(stream, json.as_bytes())
}

/// Reads one frame and deserializes it as `T`.
///
/// # Errors
///
/// Socket errors from [`read_frame`]; `InvalidData` on malformed JSON.
pub fn recv<T: for<'de> Deserialize<'de>>(stream: &mut impl Read) -> std::io::Result<T> {
    let payload = read_frame(stream)?;
    let text = std::str::from_utf8(&payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))?;
    serde_json::from_str(text)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut r).unwrap(), b"hello");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert!(read_frame(&mut r).is_err(), "eof after the last frame");
    }

    #[test]
    fn oversized_length_prefix_is_rejected_not_allocated() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut r = std::io::Cursor::new(buf);
        let err = read_frame(&mut r).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    }

    #[test]
    fn messages_round_trip() {
        let mut buf = Vec::new();
        send(&mut buf, &Hello::current()).unwrap();
        let mut req = Request::build(true);
        req.jobs = 4;
        req.explain = true;
        send(&mut buf, &req).unwrap();
        let mut resp = Response::new();
        resp.summary = "built 2 unit(s)".to_string();
        resp.notes = vec!["warning: x".to_string()];
        send(&mut buf, &resp).unwrap();
        let mut r = std::io::Cursor::new(buf);
        assert_eq!(recv::<Hello>(&mut r).unwrap(), Hello::current());
        assert_eq!(recv::<Request>(&mut r).unwrap(), req);
        assert_eq!(recv::<Response>(&mut r).unwrap(), resp);
    }
}
