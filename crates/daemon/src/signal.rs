//! SIGTERM/SIGINT hook for graceful daemon shutdown.
//!
//! `kill <pid>` (systemd stop, a closing terminal, a supervisor) must
//! release the socket and lockfile instead of leaving stale debris for
//! the next `acquire` (or `smlsc doctor`) to clean up.  The handler is
//! the async-signal-safe minimum — one atomic store — and the server's
//! supervisor thread polls [`requested`] to run the same orderly
//! shutdown a `stop` request takes: drain in-flight connections, join
//! the watcher, remove the socket, release the lock.
//!
//! The registration itself is the crate's only unsafe code: a direct
//! `signal(2)` binding, since no signal-handling dependency is
//! vendored.  Handlers are process-global, so only the real daemon
//! entrypoint ([`crate::run`]) installs them — never the in-process
//! [`crate::ServerHandle`] used by tests and benches.

use std::sync::atomic::{AtomicBool, Ordering};

/// Set by the handler; polled by the server's supervisor thread.
static REQUESTED: AtomicBool = AtomicBool::new(false);

const SIGINT: i32 = 2;
const SIGTERM: i32 = 15;

extern "C" fn on_signal(_signum: i32) {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[allow(unsafe_code)]
mod sys {
    extern "C" {
        /// `signal(2)` from libc, which every Rust binary already links.
        pub fn signal(signum: i32, handler: extern "C" fn(i32)) -> isize;
    }
}

/// Installs the termination handlers (idempotent).  Process-global:
/// call only from a process that *is* the daemon.
pub fn install() {
    #[allow(unsafe_code)]
    // SAFETY: `on_signal` only performs an atomic store, which is
    // async-signal-safe; `signal` itself has no memory-safety
    // preconditions.
    unsafe {
        sys::signal(SIGINT, on_signal);
        sys::signal(SIGTERM, on_signal);
    }
}

/// Has a termination signal arrived since [`install`]?
pub fn requested() -> bool {
    REQUESTED.load(Ordering::SeqCst)
}
