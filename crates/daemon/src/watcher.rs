//! The daemon's filesystem watcher: a debounced polling sweep feeding
//! targeted invalidation into the resident session.
//!
//! Each tick stat-scans the project directory (never reading a source
//! body) and diffs against the in-memory project.  A change is applied
//! only after **two consecutive ticks observe the identical candidate
//! event set** — the debounce: an editor mid-save (truncate, write,
//! rename) produces differing snapshots across ticks and is left alone
//! until it settles.  Applied events replace or remove individual
//! in-memory units; there is no rescan on the build path.
//!
//! The `daemon.watch` fault point can skip a sweep (chaos testing);
//! a skipped sweep only defers the edit to the next sweep — or to the
//! next `fresh` build, which re-stats on its own — it is never lost.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use smlsc_core::resident::{FileEvent, Resident};
use smlsc_faults::points;

/// Daemon-lifetime counters, surfaced in `status` responses keyed by
/// the canonical `smlsc_trace::names::DAEMON_*` names.
#[derive(Debug, Default)]
pub struct DaemonCounters {
    /// Requests served (handshake excluded): build, stats, status, stop.
    pub requests: AtomicU64,
    /// Filesystem change events observed post-debounce.
    pub watch_events: AtomicU64,
    /// Project deltas applied to the resident session.
    pub invalidations: AtomicU64,
    /// Sweeps that failed to scan the project directory.
    pub watch_errors: AtomicU64,
    /// True while the most recent sweep failed.  A degraded watcher can
    /// no longer vouch for the in-memory project, so the server forces
    /// every served build onto the full stat-rescan path until a sweep
    /// succeeds again — the session is never silently stale.
    pub watch_degraded: AtomicBool,
}

/// Spawns the polling watcher thread; it exits when `shutdown` flips.
pub fn spawn(
    resident: Arc<Resident>,
    counters: Arc<DaemonCounters>,
    shutdown: Arc<AtomicBool>,
    interval: Duration,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("smlsc-daemon-watch".to_string())
        .spawn(move || watch_loop(&resident, &counters, &shutdown, interval))
        .expect("spawn watcher thread")
}

fn watch_loop(
    resident: &Resident,
    counters: &DaemonCounters,
    shutdown: &AtomicBool,
    interval: Duration,
) {
    let mut pending: Option<Vec<FileEvent>> = None;
    while !shutdown.load(Ordering::SeqCst) {
        // Sleep in short slices so a stop request is honoured promptly
        // however long the poll interval is.
        let mut remaining = interval;
        while !remaining.is_zero() {
            let slice = remaining.min(Duration::from_millis(50));
            std::thread::sleep(slice);
            remaining -= slice;
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
        }
        if smlsc_faults::check(points::DAEMON_WATCH, "sweep").is_some() {
            // Injected fault: this sweep is skipped (and any half-seen
            // candidate discarded); the edit surfaces next sweep.
            pending = None;
            continue;
        }
        let events = match resident.diff_from_disk() {
            Ok(events) => {
                // A successful sweep is a complete stat-scan of the
                // project: the watcher can vouch for the session again.
                counters.watch_degraded.store(false, Ordering::SeqCst);
                events
            }
            // Scan failure (the directory mid-rename, permissions,
            // disk trouble): mark the watcher degraded — served builds
            // re-stat for themselves until a sweep succeeds — and try
            // again next tick.
            Err(_) => {
                counters.watch_errors.fetch_add(1, Ordering::SeqCst);
                counters.watch_degraded.store(true, Ordering::SeqCst);
                pending = None;
                continue;
            }
        };
        if events.is_empty() {
            pending = None;
            continue;
        }
        if pending.as_deref() == Some(&events[..]) {
            counters
                .watch_events
                .fetch_add(events.len() as u64, Ordering::SeqCst);
            let applied = resident.apply_events(&events);
            counters
                .invalidations
                .fetch_add(applied as u64, Ordering::SeqCst);
            pending = None;
        } else {
            // First sighting (or still changing): wait for it to settle.
            pending = Some(events);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smlsc_core::irm::{FailurePolicy, Strategy};
    use std::path::{Path, PathBuf};

    fn temp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "smlsc-watch-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(dir.join("src")).unwrap();
        dir
    }

    fn write(dir: &Path, name: &str, text: &str) {
        std::fs::write(dir.join("src").join(format!("{name}.sml")), text).unwrap();
    }

    #[test]
    fn settled_edits_are_applied_after_two_identical_ticks() {
        let dir = temp("settle");
        write(&dir, "a", "structure A = struct val x = 1 end");
        let resident = Arc::new(
            Resident::open(&dir.join("src"), &dir.join("bins"), Strategy::Cutoff, None).unwrap(),
        );
        resident.build(1, FailurePolicy::FailFast, false).unwrap();
        let counters = Arc::new(DaemonCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let watcher = spawn(
            Arc::clone(&resident),
            Arc::clone(&counters),
            Arc::clone(&shutdown),
            Duration::from_millis(10),
        );
        std::thread::sleep(Duration::from_millis(30));
        write(&dir, "a", "structure A = struct val x = 2 end");
        // Give the watcher time for two settled ticks.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while counters.invalidations.load(Ordering::SeqCst) == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::sleep(Duration::from_millis(10));
        }
        shutdown.store(true, Ordering::SeqCst);
        watcher.join().unwrap();
        assert_eq!(counters.watch_events.load(Ordering::SeqCst), 1);
        assert_eq!(counters.invalidations.load(Ordering::SeqCst), 1);
        // The watcher already applied the delta, so a trusted (non-
        // fresh) build sees the edit without any rescan.
        let (snap, cached) = resident.build(1, FailurePolicy::FailFast, false).unwrap();
        assert!(!cached);
        assert_eq!(snap.recompiled, 1);
        std::fs::remove_dir_all(&dir).ok();
    }
}
