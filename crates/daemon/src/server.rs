//! The daemon server: socket lifecycle, handshake, request dispatch.
//!
//! One [`Resident`] session per server; any number of concurrent
//! clients.  Each accepted connection gets its own handler thread, so
//! a slow client never blocks another's frames; the resident session's
//! internal lock serializes the actual build runs (the bin and stamp
//! caches are single-writer) while overlapped `status`/`stats` reads
//! are served from snapshot-consistent state.
//!
//! Shutdown: a `stop` request (or [`ServerHandle::stop`]) flips the
//! shutdown flag and self-connects once to wake the blocking accept;
//! the server then joins its watcher, removes the socket, and releases
//! the lockfile.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use smlsc_core::irm::{FailurePolicy, Strategy};
use smlsc_core::resident::Resident;
use smlsc_faults::points;
use smlsc_trace::names;

use crate::protocol::{self, Hello, HelloAck, Request, Response, PROTOCOL_VERSION};
use crate::watcher::{self, DaemonCounters};
use crate::{client, lock};

/// How to run a daemon over one project.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The source directory to watch and build.
    pub dir: PathBuf,
    /// The bin directory: bins, stamps, ledger, socket, lockfile.
    pub bin_dir: PathBuf,
    /// Rebuild strategy for served builds.
    pub strategy: Strategy,
    /// Default worker count for requests that leave `jobs` at 0.
    pub jobs: usize,
    /// Watcher poll interval.
    pub watch_interval: Duration,
    /// Default per-request build deadline (a request may pass its own
    /// via `timeout_ms`).  At the deadline the client gets a typed
    /// timeout reply; the build runs on inside the daemon.
    pub request_deadline: Duration,
    /// Shut down after this long without a served request (and no
    /// in-flight connection).  `None` means serve forever.
    pub idle_timeout: Option<Duration>,
}

impl ServerConfig {
    /// A default configuration over `dir` with bins in `bin_dir`.
    pub fn new(dir: impl Into<PathBuf>, bin_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            dir: dir.into(),
            bin_dir: bin_dir.into(),
            strategy: Strategy::Cutoff,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            watch_interval: Duration::from_millis(150),
            request_deadline: Duration::from_secs(600),
            idle_timeout: None,
        }
    }
}

/// Runs a daemon to completion (until a `stop` request): acquires the
/// project lock, opens the resident session, binds the socket, serves.
///
/// # Errors
///
/// `AddrInUse` when a live daemon already owns the project; any IO or
/// [`smlsc_core::CoreError`] failure opening the session or socket.
pub fn run(config: ServerConfig) -> std::io::Result<()> {
    // The real daemon entrypoint hooks SIGTERM/SIGINT so `kill <pid>`
    // takes the same orderly shutdown as a `stop` request (handlers are
    // process-global, so the in-process ServerHandle never installs
    // them).
    crate::signal::install();
    Server::bind(config)?.serve()
}

/// How long a shutting-down server waits for in-flight connections
/// (including a running build) to finish before exiting anyway.
const SHUTDOWN_DRAIN: Duration = Duration::from_secs(30);

struct Server {
    config: ServerConfig,
    listener: UnixListener,
    socket: PathBuf,
    lock: lock::LockGuard,
    resident: Arc<Resident>,
    counters: Arc<DaemonCounters>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let lock = lock::acquire(&config.bin_dir)?;
        let resident = Resident::open(&config.dir, &config.bin_dir, config.strategy, None)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let socket = protocol::socket_path(&config.bin_dir);
        // We hold the lock, so any existing socket file is a leftover.
        std::fs::remove_file(&socket).ok();
        let listener = UnixListener::bind(&socket)?;
        Ok(Server {
            config,
            listener,
            socket,
            lock,
            resident: Arc::new(resident),
            counters: Arc::new(DaemonCounters::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    fn serve(mut self) -> std::io::Result<()> {
        let watcher = watcher::spawn(
            Arc::clone(&self.resident),
            Arc::clone(&self.counters),
            Arc::clone(&self.shutdown),
            self.config.watch_interval,
        );
        let active = Arc::new(AtomicUsize::new(0));
        let last_activity = Arc::new(Mutex::new(Instant::now()));
        let supervisor = spawn_supervisor(
            Arc::clone(&self.shutdown),
            Arc::clone(&active),
            Arc::clone(&last_activity),
            self.socket.clone(),
            self.config.idle_timeout,
        );
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if matches!(
                smlsc_faults::check(points::DAEMON_ACCEPT, "conn"),
                Some(smlsc_faults::FaultKind::Io | smlsc_faults::FaultKind::Torn)
            ) {
                // Injected fault: drop the connection before any frame;
                // the client's handshake fails and it falls back to an
                // in-process build.
                drop(stream);
                continue;
            }
            let ctx = HandlerCtx {
                resident: Arc::clone(&self.resident),
                counters: Arc::clone(&self.counters),
                shutdown: Arc::clone(&self.shutdown),
                socket: self.socket.clone(),
                default_jobs: self.config.jobs,
                deadline: self.config.request_deadline,
            };
            // Count the connection before the thread exists, so the
            // drain below can never miss one that was accepted but not
            // yet running.
            *last_activity.lock().expect("activity lock") = Instant::now();
            active.fetch_add(1, Ordering::SeqCst);
            let done = ConnectionDone {
                active: Arc::clone(&active),
                last_activity: Arc::clone(&last_activity),
            };
            if std::thread::Builder::new()
                .name("smlsc-daemon-conn".to_string())
                .spawn(move || {
                    let _done = done;
                    handle_connection(stream, &ctx);
                })
                .is_err()
            {
                active.fetch_sub(1, Ordering::SeqCst);
            }
        }
        supervisor.join().ok();
        watcher.join().ok();
        // Graceful drain: an in-flight build finishes and its client
        // gets a real response (or the typed deadline reply) before the
        // socket disappears.
        let deadline = Instant::now() + SHUTDOWN_DRAIN;
        while active.load(Ordering::SeqCst) > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        std::fs::remove_file(&self.socket).ok();
        self.lock.release();
        Ok(())
    }
}

/// Decrements the active-connection count (and stamps activity) when a
/// handler thread finishes, however it exits.
struct ConnectionDone {
    active: Arc<AtomicUsize>,
    last_activity: Arc<Mutex<Instant>>,
}

impl Drop for ConnectionDone {
    fn drop(&mut self) {
        *self.last_activity.lock().expect("activity lock") = Instant::now();
        self.active.fetch_sub(1, Ordering::SeqCst);
    }
}

/// The supervisor thread: polls for a termination signal and for idle
/// expiry, and wakes the blocking accept when either fires.
fn spawn_supervisor(
    shutdown: Arc<AtomicBool>,
    active: Arc<AtomicUsize>,
    last_activity: Arc<Mutex<Instant>>,
    socket: PathBuf,
    idle_timeout: Option<Duration>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("smlsc-daemon-supervisor".to_string())
        .spawn(move || {
            while !shutdown.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(100));
                let signalled = crate::signal::requested();
                let idle = idle_timeout.is_some_and(|limit| {
                    active.load(Ordering::SeqCst) == 0
                        && last_activity.lock().expect("activity lock").elapsed() >= limit
                });
                if signalled || idle {
                    shutdown.store(true, Ordering::SeqCst);
                    // Wake the blocking accept so the loop observes it.
                    UnixStream::connect(&socket).ok();
                }
            }
        })
        .expect("spawn supervisor thread")
}

struct HandlerCtx {
    resident: Arc<Resident>,
    counters: Arc<DaemonCounters>,
    shutdown: Arc<AtomicBool>,
    socket: PathBuf,
    default_jobs: usize,
    deadline: Duration,
}

fn handle_connection(mut stream: UnixStream, ctx: &HandlerCtx) {
    // Handshake: refuse (with a parseable ack) rather than misparse.
    let hello: Hello = match protocol::recv(&mut stream) {
        Ok(h) => h,
        Err(_) => return,
    };
    let ok = hello.magic == protocol::MAGIC && hello.version == PROTOCOL_VERSION;
    let ack = HelloAck {
        ok,
        version: PROTOCOL_VERSION,
        pid: u64::from(std::process::id()),
    };
    if protocol::send(&mut stream, &ack).is_err() || !ok {
        return;
    }
    let request: Request = match protocol::recv(&mut stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    ctx.counters.requests.fetch_add(1, Ordering::SeqCst);
    let response = dispatch(&request, ctx);
    protocol::send(&mut stream, &response).ok();
    stream.flush().ok();
    if request.kind == "stop" {
        initiate_shutdown(ctx);
    }
}

fn dispatch(request: &Request, ctx: &HandlerCtx) -> Response {
    match request.kind.as_str() {
        "build" => build(request, ctx),
        "stats" => match ctx.resident.last() {
            Some(snap) => {
                let mut r = Response::new();
                r.seq = snap.seq;
                r.stats_json = snap.stats_json.clone();
                r.summary = snap.summary.clone();
                r.exit_code = snap.exit_code;
                r
            }
            None => Response::refuse("no builds served yet"),
        },
        "status" => {
            let mut r = Response::new();
            r.status_json = status_json(ctx);
            r
        }
        "stop" => Response::new(),
        other => Response::refuse(format!("unknown request kind `{other}`")),
    }
}

fn build(request: &Request, ctx: &HandlerCtx) -> Response {
    let jobs = match usize::try_from(request.jobs) {
        Ok(0) | Err(_) => ctx.default_jobs,
        Ok(n) => n,
    };
    let policy = if request.keep_going {
        FailurePolicy::KeepGoing
    } else {
        FailurePolicy::FailFast
    };
    // A degraded watcher (its last sweep failed) cannot vouch for the
    // in-memory project, so the build re-stats the sources itself — a
    // full stat-rescan fallback, never a silently stale answer.
    let fresh = request.fresh
        || ctx
            .counters
            .watch_degraded
            .load(std::sync::atomic::Ordering::SeqCst);
    let deadline = if request.timeout_ms > 0 {
        Duration::from_millis(request.timeout_ms)
    } else {
        ctx.deadline
    };
    // The build runs on its own thread so this handler can answer the
    // client at the deadline; a timed-out build continues to completion
    // (the resident lock serializes it against later requests) and its
    // snapshot serves the next build instantly.
    let resident = Arc::clone(&ctx.resident);
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::Builder::new()
        .name("smlsc-daemon-build".to_string())
        .spawn(move || {
            tx.send(resident.build(jobs, policy, fresh)).ok();
        })
        .ok();
    let result = match rx.recv_timeout(deadline) {
        Ok(result) => result,
        Err(_) => {
            let mut r = Response::refuse(format!(
                "build exceeded its {}ms deadline (still running in the daemon)",
                deadline.as_millis()
            ));
            r.timed_out = true;
            r.exit_code = 4;
            return r;
        }
    };
    match result {
        Ok((snap, cached)) => {
            let mut r = Response::new();
            r.exit_code = snap.exit_code;
            r.cached = cached;
            r.seq = snap.seq;
            r.summary = snap.summary.clone();
            r.notes = snap.notes.clone();
            if request.explain {
                r.explain = snap.explain.clone();
            }
            r.stats_json = snap.stats_json.clone();
            r
        }
        Err(e) => {
            let mut r = Response::refuse(e.to_string());
            r.exit_code = if e.is_io() {
                4
            } else if e.is_internal() {
                3
            } else {
                1
            };
            r
        }
    }
}

fn status_json(ctx: &HandlerCtx) -> String {
    let builds = ctx.resident.last().map_or(0, |s| s.seq);
    // Watcher health plus the generation pair: a last-build generation
    // equal to the session generation means the served snapshot is
    // current; a degraded watcher means builds re-stat for themselves.
    format!(
        "{{\"pid\":{},\"protocol\":{},\"units\":{},\"builds\":{},\"building_high_water\":{},\"watch_healthy\":{},\"watch_errors\":{},\"generation\":{},\"last_build_generation\":{},\"{}\":{},\"{}\":{},\"{}\":{}}}",
        std::process::id(),
        PROTOCOL_VERSION,
        ctx.resident.unit_count(),
        builds,
        ctx.resident.building_high_water(),
        !ctx.counters.watch_degraded.load(Ordering::SeqCst),
        ctx.counters.watch_errors.load(Ordering::SeqCst),
        ctx.resident.generation(),
        ctx.resident.last().map_or(0, |s| s.generation()),
        names::DAEMON_REQUESTS,
        ctx.counters.requests.load(Ordering::SeqCst),
        names::DAEMON_WATCH_EVENTS,
        ctx.counters.watch_events.load(Ordering::SeqCst),
        names::DAEMON_INVALIDATIONS,
        ctx.counters.invalidations.load(Ordering::SeqCst),
    )
}

fn initiate_shutdown(ctx: &HandlerCtx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept so the loop observes the flag.
    UnixStream::connect(&ctx.socket).ok();
}

/// An in-process daemon for tests and benches: same lock, socket and
/// serve loop as [`run`], on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// Binds and starts serving; returns once the socket is ready (so
    /// a client can connect immediately).
    ///
    /// # Errors
    ///
    /// Same as [`run`]'s bind phase.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let socket = server.socket.clone();
        let thread = std::thread::Builder::new()
            .name("smlsc-daemon-serve".to_string())
            .spawn(move || server.serve())?;
        Ok(ServerHandle {
            socket,
            thread: Some(thread),
        })
    }

    /// The socket clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket
    }

    /// Requests a clean stop and joins the serve loop.
    ///
    /// # Errors
    ///
    /// Socket errors reaching the daemon (it may already be gone — the
    /// serve thread is still joined).
    pub fn stop(mut self) -> std::io::Result<()> {
        let result = client::request(&self.socket, &Request::simple("stop")).map(|_| ());
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
        result
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            // Best effort: ask the daemon to stop, then join.
            client::request(&self.socket, &Request::simple("stop")).ok();
            thread.join().ok();
        }
    }
}
