//! The daemon server: socket lifecycle, handshake, request dispatch.
//!
//! One [`Resident`] session per server; any number of concurrent
//! clients.  Each accepted connection gets its own handler thread, so
//! a slow client never blocks another's frames; the resident session's
//! internal lock serializes the actual build runs (the bin and stamp
//! caches are single-writer) while overlapped `status`/`stats` reads
//! are served from snapshot-consistent state.
//!
//! Shutdown: a `stop` request (or [`ServerHandle::stop`]) flips the
//! shutdown flag and self-connects once to wake the blocking accept;
//! the server then joins its watcher, removes the socket, and releases
//! the lockfile.

use std::io::Write;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use smlsc_core::irm::{FailurePolicy, Strategy};
use smlsc_core::resident::Resident;
use smlsc_faults::points;
use smlsc_trace::names;

use crate::protocol::{self, Hello, HelloAck, Request, Response, PROTOCOL_VERSION};
use crate::watcher::{self, DaemonCounters};
use crate::{client, lock};

/// How to run a daemon over one project.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// The source directory to watch and build.
    pub dir: PathBuf,
    /// The bin directory: bins, stamps, ledger, socket, lockfile.
    pub bin_dir: PathBuf,
    /// Rebuild strategy for served builds.
    pub strategy: Strategy,
    /// Default worker count for requests that leave `jobs` at 0.
    pub jobs: usize,
    /// Watcher poll interval.
    pub watch_interval: Duration,
}

impl ServerConfig {
    /// A default configuration over `dir` with bins in `bin_dir`.
    pub fn new(dir: impl Into<PathBuf>, bin_dir: impl Into<PathBuf>) -> ServerConfig {
        ServerConfig {
            dir: dir.into(),
            bin_dir: bin_dir.into(),
            strategy: Strategy::Cutoff,
            jobs: std::thread::available_parallelism().map_or(1, |n| n.get()),
            watch_interval: Duration::from_millis(150),
        }
    }
}

/// Runs a daemon to completion (until a `stop` request): acquires the
/// project lock, opens the resident session, binds the socket, serves.
///
/// # Errors
///
/// `AddrInUse` when a live daemon already owns the project; any IO or
/// [`smlsc_core::CoreError`] failure opening the session or socket.
pub fn run(config: ServerConfig) -> std::io::Result<()> {
    Server::bind(config)?.serve()
}

struct Server {
    config: ServerConfig,
    listener: UnixListener,
    socket: PathBuf,
    lock: lock::LockGuard,
    resident: Arc<Resident>,
    counters: Arc<DaemonCounters>,
    shutdown: Arc<AtomicBool>,
}

impl Server {
    fn bind(config: ServerConfig) -> std::io::Result<Server> {
        let lock = lock::acquire(&config.bin_dir)?;
        let resident = Resident::open(&config.dir, &config.bin_dir, config.strategy, None)
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        let socket = protocol::socket_path(&config.bin_dir);
        // We hold the lock, so any existing socket file is a leftover.
        std::fs::remove_file(&socket).ok();
        let listener = UnixListener::bind(&socket)?;
        Ok(Server {
            config,
            listener,
            socket,
            lock,
            resident: Arc::new(resident),
            counters: Arc::new(DaemonCounters::default()),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    fn serve(mut self) -> std::io::Result<()> {
        let watcher = watcher::spawn(
            Arc::clone(&self.resident),
            Arc::clone(&self.counters),
            Arc::clone(&self.shutdown),
            self.config.watch_interval,
        );
        for stream in self.listener.incoming() {
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            if matches!(
                smlsc_faults::check(points::DAEMON_ACCEPT, "conn"),
                Some(smlsc_faults::FaultKind::Io | smlsc_faults::FaultKind::Torn)
            ) {
                // Injected fault: drop the connection before any frame;
                // the client's handshake fails and it falls back to an
                // in-process build.
                drop(stream);
                continue;
            }
            let ctx = HandlerCtx {
                resident: Arc::clone(&self.resident),
                counters: Arc::clone(&self.counters),
                shutdown: Arc::clone(&self.shutdown),
                socket: self.socket.clone(),
                default_jobs: self.config.jobs,
            };
            std::thread::Builder::new()
                .name("smlsc-daemon-conn".to_string())
                .spawn(move || handle_connection(stream, &ctx))
                .ok();
        }
        watcher.join().ok();
        std::fs::remove_file(&self.socket).ok();
        self.lock.release();
        Ok(())
    }
}

struct HandlerCtx {
    resident: Arc<Resident>,
    counters: Arc<DaemonCounters>,
    shutdown: Arc<AtomicBool>,
    socket: PathBuf,
    default_jobs: usize,
}

fn handle_connection(mut stream: UnixStream, ctx: &HandlerCtx) {
    // Handshake: refuse (with a parseable ack) rather than misparse.
    let hello: Hello = match protocol::recv(&mut stream) {
        Ok(h) => h,
        Err(_) => return,
    };
    let ok = hello.magic == protocol::MAGIC && hello.version == PROTOCOL_VERSION;
    let ack = HelloAck {
        ok,
        version: PROTOCOL_VERSION,
        pid: u64::from(std::process::id()),
    };
    if protocol::send(&mut stream, &ack).is_err() || !ok {
        return;
    }
    let request: Request = match protocol::recv(&mut stream) {
        Ok(r) => r,
        Err(_) => return,
    };
    ctx.counters.requests.fetch_add(1, Ordering::SeqCst);
    let response = dispatch(&request, ctx);
    protocol::send(&mut stream, &response).ok();
    stream.flush().ok();
    if request.kind == "stop" {
        initiate_shutdown(ctx);
    }
}

fn dispatch(request: &Request, ctx: &HandlerCtx) -> Response {
    match request.kind.as_str() {
        "build" => build(request, ctx),
        "stats" => match ctx.resident.last() {
            Some(snap) => {
                let mut r = Response::new();
                r.seq = snap.seq;
                r.stats_json = snap.stats_json.clone();
                r.summary = snap.summary.clone();
                r.exit_code = snap.exit_code;
                r
            }
            None => Response::refuse("no builds served yet"),
        },
        "status" => {
            let mut r = Response::new();
            r.status_json = status_json(ctx);
            r
        }
        "stop" => Response::new(),
        other => Response::refuse(format!("unknown request kind `{other}`")),
    }
}

fn build(request: &Request, ctx: &HandlerCtx) -> Response {
    let jobs = match usize::try_from(request.jobs) {
        Ok(0) | Err(_) => ctx.default_jobs,
        Ok(n) => n,
    };
    let policy = if request.keep_going {
        FailurePolicy::KeepGoing
    } else {
        FailurePolicy::FailFast
    };
    match ctx.resident.build(jobs, policy, request.fresh) {
        Ok((snap, cached)) => {
            let mut r = Response::new();
            r.exit_code = snap.exit_code;
            r.cached = cached;
            r.seq = snap.seq;
            r.summary = snap.summary.clone();
            r.notes = snap.notes.clone();
            if request.explain {
                r.explain = snap.explain.clone();
            }
            r.stats_json = snap.stats_json.clone();
            r
        }
        Err(e) => {
            let mut r = Response::refuse(e.to_string());
            r.exit_code = if e.is_io() {
                4
            } else if e.is_internal() {
                3
            } else {
                1
            };
            r
        }
    }
}

fn status_json(ctx: &HandlerCtx) -> String {
    let builds = ctx.resident.last().map_or(0, |s| s.seq);
    format!(
        "{{\"pid\":{},\"protocol\":{},\"units\":{},\"builds\":{},\"building_high_water\":{},\"{}\":{},\"{}\":{},\"{}\":{}}}",
        std::process::id(),
        PROTOCOL_VERSION,
        ctx.resident.unit_count(),
        builds,
        ctx.resident.building_high_water(),
        names::DAEMON_REQUESTS,
        ctx.counters.requests.load(Ordering::SeqCst),
        names::DAEMON_WATCH_EVENTS,
        ctx.counters.watch_events.load(Ordering::SeqCst),
        names::DAEMON_INVALIDATIONS,
        ctx.counters.invalidations.load(Ordering::SeqCst),
    )
}

fn initiate_shutdown(ctx: &HandlerCtx) {
    ctx.shutdown.store(true, Ordering::SeqCst);
    // Wake the blocking accept so the loop observes the flag.
    UnixStream::connect(&ctx.socket).ok();
}

/// An in-process daemon for tests and benches: same lock, socket and
/// serve loop as [`run`], on a background thread.
#[derive(Debug)]
pub struct ServerHandle {
    socket: PathBuf,
    thread: Option<JoinHandle<std::io::Result<()>>>,
}

impl ServerHandle {
    /// Binds and starts serving; returns once the socket is ready (so
    /// a client can connect immediately).
    ///
    /// # Errors
    ///
    /// Same as [`run`]'s bind phase.
    pub fn spawn(config: ServerConfig) -> std::io::Result<ServerHandle> {
        let server = Server::bind(config)?;
        let socket = server.socket.clone();
        let thread = std::thread::Builder::new()
            .name("smlsc-daemon-serve".to_string())
            .spawn(move || server.serve())?;
        Ok(ServerHandle {
            socket,
            thread: Some(thread),
        })
    }

    /// The socket clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.socket
    }

    /// Requests a clean stop and joins the serve loop.
    ///
    /// # Errors
    ///
    /// Socket errors reaching the daemon (it may already be gone — the
    /// serve thread is still joined).
    pub fn stop(mut self) -> std::io::Result<()> {
        let result = client::request(&self.socket, &Request::simple("stop")).map(|_| ());
        if let Some(thread) = self.thread.take() {
            thread.join().ok();
        }
        result
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        if let Some(thread) = self.thread.take() {
            // Best effort: ask the daemon to stop, then join.
            client::request(&self.socket, &Request::simple("stop")).ok();
            thread.join().ok();
        }
    }
}
