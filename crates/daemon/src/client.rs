//! The daemon client: connect, handshake, one request, one response.
//!
//! Every failure — no socket, refused connection, version-mismatch
//! handshake, a daemon killed mid-request — surfaces as a plain
//! `io::Error`, and the CLI's contract is that *any* client error
//! means "fall back to an in-process build".  The daemon is a latency
//! optimization, never a correctness dependency.

use std::io::{Error, ErrorKind};
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::time::Duration;

use crate::protocol::{self, Hello, HelloAck, Request, Response, PROTOCOL_VERSION};

/// Generous per-read ceiling: a first warm build over a huge project
/// may take a while, but a daemon that goes silent for this long is
/// treated as dead and the client falls back.
const READ_TIMEOUT: Duration = Duration::from_secs(600);

/// A handshaken connection to a daemon.
#[derive(Debug)]
pub struct Client {
    stream: UnixStream,
    /// The daemon's pid, from the handshake ack.
    pub daemon_pid: u64,
}

/// Connects to the daemon socket and completes the version handshake.
///
/// # Errors
///
/// Connection errors verbatim; `ConnectionRefused` when the daemon
/// rejects the handshake (protocol mismatch).
pub fn connect(socket: &Path) -> std::io::Result<Client> {
    let mut stream = UnixStream::connect(socket)?;
    stream.set_read_timeout(Some(READ_TIMEOUT))?;
    protocol::send(&mut stream, &Hello::current())?;
    let ack: HelloAck = protocol::recv(&mut stream)?;
    if !ack.ok || ack.version != PROTOCOL_VERSION {
        return Err(Error::new(
            ErrorKind::ConnectionRefused,
            format!(
                "daemon speaks protocol {} (client speaks {})",
                ack.version, PROTOCOL_VERSION
            ),
        ));
    }
    Ok(Client {
        stream,
        daemon_pid: ack.pid,
    })
}

impl Client {
    /// Sends one request and reads its response.
    ///
    /// # Errors
    ///
    /// Socket errors verbatim — including `UnexpectedEof` when the
    /// daemon dies mid-request.
    pub fn request(mut self, request: &Request) -> std::io::Result<Response> {
        protocol::send(&mut self.stream, request)?;
        protocol::recv(&mut self.stream)
    }
}

/// Connect + handshake + one request, in one call.
///
/// # Errors
///
/// Any error from [`connect`] or [`Client::request`].
pub fn request(socket: &Path, request: &Request) -> std::io::Result<Response> {
    connect(socket)?.request(request)
}

/// Is a daemon answering on this socket right now?  (A full handshake,
/// not just a file-exists check — a stale socket file says no.)
pub fn alive(socket: &Path) -> bool {
    socket.exists() && connect(socket).is_ok()
}
