//! `smlsc-daemon`: the resident build server (DESIGN §6j).
//!
//! A cold `smlsc build` on a warm 50k-unit tree spends its time on
//! process startup and cache loading, not on rebuild decisions.  The
//! daemon pays those costs once: a [`Resident`] session — stamps, deps
//! cache, the lazily indexed `bins.pack`, statenvs — stays hot in one
//! long-lived process, a debounced polling watcher feeds file-event
//! deltas into targeted invalidation, and CLI clients get build,
//! stats and status answers over a per-project Unix-domain socket.
//!
//! The crate splits along the obvious seams:
//!
//! * [`protocol`] — versioned handshake plus length-prefixed JSON
//!   frames ([`Hello`]/[`HelloAck`], [`Request`]/[`Response`]);
//! * [`lock`] — one daemon per project: pid lockfile with stale-owner
//!   takeover;
//! * [`watcher`] — the debounced polling sweep and the daemon-lifetime
//!   [`DaemonCounters`];
//! * [`server`] — socket lifecycle and request dispatch ([`run`] for
//!   the real daemon, [`ServerHandle`] for in-process tests/benches);
//! * [`client`] — connect/handshake/request; every failure is the
//!   CLI's cue to fall back to an in-process build;
//! * [`signal`] — SIGTERM/SIGINT flag for the graceful-shutdown path
//!   (drain in-flight builds, release socket and lockfile).
//!
//! [`Resident`]: smlsc_core::resident::Resident

// `deny`, not `forbid`: the one sanctioned exception is the signal(2)
// binding in [`signal`], scoped under its own `allow`.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod client;
pub mod lock;
pub mod protocol;
pub mod server;
pub mod signal;
pub mod watcher;

pub use client::{alive, connect, Client};
pub use lock::LockGuard;
pub use protocol::{
    lock_path, socket_path, Hello, HelloAck, Request, Response, MAGIC, PROTOCOL_VERSION,
};
pub use server::{run, ServerConfig, ServerHandle};
pub use watcher::DaemonCounters;
