//! Lexer for mini-SML.
//!
//! Handles nested `(* ... *)` comments, string escapes, `'a`-style type
//! variables, alphanumeric and symbolic identifiers, and the keyword set of
//! the supported subset.  Every token carries its source [`Loc`].

use std::fmt;

use smlsc_ids::Symbol;

use crate::Loc;

/// A lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// Alphanumeric identifier (may be a module or value name).
    Ident(Symbol),
    /// Type variable `'a`.
    TyVar(Symbol),
    /// Integer literal (already negated if written with `~`).
    Int(i64),
    /// String literal (escapes resolved).
    Str(String),
    // Keywords.
    /// `and`
    And,
    /// `as`
    As,
    /// `andalso`
    Andalso,
    /// `case`
    Case,
    /// `datatype`
    Datatype,
    /// `div`
    Div,
    /// `else`
    Else,
    /// `end`
    End,
    /// `exception`
    Exception,
    /// `fn`
    Fn,
    /// `fun`
    Fun,
    /// `functor`
    Functor,
    /// `handle`
    Handle,
    /// `if`
    If,
    /// `in`
    In,
    /// `include`
    Include,
    /// `let`
    Let,
    /// `local`
    Local,
    /// `mod`
    Mod,
    /// `of`
    Of,
    /// `open`
    Open,
    /// `orelse`
    Orelse,
    /// `raise`
    Raise,
    /// `sig`
    Sig,
    /// `signature`
    Signature,
    /// `struct`
    Struct,
    /// `structure`
    Structure,
    /// `then`
    Then,
    /// `type`
    Type,
    /// `val`
    Val,
    /// `where`
    Where,
    // Punctuation & symbolic operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `:>`
    ColonGt,
    /// `=`
    Eq,
    /// `=>`
    FatArrow,
    /// `->`
    Arrow,
    /// `|`
    Bar,
    /// `*`
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/` (unsupported in the subset but lexed for better errors)
    Slash,
    /// `^`
    Caret,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<>`
    Neq,
    /// `::`
    Cons,
    /// `@`
    At,
    /// `~` (unary negation)
    Tilde,
    /// `_`
    Underscore,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "identifier `{s}`"),
            Tok::TyVar(s) => write!(f, "type variable `'{s}`"),
            Tok::Int(n) => write!(f, "integer `{n}`"),
            Tok::Str(_) => write!(f, "string literal"),
            Tok::Eof => write!(f, "end of input"),
            other => {
                let s = match other {
                    Tok::And => "and",
                    Tok::As => "as",
                    Tok::Andalso => "andalso",
                    Tok::Case => "case",
                    Tok::Datatype => "datatype",
                    Tok::Div => "div",
                    Tok::Else => "else",
                    Tok::End => "end",
                    Tok::Exception => "exception",
                    Tok::Fn => "fn",
                    Tok::Fun => "fun",
                    Tok::Functor => "functor",
                    Tok::Handle => "handle",
                    Tok::If => "if",
                    Tok::In => "in",
                    Tok::Include => "include",
                    Tok::Let => "let",
                    Tok::Local => "local",
                    Tok::Mod => "mod",
                    Tok::Of => "of",
                    Tok::Open => "open",
                    Tok::Orelse => "orelse",
                    Tok::Raise => "raise",
                    Tok::Sig => "sig",
                    Tok::Signature => "signature",
                    Tok::Struct => "struct",
                    Tok::Structure => "structure",
                    Tok::Then => "then",
                    Tok::Type => "type",
                    Tok::Val => "val",
                    Tok::Where => "where",
                    Tok::LParen => "(",
                    Tok::RParen => ")",
                    Tok::LBracket => "[",
                    Tok::RBracket => "]",
                    Tok::Comma => ",",
                    Tok::Semi => ";",
                    Tok::Dot => ".",
                    Tok::Colon => ":",
                    Tok::ColonGt => ":>",
                    Tok::Eq => "=",
                    Tok::FatArrow => "=>",
                    Tok::Arrow => "->",
                    Tok::Bar => "|",
                    Tok::Star => "*",
                    Tok::Plus => "+",
                    Tok::Minus => "-",
                    Tok::Slash => "/",
                    Tok::Caret => "^",
                    Tok::Lt => "<",
                    Tok::Le => "<=",
                    Tok::Gt => ">",
                    Tok::Ge => ">=",
                    Tok::Neq => "<>",
                    Tok::Cons => "::",
                    Tok::At => "@",
                    Tok::Tilde => "~",
                    Tok::Underscore => "_",
                    _ => unreachable!(),
                };
                write!(f, "`{s}`")
            }
        }
    }
}

/// A token with its source location.
#[derive(Debug, Clone, PartialEq)]
pub struct SpannedTok {
    /// The token.
    pub tok: Tok,
    /// Where it starts.
    pub loc: Loc,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// What went wrong.
    pub message: String,
    /// Where.
    pub loc: Loc,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lexical error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes `src`, ending with a [`Tok::Eof`] token.
///
/// # Errors
///
/// Returns a [`LexError`] on unterminated comments or strings, malformed
/// escapes, integer overflow, or characters outside the subset.
pub fn lex(src: &str) -> Result<Vec<SpannedTok>, LexError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    chars: std::iter::Peekable<std::str::Chars<'s>>,
    line: u32,
    col: u32,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Lexer<'s> {
        Lexer {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn loc(&self) -> Loc {
        Loc {
            line: self.line,
            col: self.col,
        }
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    fn err(&self, message: impl Into<String>) -> LexError {
        LexError {
            message: message.into(),
            loc: self.loc(),
        }
    }

    fn run(mut self) -> Result<Vec<SpannedTok>, LexError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia()?;
            let loc = self.loc();
            let Some(c) = self.peek() else {
                out.push(SpannedTok { tok: Tok::Eof, loc });
                return Ok(out);
            };
            let tok = match c {
                'a'..='z' | 'A'..='Z' => self.ident(),
                '\'' => self.tyvar()?,
                '0'..='9' => self.int(false)?,
                '~' => {
                    self.bump();
                    if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        self.int(true)?
                    } else {
                        Tok::Tilde
                    }
                }
                '"' => self.string()?,
                '_' => {
                    self.bump();
                    Tok::Underscore
                }
                '(' => {
                    self.bump();
                    Tok::LParen
                }
                ')' => {
                    self.bump();
                    Tok::RParen
                }
                '[' => {
                    self.bump();
                    Tok::LBracket
                }
                ']' => {
                    self.bump();
                    Tok::RBracket
                }
                ',' => {
                    self.bump();
                    Tok::Comma
                }
                ';' => {
                    self.bump();
                    Tok::Semi
                }
                '.' => {
                    self.bump();
                    Tok::Dot
                }
                ':' => {
                    self.bump();
                    match self.peek() {
                        Some('>') => {
                            self.bump();
                            Tok::ColonGt
                        }
                        Some(':') => {
                            self.bump();
                            Tok::Cons
                        }
                        _ => Tok::Colon,
                    }
                }
                '=' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        Tok::FatArrow
                    } else {
                        Tok::Eq
                    }
                }
                '-' => {
                    self.bump();
                    if self.peek() == Some('>') {
                        self.bump();
                        Tok::Arrow
                    } else {
                        Tok::Minus
                    }
                }
                '|' => {
                    self.bump();
                    Tok::Bar
                }
                '*' => {
                    self.bump();
                    Tok::Star
                }
                '+' => {
                    self.bump();
                    Tok::Plus
                }
                '/' => {
                    self.bump();
                    Tok::Slash
                }
                '^' => {
                    self.bump();
                    Tok::Caret
                }
                '@' => {
                    self.bump();
                    Tok::At
                }
                '<' => {
                    self.bump();
                    match self.peek() {
                        Some('=') => {
                            self.bump();
                            Tok::Le
                        }
                        Some('>') => {
                            self.bump();
                            Tok::Neq
                        }
                        _ => Tok::Lt,
                    }
                }
                '>' => {
                    self.bump();
                    if self.peek() == Some('=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                other => return Err(self.err(format!("unexpected character {other:?}"))),
            };
            out.push(SpannedTok { tok, loc });
        }
    }

    /// Skips whitespace and (nested) comments.
    fn skip_trivia(&mut self) -> Result<(), LexError> {
        loop {
            match self.peek() {
                Some(c) if c.is_whitespace() => {
                    self.bump();
                }
                Some('(') => {
                    // Peek two ahead for `(*` without consuming `(`.
                    let mut clone = self.chars.clone();
                    clone.next();
                    if clone.peek() == Some(&'*') {
                        self.bump();
                        self.bump();
                        self.skip_comment()?;
                    } else {
                        return Ok(());
                    }
                }
                _ => return Ok(()),
            }
        }
    }

    fn skip_comment(&mut self) -> Result<(), LexError> {
        let mut depth = 1u32;
        while depth > 0 {
            match self.bump() {
                None => return Err(self.err("unterminated comment")),
                Some('(') if self.peek() == Some('*') => {
                    self.bump();
                    depth += 1;
                }
                Some('*') if self.peek() == Some(')') => {
                    self.bump();
                    depth -= 1;
                }
                Some(_) => {}
            }
        }
        Ok(())
    }

    fn ident(&mut self) -> Tok {
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' || c == '\'' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        match s.as_str() {
            "and" => Tok::And,
            "as" => Tok::As,
            "andalso" => Tok::Andalso,
            "case" => Tok::Case,
            "datatype" => Tok::Datatype,
            "div" => Tok::Div,
            "else" => Tok::Else,
            "end" => Tok::End,
            "exception" => Tok::Exception,
            "fn" => Tok::Fn,
            "fun" => Tok::Fun,
            "functor" => Tok::Functor,
            "handle" => Tok::Handle,
            "if" => Tok::If,
            "in" => Tok::In,
            "include" => Tok::Include,
            "let" => Tok::Let,
            "local" => Tok::Local,
            "mod" => Tok::Mod,
            "of" => Tok::Of,
            "open" => Tok::Open,
            "orelse" => Tok::Orelse,
            "raise" => Tok::Raise,
            "sig" => Tok::Sig,
            "signature" => Tok::Signature,
            "struct" => Tok::Struct,
            "structure" => Tok::Structure,
            "then" => Tok::Then,
            "type" => Tok::Type,
            "val" => Tok::Val,
            "where" => Tok::Where,
            _ => Tok::Ident(Symbol::intern(&s)),
        }
    }

    fn tyvar(&mut self) -> Result<Tok, LexError> {
        self.bump(); // '
        let mut s = String::new();
        while let Some(c) = self.peek() {
            if c.is_ascii_alphanumeric() || c == '_' {
                s.push(c);
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() {
            return Err(self.err("expected a type variable name after `'`"));
        }
        Ok(Tok::TyVar(Symbol::intern(&s)))
    }

    fn int(&mut self, negate: bool) -> Result<Tok, LexError> {
        let mut v: i64 = 0;
        while let Some(c) = self.peek() {
            if let Some(d) = c.to_digit(10) {
                self.bump();
                v = v
                    .checked_mul(10)
                    .and_then(|v| v.checked_add(i64::from(d)))
                    .ok_or_else(|| self.err("integer literal overflows 64 bits"))?;
            } else {
                break;
            }
        }
        Ok(Tok::Int(if negate { -v } else { v }))
    }

    fn string(&mut self) -> Result<Tok, LexError> {
        self.bump(); // opening quote
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string literal")),
                Some('"') => return Ok(Tok::Str(s)),
                Some('\\') => match self.bump() {
                    Some('n') => s.push('\n'),
                    Some('t') => s.push('\t'),
                    Some('\\') => s.push('\\'),
                    Some('"') => s.push('"'),
                    other => return Err(self.err(format!("unsupported string escape {other:?}"))),
                },
                Some('\n') => return Err(self.err("newline in string literal")),
                Some(c) => s.push(c),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        lex(src).unwrap().into_iter().map(|t| t.tok).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            toks("val x = fn"),
            vec![
                Tok::Val,
                Tok::Ident(Symbol::intern("x")),
                Tok::Eq,
                Tok::Fn,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn symbolic_tokens() {
        assert_eq!(
            toks(":> :: : => = -> <> <= >="),
            vec![
                Tok::ColonGt,
                Tok::Cons,
                Tok::Colon,
                Tok::FatArrow,
                Tok::Eq,
                Tok::Arrow,
                Tok::Neq,
                Tok::Le,
                Tok::Ge,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn nested_comments() {
        assert_eq!(
            toks("a (* outer (* inner *) still *) b"),
            vec![
                Tok::Ident(Symbol::intern("a")),
                Tok::Ident(Symbol::intern("b")),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn unterminated_comment_is_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn negative_ints_and_tilde() {
        assert_eq!(toks("~3"), vec![Tok::Int(-3), Tok::Eof]);
        assert_eq!(
            toks("~x"),
            vec![Tok::Tilde, Tok::Ident(Symbol::intern("x")), Tok::Eof]
        );
    }

    #[test]
    fn strings_with_escapes() {
        assert_eq!(
            toks(r#""a\nb\"c""#),
            vec![Tok::Str("a\nb\"c".into()), Tok::Eof]
        );
        assert!(lex("\"unterminated").is_err());
    }

    #[test]
    fn tyvars() {
        assert_eq!(
            toks("'a 'elem"),
            vec![
                Tok::TyVar(Symbol::intern("a")),
                Tok::TyVar(Symbol::intern("elem")),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn locations_are_tracked() {
        let ts = lex("val\n  x").unwrap();
        assert_eq!(ts[0].loc, Loc { line: 1, col: 1 });
        assert_eq!(ts[1].loc, Loc { line: 2, col: 3 });
    }

    #[test]
    fn primes_allowed_in_idents() {
        assert_eq!(
            toks("x' f'' y_1"),
            vec![
                Tok::Ident(Symbol::intern("x'")),
                Tok::Ident(Symbol::intern("f''")),
                Tok::Ident(Symbol::intern("y_1")),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn int_overflow_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }
}
