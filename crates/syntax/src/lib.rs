//! Mini-Standard-ML frontend: lexer, parser, AST, and import analysis.
//!
//! The paper's separate-compilation machinery presupposes a Standard ML
//! module language: signatures, structures and functors with *transparent*
//! signature matching (§2, Figure 1), over a core language rich enough to
//! give modules real bodies.  This crate implements the syntax half of that
//! frontend for a substantial ML subset:
//!
//! * **core language** — integer/string/bool/unit literals, tuples, lists,
//!   `fn`/`let`/`if`/`case`/`raise`/`handle`, clausal `fun` definitions
//!   with pattern matching, `val`, `type`, `datatype`, `exception`,
//!   `local`, `open`, and the standard infix operators at SML precedences;
//! * **module language** — `signature`, `structure`, `functor` bindings,
//!   `sig`/`struct` expressions, transparent (`:`) and opaque (`:>`)
//!   ascription, functor application, `include`, and `where type`;
//! * **compilation units** — a source file parses to a [`ast::UnitAst`],
//!   a sequence of module-level bindings (the paper's recommendation —
//!   footnote 4 — that separately compiled units contain structures,
//!   functors and signatures but no top-level core bindings);
//! * **import analysis** ([`deps`]) — the free module names of a unit,
//!   which is how the IRM discovers inter-unit dependencies without
//!   makefiles (§8).
//!
//! # Examples
//!
//! ```
//! let src = r#"
//!     signature S = sig val x : int end
//!     structure A : S = struct val x = 1 end
//! "#;
//! let unit = smlsc_syntax::parse_unit(src).expect("parses");
//! assert_eq!(unit.decs.len(), 2);
//! assert!(smlsc_syntax::deps::free_module_names(&unit).is_empty());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ast;
pub mod deps;
pub mod lexer;
pub mod parser;
pub mod printer;

pub use ast::UnitAst;
pub use parser::{parse_unit, ParseError};

/// A source location (1-based line and column), carried on tokens and
/// reported in parse and elaboration errors.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, Default, serde::Serialize, serde::Deserialize,
)]
pub struct Loc {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub col: u32,
}

impl std::fmt::Display for Loc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}
