//! Import analysis: the free module-level names of a compilation unit.
//!
//! §8 of the paper: the IRM "analyzes dependencies among the source files
//! ... automatically" — no makefiles.  A unit's imports are exactly the
//! structure, signature and functor names it mentions but does not bind.
//! Core-level unqualified names never escape a unit (footnote 4: units
//! contain only module bindings), so free *module* names suffice.
//!
//! Shadowing is respected per namespace: a functor parameter `P` hides an
//! outer structure `P` inside the functor body, a `let`-bound structure
//! hides an import inside its scope, and so on.

use std::collections::BTreeSet;

use smlsc_ids::{Digest128, Pid, Symbol};

use crate::ast::*;

/// Digests the token stream of `src`, ignoring whitespace, comments, and
/// token positions: two sources that lex to the same tokens get the same
/// pid even when their raw bytes (and hence their source pids) differ.
///
/// The IRM uses this to keep a cached dependency analysis alive across
/// comment-only and reformatting edits — imports and exports are derived
/// from the token stream, so an equal token pid guarantees an equal
/// analysis.  Returns `None` when the source does not lex; such a unit
/// must be re-analyzed the slow way (and will fail there with a proper
/// diagnostic).
///
/// # Examples
///
/// ```
/// let a = smlsc_syntax::deps::token_pid("structure A = struct end").unwrap();
/// let b = smlsc_syntax::deps::token_pid(
///     "(* new comment *) structure A =\n  struct end",
/// )
/// .unwrap();
/// assert_eq!(a, b);
/// ```
pub fn token_pid(src: &str) -> Option<Pid> {
    let toks = crate::lexer::lex(src).ok()?;
    let mut d = Digest128::new();
    for t in &toks {
        // Loc is deliberately excluded: comment edits shift positions
        // without changing meaning.  Debug on Tok spells out the variant
        // and payload, and the length prefix keeps adjacent tokens from
        // colliding by concatenation.
        d.write_str(&format!("{:?}", t.tok));
    }
    d.write_u64(toks.len() as u64);
    Some(d.finish_pid())
}

/// Returns the free module-level names of `unit`, sorted by name.
///
/// These are the names the unit imports: every structure, signature or
/// functor referenced but not bound by the unit itself.
///
/// # Examples
///
/// ```
/// let unit = smlsc_syntax::parse_unit(
///     "structure B : S = struct val y = A.x end",
/// ).unwrap();
/// let free = smlsc_syntax::deps::free_module_names(&unit);
/// let names: Vec<&str> = free.iter().map(|s| s.as_str()).collect();
/// assert_eq!(names, vec!["A", "S"]);
/// ```
pub fn free_module_names(unit: &UnitAst) -> Vec<Symbol> {
    let mut c = Collector::new();
    for dec in &unit.decs {
        c.topdec(dec);
    }
    let mut v: Vec<Symbol> = c.free.into_iter().collect();
    v.sort_by_key(|s| s.as_str());
    v
}

/// One lexical scope's worth of module bindings, split by namespace.
#[derive(Default)]
struct Scope {
    strs: BTreeSet<Symbol>,
    sigs: BTreeSet<Symbol>,
    fcts: BTreeSet<Symbol>,
}

struct Collector {
    scopes: Vec<Scope>,
    free: BTreeSet<Symbol>,
}

#[derive(Clone, Copy)]
enum Ns {
    Str,
    Sig,
    Fct,
}

impl Collector {
    fn new() -> Collector {
        Collector {
            scopes: vec![Scope::default()],
            free: BTreeSet::new(),
        }
    }

    fn push(&mut self) {
        self.scopes.push(Scope::default());
    }

    fn pop(&mut self) {
        self.scopes.pop();
    }

    fn bind(&mut self, ns: Ns, name: Symbol) {
        let top = self.scopes.last_mut().expect("at least one scope");
        match ns {
            Ns::Str => top.strs.insert(name),
            Ns::Sig => top.sigs.insert(name),
            Ns::Fct => top.fcts.insert(name),
        };
    }

    fn is_bound(&self, ns: Ns, name: Symbol) -> bool {
        self.scopes.iter().rev().any(|s| match ns {
            Ns::Str => s.strs.contains(&name),
            Ns::Sig => s.sigs.contains(&name),
            Ns::Fct => s.fcts.contains(&name),
        })
    }

    fn reference(&mut self, ns: Ns, name: Symbol) {
        if !self.is_bound(ns, name) {
            self.free.insert(name);
        }
    }

    /// A qualified path's root is a structure reference; unqualified value
    /// or type names are core-level and never unit imports.
    fn path(&mut self, p: &Path) {
        if !p.is_simple() {
            self.reference(Ns::Str, p.root());
        }
    }

    /// A path in *structure position* is a structure reference even when
    /// unqualified.
    fn str_path(&mut self, p: &Path) {
        self.reference(Ns::Str, p.root());
    }

    fn topdec(&mut self, d: &TopDec) {
        match d {
            TopDec::Signature { name, def, .. } => {
                self.sigexp(def);
                self.bind(Ns::Sig, *name);
            }
            TopDec::Structure {
                name,
                constraint,
                def,
                ..
            } => {
                if let Some((sig, _)) = constraint {
                    self.sigexp(sig);
                }
                self.strexp(def);
                self.bind(Ns::Str, *name);
            }
            TopDec::Functor {
                name,
                param,
                param_sig,
                result,
                body,
                ..
            } => {
                self.sigexp(param_sig);
                self.push();
                self.bind(Ns::Str, *param);
                if let Some((sig, _)) = result {
                    self.sigexp(sig);
                }
                self.strexp(body);
                self.pop();
                self.bind(Ns::Fct, *name);
            }
        }
    }

    fn sigexp(&mut self, s: &SigExp) {
        match s {
            SigExp::Var(name) => self.reference(Ns::Sig, *name),
            SigExp::Sig(specs) => {
                self.push();
                for spec in specs {
                    self.spec(spec);
                }
                self.pop();
            }
            SigExp::WhereType {
                base, ty_path, def, ..
            } => {
                self.sigexp(base);
                // The constrained type lives *inside* the signature; only its
                // definition can mention imports.
                let _ = ty_path;
                self.ty(def);
            }
        }
    }

    fn spec(&mut self, s: &Spec) {
        match s {
            Spec::Val(_, ty) => self.ty(ty),
            Spec::Type { def, .. } => {
                if let Some(t) = def {
                    self.ty(t);
                }
            }
            Spec::Datatype(dbs) => {
                for db in dbs {
                    for (_, arg) in &db.cons {
                        if let Some(t) = arg {
                            self.ty(t);
                        }
                    }
                }
            }
            Spec::Exception(_, arg) => {
                if let Some(t) = arg {
                    self.ty(t);
                }
            }
            Spec::Structure(name, sig) => {
                self.sigexp(sig);
                self.bind(Ns::Str, *name);
            }
            Spec::Include(sig) => self.sigexp(sig),
        }
    }

    fn strexp(&mut self, s: &StrExp) {
        match s {
            StrExp::Var(p) => self.str_path(p),
            StrExp::Struct(decs) => {
                self.push();
                for d in decs {
                    self.strdec(d);
                }
                self.pop();
            }
            StrExp::Ascribe { str, sig, .. } => {
                self.strexp(str);
                self.sigexp(sig);
            }
            StrExp::App(f, arg) => {
                self.reference(Ns::Fct, *f);
                self.strexp(arg);
            }
            StrExp::Let(decs, body) => {
                self.push();
                for d in decs {
                    self.strdec(d);
                }
                self.strexp(body);
                self.pop();
            }
        }
    }

    fn strdec(&mut self, d: &StrDec) {
        match d {
            StrDec::Core(dec) => self.dec(dec),
            StrDec::Structure {
                name,
                constraint,
                def,
                ..
            } => {
                if let Some((sig, _)) = constraint {
                    self.sigexp(sig);
                }
                self.strexp(def);
                self.bind(Ns::Str, *name);
            }
        }
    }

    fn dec(&mut self, d: &Dec) {
        match d {
            Dec::Val { pat, exp, .. } => {
                self.pat(pat);
                self.exp(exp);
            }
            Dec::Fun(fbs) => {
                for fb in fbs {
                    for cl in &fb.clauses {
                        for p in &cl.params {
                            self.pat(p);
                        }
                        if let Some(t) = &cl.result_ty {
                            self.ty(t);
                        }
                        self.exp(&cl.body);
                    }
                }
            }
            Dec::Type { def, .. } => self.ty(def),
            Dec::Datatype(dbs) => {
                for db in dbs {
                    for (_, arg) in &db.cons {
                        if let Some(t) = arg {
                            self.ty(t);
                        }
                    }
                }
            }
            Dec::Exception { arg, .. } => {
                if let Some(t) = arg {
                    self.ty(t);
                }
            }
            Dec::Local(hidden, visible) => {
                for d in hidden {
                    self.dec(d);
                }
                for d in visible {
                    self.dec(d);
                }
            }
            Dec::Open(paths) => {
                for p in paths {
                    self.str_path(p);
                }
            }
        }
    }

    fn pat(&mut self, p: &Pat) {
        match p {
            Pat::Wild | Pat::Lit(_) => {}
            Pat::Var(path) => self.path(path),
            Pat::Tuple(ps) | Pat::List(ps) => {
                for p in ps {
                    self.pat(p);
                }
            }
            Pat::Con(path, arg) => {
                self.path(path);
                self.pat(arg);
            }
            Pat::Ascribe(p, ty) => {
                self.pat(p);
                self.ty(ty);
            }
            Pat::As(_, p) => self.pat(p),
        }
    }

    fn exp(&mut self, e: &Exp) {
        match e {
            Exp::Lit(_) => {}
            Exp::Var(p) => self.path(p),
            Exp::Tuple(es) | Exp::List(es) | Exp::Seq(es) | Exp::Prim(_, es) => {
                for e in es {
                    self.exp(e);
                }
            }
            Exp::App(f, a) => {
                self.exp(f);
                self.exp(a);
            }
            Exp::Andalso(a, b) | Exp::Orelse(a, b) => {
                self.exp(a);
                self.exp(b);
            }
            Exp::Fn(rules) => self.rules(rules),
            Exp::Let(decs, body) => {
                self.push();
                for d in decs {
                    self.dec(d);
                }
                self.exp(body);
                self.pop();
            }
            Exp::If(c, t, e2) => {
                self.exp(c);
                self.exp(t);
                self.exp(e2);
            }
            Exp::Case(scrut, rules) => {
                self.exp(scrut);
                self.rules(rules);
            }
            Exp::Raise(e) => self.exp(e),
            Exp::Handle(e, rules) => {
                self.exp(e);
                self.rules(rules);
            }
            Exp::Ascribe(e, ty) => {
                self.exp(e);
                self.ty(ty);
            }
        }
    }

    fn rules(&mut self, rules: &[Rule]) {
        for r in rules {
            self.pat(&r.pat);
            self.exp(&r.exp);
        }
    }

    fn ty(&mut self, t: &Ty) {
        match t {
            Ty::Var(_) => {}
            Ty::Con(p, args) => {
                self.path(p);
                for a in args {
                    self.ty(a);
                }
            }
            Ty::Tuple(ts) => {
                for t in ts {
                    self.ty(t);
                }
            }
            Ty::Arrow(a, b) => {
                self.ty(a);
                self.ty(b);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_unit;

    fn free(src: &str) -> Vec<&'static str> {
        free_module_names(&parse_unit(src).unwrap())
            .into_iter()
            .map(|s| s.as_str())
            .collect()
    }

    #[test]
    fn closed_unit_has_no_imports() {
        assert!(free("structure A = struct val x = 1 end").is_empty());
    }

    #[test]
    fn qualified_value_reference_is_an_import() {
        assert_eq!(free("structure B = struct val y = A.x end"), vec!["A"]);
    }

    #[test]
    fn signature_reference_is_an_import() {
        assert_eq!(free("structure B : S = struct val y = 1 end"), vec!["S"]);
    }

    #[test]
    fn functor_application_imports_functor_and_argument() {
        assert_eq!(free("structure C = F(A)"), vec!["A", "F"]);
    }

    #[test]
    fn locally_bound_names_are_not_imports() {
        assert!(free(
            "signature S = sig val x : int end
             structure A : S = struct val x = 1 end
             structure B = struct val y = A.x end"
        )
        .is_empty());
    }

    #[test]
    fn functor_parameter_shadows() {
        assert!(free("functor F (P : sig val x : int end) = struct val y = P.x end").is_empty());
    }

    #[test]
    fn functor_parameter_shadowing_is_scoped() {
        // P free in the second functor? No — each binds its own P; but the
        // reference to Q escapes.
        assert_eq!(
            free("functor F (P : sig val x : int end) = struct val y = P.x + Q.z end"),
            vec!["Q"]
        );
    }

    #[test]
    fn type_references_count() {
        assert_eq!(
            free("structure B = struct val f = fn (x : A.t) => x end"),
            vec!["A"]
        );
    }

    #[test]
    fn open_is_an_import() {
        assert_eq!(free("structure B = struct open A val y = x end"), vec!["A"]);
    }

    #[test]
    fn where_type_rhs_can_import() {
        assert_eq!(
            free(
                "signature T = sig type t end
                 structure B : T where type t = A.u = struct type t = A.u end"
            ),
            vec!["A"]
        );
    }

    #[test]
    fn let_bound_structures_do_not_leak() {
        assert!(free(
            "structure A = let structure H = struct val x = 1 end
                           in struct val y = H.x end end"
        )
        .is_empty());
    }

    #[test]
    fn nested_structure_binding_shadows() {
        assert!(free(
            "structure A = struct
               structure Inner = struct val x = 1 end
               val y = Inner.x
             end"
        )
        .is_empty());
    }

    #[test]
    fn deep_qualified_path_only_imports_root() {
        assert_eq!(free("structure B = struct val y = A.C.D.x end"), vec!["A"]);
    }

    #[test]
    fn figure_one_dependencies() {
        let src = "structure FSort : SORT = TopSort(Factors)";
        assert_eq!(free(src), vec!["Factors", "SORT", "TopSort"]);
    }

    #[test]
    fn token_pid_ignores_comments_and_whitespace() {
        let a = token_pid("structure A = struct val x = 1 end").unwrap();
        let b = token_pid("(* c *) structure A =\n  struct\n  val x = 1 end\n").unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn token_pid_sees_semantic_edits() {
        let a = token_pid("structure A = struct val x = 1 end").unwrap();
        let b = token_pid("structure A = struct val x = 2 end").unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn token_pid_distinguishes_identifier_splits() {
        // "ab c" and "a bc" must not collide via concatenation.
        assert_ne!(
            token_pid("structure Ab = C").unwrap(),
            token_pid("structure A = Bc").unwrap()
        );
    }

    #[test]
    fn token_pid_of_unlexable_source_is_none() {
        assert!(token_pid("val s = \"unterminated").is_none());
    }
}
