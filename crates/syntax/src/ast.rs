//! Abstract syntax for the mini-SML core and module languages.
//!
//! All AST types derive `Serialize`/`Deserialize`: the elaborated AST is
//! the "code" component of a compiled unit (§3 of the paper factors a unit
//! into `statenv × code × imports × exports`), and code objects are written
//! into bin files by the compilation manager.

use serde::{Deserialize, Serialize};
use smlsc_ids::Symbol;

use crate::Loc;

/// A possibly-qualified identifier `A.B.x`.
///
/// `qualifiers` holds the structure path (`A`, `B`) and `last` the final
/// component (`x`).  An unqualified name has an empty qualifier list.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Path {
    /// Structure components, outermost first.
    pub qualifiers: Vec<Symbol>,
    /// The final identifier.
    pub last: Symbol,
}

impl Path {
    /// An unqualified path.
    pub fn simple(sym: Symbol) -> Path {
        Path {
            qualifiers: Vec::new(),
            last: sym,
        }
    }

    /// The root of the path: the first qualifier if any, otherwise `last`.
    ///
    /// For a compilation unit this is the name that must be found in the
    /// environment — i.e. the unit-level import when not locally bound.
    pub fn root(&self) -> Symbol {
        self.qualifiers.first().copied().unwrap_or(self.last)
    }

    /// True if the path has no qualifiers.
    pub fn is_simple(&self) -> bool {
        self.qualifiers.is_empty()
    }
}

impl std::fmt::Display for Path {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for q in &self.qualifiers {
            write!(f, "{q}.")?;
        }
        write!(f, "{}", self.last)
    }
}

/// Type expressions.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Ty {
    /// A type variable `'a`.
    Var(Symbol),
    /// A (possibly nullary) type-constructor application: `int`,
    /// `'a list`, `(int, string) pair`, `A.t`.
    Con(Path, Vec<Ty>),
    /// A tuple type `t1 * t2 * ...` (two or more components).
    Tuple(Vec<Ty>),
    /// A function type `t1 -> t2`.
    Arrow(Box<Ty>, Box<Ty>),
}

/// Constant literals.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Lit {
    /// Integer constant (SML `~` negation is folded in by the parser).
    Int(i64),
    /// String constant.
    Str(String),
    /// `()`.
    Unit,
}

/// Patterns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Pat {
    /// `_`
    Wild,
    /// A variable binding, or a nullary constructor if the name is one in
    /// scope (resolved during elaboration, as in SML).
    Var(Path),
    /// Constant pattern.
    Lit(Lit),
    /// Tuple pattern `(p1, p2, ...)`.
    Tuple(Vec<Pat>),
    /// Constructor application pattern `C p` or `x :: xs`.
    Con(Path, Box<Pat>),
    /// List pattern `[p1, p2]` (sugar for `::`/`nil`, kept for fidelity of
    /// error messages; desugared in elaboration).
    List(Vec<Pat>),
    /// Type-ascribed pattern `p : ty`.
    Ascribe(Box<Pat>, Ty),
    /// Layered pattern `x as p`: binds `x` to the whole value while also
    /// matching `p`.
    As(Symbol, Box<Pat>),
}

/// A `match` arm: `pat => exp`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rule {
    /// The pattern.
    pub pat: Pat,
    /// The right-hand side.
    pub exp: Exp,
}

/// Primitive binary operators, resolved from infix syntax by the parser.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PrimOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `^` string concatenation
    Concat,
    /// `=` polymorphic-ish equality (restricted to equality types in elaboration)
    Eq,
    /// `<>`
    Neq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// unary `~` (negation); parser emits it with a single operand
    Neg,
    /// `@` list append
    Append,
    /// `itos` — integer to string (pervasive value, not infix syntax)
    ItoS,
    /// `size` — string length (pervasive value, not infix syntax)
    Size,
}

impl PrimOp {
    /// Source spelling of the operator.
    pub fn name(self) -> &'static str {
        match self {
            PrimOp::Add => "+",
            PrimOp::Sub => "-",
            PrimOp::Mul => "*",
            PrimOp::Div => "div",
            PrimOp::Mod => "mod",
            PrimOp::Concat => "^",
            PrimOp::Eq => "=",
            PrimOp::Neq => "<>",
            PrimOp::Lt => "<",
            PrimOp::Le => "<=",
            PrimOp::Gt => ">",
            PrimOp::Ge => ">=",
            PrimOp::Neg => "~",
            PrimOp::Append => "@",
            PrimOp::ItoS => "itos",
            PrimOp::Size => "size",
        }
    }

    /// Inverse of [`PrimOp::name`] (used by the bin-file pickler).
    pub fn from_name(name: &str) -> Option<PrimOp> {
        [
            PrimOp::Add,
            PrimOp::Sub,
            PrimOp::Mul,
            PrimOp::Div,
            PrimOp::Mod,
            PrimOp::Concat,
            PrimOp::Eq,
            PrimOp::Neq,
            PrimOp::Lt,
            PrimOp::Le,
            PrimOp::Gt,
            PrimOp::Ge,
            PrimOp::Neg,
            PrimOp::Append,
            PrimOp::ItoS,
            PrimOp::Size,
        ]
        .into_iter()
        .find(|op| op.name() == name)
    }
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Exp {
    /// Constant.
    Lit(Lit),
    /// Variable or constructor reference.
    Var(Path),
    /// Tuple `(e1, e2, ...)` (two or more components).
    Tuple(Vec<Exp>),
    /// List `[e1, e2, ...]`.
    List(Vec<Exp>),
    /// Application `e1 e2`.
    App(Box<Exp>, Box<Exp>),
    /// Primitive operator application.
    Prim(PrimOp, Vec<Exp>),
    /// `andalso` (short-circuit; not expressible as an application).
    Andalso(Box<Exp>, Box<Exp>),
    /// `orelse`.
    Orelse(Box<Exp>, Box<Exp>),
    /// `fn match`.
    Fn(Vec<Rule>),
    /// `let decs in exp end`.
    Let(Vec<Dec>, Box<Exp>),
    /// `if e1 then e2 else e3`.
    If(Box<Exp>, Box<Exp>, Box<Exp>),
    /// `case e of match`.
    Case(Box<Exp>, Vec<Rule>),
    /// `raise e`.
    Raise(Box<Exp>),
    /// `e handle match`.
    Handle(Box<Exp>, Vec<Rule>),
    /// `(e1; e2; ...; en)` — evaluate all, yield the last.
    Seq(Vec<Exp>),
    /// `e : ty`.
    Ascribe(Box<Exp>, Ty),
}

/// One clause of a `fun` definition: `f p1 ... pn [: ty] = e`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clause {
    /// Curried parameter patterns (at least one).
    pub params: Vec<Pat>,
    /// Optional result-type annotation.
    pub result_ty: Option<Ty>,
    /// The clause body.
    pub body: Exp,
}

/// One function in a `fun ... and ...` group.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunBind {
    /// The function name.
    pub name: Symbol,
    /// Its clauses (all with the same arity).
    pub clauses: Vec<Clause>,
    /// Location of the binding, for error messages.
    pub loc: Loc,
}

/// One datatype in a `datatype ... and ...` group.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatBind {
    /// Bound type variables `('a, 'b)`.
    pub tyvars: Vec<Symbol>,
    /// The type name.
    pub name: Symbol,
    /// Constructors with optional argument types.
    pub cons: Vec<(Symbol, Option<Ty>)>,
}

/// Core-language declarations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Dec {
    /// `val pat = exp`.
    Val {
        /// The binding pattern.
        pat: Pat,
        /// The bound expression.
        exp: Exp,
        /// Source location.
        loc: Loc,
    },
    /// `fun f ... and g ...` (mutually recursive).
    Fun(Vec<FunBind>),
    /// `type ('a) t = ty` — a type abbreviation.
    Type {
        /// Bound type variables.
        tyvars: Vec<Symbol>,
        /// The type name.
        name: Symbol,
        /// The definition.
        def: Ty,
    },
    /// `datatype ... and ...` (generative).
    Datatype(Vec<DatBind>),
    /// `exception E [of ty]`.
    Exception {
        /// The exception constructor name.
        name: Symbol,
        /// Optional argument type.
        arg: Option<Ty>,
    },
    /// `local decs in decs end`.
    Local(Vec<Dec>, Vec<Dec>),
    /// `open Path` — splice a structure's bindings into scope.
    Open(Vec<Path>),
}

/// Signature expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SigExp {
    /// A named signature.
    Var(Symbol),
    /// `sig specs end`.
    Sig(Vec<Spec>),
    /// `sigexp where type tyvars path = ty`.
    WhereType {
        /// The constrained signature.
        base: Box<SigExp>,
        /// Bound type variables of the definition.
        tyvars: Vec<Symbol>,
        /// Path, within the signature, of the type being defined.
        ty_path: Path,
        /// The manifest definition.
        def: Ty,
    },
}

/// Specifications inside `sig ... end`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Spec {
    /// `val x : ty`.
    Val(Symbol, Ty),
    /// `type ('a) t` (abstract) or `type ('a) t = ty` (manifest).
    Type {
        /// Bound type variables.
        tyvars: Vec<Symbol>,
        /// The type name.
        name: Symbol,
        /// `Some` for a manifest type, `None` for abstract.
        def: Option<Ty>,
    },
    /// `datatype` specification (fully transparent).
    Datatype(Vec<DatBind>),
    /// `exception E [of ty]`.
    Exception(Symbol, Option<Ty>),
    /// `structure X : sigexp`.
    Structure(Symbol, SigExp),
    /// `include sigexp`.
    Include(SigExp),
}

/// Structure expressions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrExp {
    /// A structure path `A.B`.
    Var(Path),
    /// `struct strdecs end`.
    Struct(Vec<StrDec>),
    /// `strexp : sigexp` (transparent) or `strexp :> sigexp` (opaque).
    Ascribe {
        /// The constrained structure.
        str: Box<StrExp>,
        /// The ascribed signature.
        sig: SigExp,
        /// `true` for `:>`.
        opaque: bool,
    },
    /// Functor application `F(strexp)`.
    App(Symbol, Box<StrExp>),
    /// `let strdecs in strexp end`.
    Let(Vec<StrDec>, Box<StrExp>),
}

/// Declarations that may appear inside `struct ... end`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StrDec {
    /// A core declaration.
    Core(Dec),
    /// `structure X [: S | :> S] = strexp`.
    Structure {
        /// The structure name.
        name: Symbol,
        /// Optional ascription.
        constraint: Option<(SigExp, bool)>,
        /// The definition.
        def: StrExp,
        /// Source location.
        loc: Loc,
    },
}

/// Top-level (unit-level) bindings.
///
/// Following the paper's recommendation (footnote 4), compilation units
/// contain structures, functors, and signatures but no top-level core
/// declarations.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TopDec {
    /// `signature S = sigexp`.
    Signature {
        /// The signature name.
        name: Symbol,
        /// The definition.
        def: SigExp,
        /// Source location.
        loc: Loc,
    },
    /// `structure X [: S | :> S] = strexp`.
    Structure {
        /// The structure name.
        name: Symbol,
        /// Optional ascription.
        constraint: Option<(SigExp, bool)>,
        /// The definition.
        def: StrExp,
        /// Source location.
        loc: Loc,
    },
    /// `functor F (P : S) [: S' | :> S'] = strexp`.
    Functor {
        /// The functor name.
        name: Symbol,
        /// The formal parameter name.
        param: Symbol,
        /// The parameter signature.
        param_sig: SigExp,
        /// Optional result ascription.
        result: Option<(SigExp, bool)>,
        /// The body.
        body: StrExp,
        /// Source location.
        loc: Loc,
    },
}

impl TopDec {
    /// The name bound by this declaration.
    pub fn name(&self) -> Symbol {
        match self {
            TopDec::Signature { name, .. }
            | TopDec::Structure { name, .. }
            | TopDec::Functor { name, .. } => *name,
        }
    }
}

/// A parsed compilation unit: the contents of one source file.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnitAst {
    /// The unit's module-level bindings, in source order.
    pub decs: Vec<TopDec>,
}

impl UnitAst {
    /// Names bound at the top level of this unit (its exports).
    pub fn bound_names(&self) -> Vec<Symbol> {
        self.decs.iter().map(TopDec::name).collect()
    }

    /// Resets every source location to the default.  Locations are
    /// diagnostic metadata; stripping them makes ASTs comparable across
    /// print/re-parse round trips.
    pub fn strip_locs(&mut self) {
        for d in &mut self.decs {
            strip_topdec(d);
        }
    }
}

fn strip_topdec(d: &mut TopDec) {
    match d {
        TopDec::Signature { loc, .. } => *loc = Loc::default(),
        TopDec::Structure { loc, def, .. } => {
            *loc = Loc::default();
            strip_strexp(def);
        }
        TopDec::Functor { loc, body, .. } => {
            *loc = Loc::default();
            strip_strexp(body);
        }
    }
}

fn strip_strexp(s: &mut StrExp) {
    match s {
        StrExp::Var(_) => {}
        StrExp::Struct(decs) => {
            for d in decs {
                strip_strdec(d);
            }
        }
        StrExp::Ascribe { str, .. } => strip_strexp(str),
        StrExp::App(_, arg) => strip_strexp(arg),
        StrExp::Let(decs, body) => {
            for d in decs {
                strip_strdec(d);
            }
            strip_strexp(body);
        }
    }
}

fn strip_strdec(d: &mut StrDec) {
    match d {
        StrDec::Core(dec) => strip_dec(dec),
        StrDec::Structure { loc, def, .. } => {
            *loc = Loc::default();
            strip_strexp(def);
        }
    }
}

fn strip_dec(d: &mut Dec) {
    match d {
        Dec::Val { loc, exp, .. } => {
            *loc = Loc::default();
            strip_exp(exp);
        }
        Dec::Fun(fbs) => {
            for fb in fbs {
                fb.loc = Loc::default();
                for cl in &mut fb.clauses {
                    strip_exp(&mut cl.body);
                }
            }
        }
        Dec::Type { .. } | Dec::Datatype(_) | Dec::Exception { .. } | Dec::Open(_) => {}
        Dec::Local(h, v) => {
            for d in h.iter_mut().chain(v.iter_mut()) {
                strip_dec(d);
            }
        }
    }
}

fn strip_exp(e: &mut Exp) {
    match e {
        Exp::Lit(_) | Exp::Var(_) => {}
        Exp::Tuple(es) | Exp::List(es) | Exp::Seq(es) | Exp::Prim(_, es) => {
            for x in es {
                strip_exp(x);
            }
        }
        Exp::App(a, b) | Exp::Andalso(a, b) | Exp::Orelse(a, b) => {
            strip_exp(a);
            strip_exp(b);
        }
        Exp::Fn(rules) => {
            for r in rules {
                strip_exp(&mut r.exp);
            }
        }
        Exp::Let(decs, body) => {
            for d in decs {
                strip_dec(d);
            }
            strip_exp(body);
        }
        Exp::If(a, b, c) => {
            strip_exp(a);
            strip_exp(b);
            strip_exp(c);
        }
        Exp::Case(s, rules) | Exp::Handle(s, rules) => {
            strip_exp(s);
            for r in rules {
                strip_exp(&mut r.exp);
            }
        }
        Exp::Raise(x) | Exp::Ascribe(x, _) => strip_exp(x),
    }
}
