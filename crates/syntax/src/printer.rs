//! Pretty-printer for mini-SML.
//!
//! Produces concrete syntax that re-parses to the *same* AST.  Output is
//! conservatively parenthesized: parentheses never appear in the AST, so
//! extra ones are free, and they make the printer's correctness
//! (`parse ∘ print = id`) easy to maintain — a property the test suite
//! checks on both hand-written and generated programs.

use std::fmt::Write as _;

use crate::ast::*;

/// Renders a compilation unit.
pub fn print_unit(u: &UnitAst) -> String {
    let mut p = Printer::default();
    for d in &u.decs {
        p.topdec(d);
        p.out.push('\n');
    }
    p.out
}

/// Renders one expression (parenthesized as needed to stand alone).
pub fn print_exp(e: &Exp) -> String {
    let mut p = Printer::default();
    p.exp(e);
    p.out
}

/// Renders one type.
pub fn print_ty(t: &Ty) -> String {
    let mut p = Printer::default();
    p.ty(t);
    p.out
}

/// Renders one pattern.
pub fn print_pat(pat: &Pat) -> String {
    let mut p = Printer::default();
    p.pat(pat);
    p.out
}

#[derive(Default)]
struct Printer {
    out: String,
    indent: usize,
}

impl Printer {
    fn nl(&mut self) {
        self.out.push('\n');
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
    }

    fn word(&mut self, s: &str) {
        self.out.push_str(s);
    }

    // ----- types ----------------------------------------------------------

    fn ty(&mut self, t: &Ty) {
        match t {
            Ty::Var(v) => {
                let _ = write!(self.out, "'{v}");
            }
            Ty::Con(path, args) => match args.len() {
                0 => {
                    let _ = write!(self.out, "{path}");
                }
                1 => {
                    self.word("(");
                    self.ty(&args[0]);
                    let _ = write!(self.out, ") {path}");
                }
                _ => {
                    self.word("(");
                    for (i, a) in args.iter().enumerate() {
                        if i > 0 {
                            self.word(", ");
                        }
                        self.ty(a);
                    }
                    let _ = write!(self.out, ") {path}");
                }
            },
            Ty::Tuple(ts) => {
                self.word("(");
                for (i, x) in ts.iter().enumerate() {
                    if i > 0 {
                        self.word(" * ");
                    }
                    // Tuple components are at "ty_app" level; wrap.
                    self.word("(");
                    self.ty(x);
                    self.word(")");
                }
                self.word(")");
            }
            Ty::Arrow(a, b) => {
                self.word("(");
                self.ty(a);
                self.word(" -> ");
                self.ty(b);
                self.word(")");
            }
        }
    }

    // ----- patterns ---------------------------------------------------------

    fn pat(&mut self, p: &Pat) {
        match p {
            Pat::Wild => self.word("_"),
            Pat::Var(path) => {
                let _ = write!(self.out, "{path}");
            }
            Pat::Lit(l) => self.lit(l),
            Pat::Tuple(ps) => {
                self.word("(");
                for (i, x) in ps.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.pat(x);
                }
                self.word(")");
            }
            Pat::List(ps) => {
                self.word("[");
                for (i, x) in ps.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.pat(x);
                }
                self.word("]");
            }
            Pat::Con(path, arg) => {
                if path.is_simple() && path.last.as_str() == "::" {
                    // Print infix so it re-parses through the cons rule.
                    if let Pat::Tuple(parts) = arg.as_ref() {
                        if parts.len() == 2 {
                            self.word("(");
                            self.word("(");
                            self.pat(&parts[0]);
                            self.word(") :: (");
                            self.pat(&parts[1]);
                            self.word(")");
                            self.word(")");
                            return;
                        }
                    }
                }
                self.word("(");
                let _ = write!(self.out, "{path} ");
                self.word("(");
                self.pat(arg);
                self.word(")");
                self.word(")");
            }
            Pat::Ascribe(inner, ty) => {
                self.word("(");
                self.pat(inner);
                self.word(" : ");
                self.ty(ty);
                self.word(")");
            }
            Pat::As(name, inner) => {
                self.word("(");
                let _ = write!(self.out, "{name} as ");
                self.pat(inner);
                self.word(")");
            }
        }
    }

    fn lit(&mut self, l: &Lit) {
        match l {
            Lit::Int(n) => {
                if *n < 0 {
                    let _ = write!(self.out, "~{}", n.unsigned_abs());
                } else {
                    let _ = write!(self.out, "{n}");
                }
            }
            Lit::Str(s) => {
                self.out.push('"');
                for c in s.chars() {
                    match c {
                        '\\' => self.out.push_str("\\\\"),
                        '"' => self.out.push_str("\\\""),
                        '\n' => self.out.push_str("\\n"),
                        '\t' => self.out.push_str("\\t"),
                        c => self.out.push(c),
                    }
                }
                self.out.push('"');
            }
            Lit::Unit => self.word("()"),
        }
    }

    // ----- expressions --------------------------------------------------------

    fn exp(&mut self, e: &Exp) {
        match e {
            Exp::Lit(l) => self.lit(l),
            Exp::Var(path) => {
                let _ = write!(self.out, "{path}");
            }
            Exp::Tuple(es) => {
                self.word("(");
                for (i, x) in es.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.exp(x);
                }
                self.word(")");
            }
            Exp::List(es) => {
                self.word("[");
                for (i, x) in es.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    self.exp(x);
                }
                self.word("]");
            }
            Exp::App(f, a) => {
                // `x :: xs` parses to an application of the `::`
                // constructor; print it back infix (there is no `op`
                // syntax in the subset to name `::` in prefix position).
                if let Exp::Var(p) = f.as_ref() {
                    if p.is_simple() && p.last.as_str() == "::" {
                        if let Exp::Tuple(parts) = a.as_ref() {
                            if parts.len() == 2 {
                                self.word("((");
                                self.exp(&parts[0]);
                                self.word(") :: (");
                                self.exp(&parts[1]);
                                self.word("))");
                                return;
                            }
                        }
                    }
                }
                self.word("(");
                self.exp(f);
                self.word(") (");
                self.exp(a);
                self.word(")");
            }
            Exp::Prim(op, args) => match op {
                PrimOp::Neg => {
                    self.word("~(");
                    self.exp(&args[0]);
                    self.word(")");
                }
                _ => {
                    self.word("(");
                    self.exp(&args[0]);
                    let _ = write!(self.out, " {} ", op.name());
                    self.exp(&args[1]);
                    self.word(")");
                }
            },
            Exp::Andalso(a, b) => {
                self.word("(");
                self.exp(a);
                self.word(" andalso ");
                self.exp(b);
                self.word(")");
            }
            Exp::Orelse(a, b) => {
                self.word("(");
                self.exp(a);
                self.word(" orelse ");
                self.exp(b);
                self.word(")");
            }
            Exp::Fn(rules) => {
                self.word("(fn ");
                self.rules(rules);
                self.word(")");
            }
            Exp::Let(decs, body) => {
                self.word("let");
                self.indent += 1;
                for d in decs {
                    self.nl();
                    self.dec(d);
                }
                self.indent -= 1;
                self.nl();
                self.word("in ");
                self.exp(body);
                self.word(" end");
            }
            Exp::If(c, t, f) => {
                self.word("(if ");
                self.exp(c);
                self.word(" then ");
                self.exp(t);
                self.word(" else ");
                self.exp(f);
                self.word(")");
            }
            Exp::Case(scrut, rules) => {
                self.word("(case ");
                self.exp(scrut);
                self.word(" of ");
                self.rules(rules);
                self.word(")");
            }
            Exp::Raise(x) => {
                self.word("(raise ");
                self.exp(x);
                self.word(")");
            }
            Exp::Handle(x, rules) => {
                self.word("((");
                self.exp(x);
                self.word(") handle ");
                self.rules(rules);
                self.word(")");
            }
            Exp::Seq(es) => {
                self.word("(");
                for (i, x) in es.iter().enumerate() {
                    if i > 0 {
                        self.word("; ");
                    }
                    self.exp(x);
                }
                self.word(")");
            }
            Exp::Ascribe(x, ty) => {
                self.word("(");
                self.exp(x);
                self.word(" : ");
                self.ty(ty);
                self.word(")");
            }
        }
    }

    fn rules(&mut self, rules: &[Rule]) {
        for (i, r) in rules.iter().enumerate() {
            if i > 0 {
                self.word(" | ");
            }
            self.pat(&r.pat);
            self.word(" => ");
            // Arm bodies are parenthesized by their own printers except
            // bare atoms, which cannot swallow a `|`.
            self.exp(&r.exp);
        }
    }

    // ----- declarations -----------------------------------------------------

    fn dec(&mut self, d: &Dec) {
        match d {
            Dec::Val { pat, exp, .. } => {
                self.word("val ");
                self.pat(pat);
                self.word(" = ");
                self.exp(exp);
            }
            Dec::Fun(fbs) => {
                for (i, fb) in fbs.iter().enumerate() {
                    self.word(if i == 0 { "fun " } else { " and " });
                    for (j, cl) in fb.clauses.iter().enumerate() {
                        if j > 0 {
                            self.word(" | ");
                        }
                        let _ = write!(self.out, "{} ", fb.name);
                        for p in &cl.params {
                            // Clause params are at atomic-pattern level.
                            self.word("(");
                            self.pat(p);
                            self.word(") ");
                        }
                        if let Some(ty) = &cl.result_ty {
                            self.word(": ");
                            self.ty(ty);
                            self.word(" ");
                        }
                        self.word("= ");
                        self.exp(&cl.body);
                    }
                }
            }
            Dec::Type { tyvars, name, def } => {
                self.word("type ");
                self.tyvarseq(tyvars);
                let _ = write!(self.out, "{name} = ");
                self.ty(def);
            }
            Dec::Datatype(dbs) => self.datbinds(dbs),
            Dec::Exception { name, arg } => {
                let _ = write!(self.out, "exception {name}");
                if let Some(t) = arg {
                    self.word(" of ");
                    self.ty(t);
                }
            }
            Dec::Local(hidden, visible) => {
                self.word("local");
                self.indent += 1;
                for d in hidden {
                    self.nl();
                    self.dec(d);
                }
                self.indent -= 1;
                self.nl();
                self.word("in");
                self.indent += 1;
                for d in visible {
                    self.nl();
                    self.dec(d);
                }
                self.indent -= 1;
                self.nl();
                self.word("end");
            }
            Dec::Open(paths) => {
                self.word("open");
                for p in paths {
                    let _ = write!(self.out, " {p}");
                }
            }
        }
    }

    fn tyvarseq(&mut self, tyvars: &[smlsc_ids::Symbol]) {
        match tyvars.len() {
            0 => {}
            1 => {
                let _ = write!(self.out, "'{} ", tyvars[0]);
            }
            _ => {
                self.word("(");
                for (i, v) in tyvars.iter().enumerate() {
                    if i > 0 {
                        self.word(", ");
                    }
                    let _ = write!(self.out, "'{v}");
                }
                self.word(") ");
            }
        }
    }

    fn datbinds(&mut self, dbs: &[DatBind]) {
        for (i, db) in dbs.iter().enumerate() {
            self.word(if i == 0 { "datatype " } else { " and " });
            self.tyvarseq(&db.tyvars);
            let _ = write!(self.out, "{} = ", db.name);
            for (j, (cname, arg)) in db.cons.iter().enumerate() {
                if j > 0 {
                    self.word(" | ");
                }
                let _ = write!(self.out, "{cname}");
                if let Some(t) = arg {
                    self.word(" of ");
                    self.ty(t);
                }
            }
        }
    }

    // ----- modules ------------------------------------------------------------

    fn sigexp(&mut self, s: &SigExp) {
        match s {
            SigExp::Var(name) => {
                let _ = write!(self.out, "{name}");
            }
            SigExp::Sig(specs) => {
                self.word("sig");
                self.indent += 1;
                for sp in specs {
                    self.nl();
                    self.spec(sp);
                }
                self.indent -= 1;
                self.nl();
                self.word("end");
            }
            SigExp::WhereType {
                base,
                tyvars,
                ty_path,
                def,
            } => {
                self.sigexp(base);
                self.word(" where type ");
                self.tyvarseq(tyvars);
                let _ = write!(self.out, "{ty_path} = ");
                self.ty(def);
            }
        }
    }

    fn spec(&mut self, s: &Spec) {
        match s {
            Spec::Val(name, ty) => {
                let _ = write!(self.out, "val {name} : ");
                self.ty(ty);
            }
            Spec::Type { tyvars, name, def } => {
                self.word("type ");
                self.tyvarseq(tyvars);
                let _ = write!(self.out, "{name}");
                if let Some(t) = def {
                    self.word(" = ");
                    self.ty(t);
                }
            }
            Spec::Datatype(dbs) => self.datbinds(dbs),
            Spec::Exception(name, arg) => {
                let _ = write!(self.out, "exception {name}");
                if let Some(t) = arg {
                    self.word(" of ");
                    self.ty(t);
                }
            }
            Spec::Structure(name, sig) => {
                let _ = write!(self.out, "structure {name} : ");
                self.sigexp(sig);
            }
            Spec::Include(sig) => {
                self.word("include ");
                self.sigexp(sig);
            }
        }
    }

    fn strexp(&mut self, s: &StrExp) {
        match s {
            StrExp::Var(path) => {
                let _ = write!(self.out, "{path}");
            }
            StrExp::Struct(decs) => {
                self.word("struct");
                self.indent += 1;
                for d in decs {
                    self.nl();
                    self.strdec(d);
                }
                self.indent -= 1;
                self.nl();
                self.word("end");
            }
            StrExp::Ascribe { str, sig, opaque } => {
                self.strexp(str);
                self.word(if *opaque { " :> " } else { " : " });
                self.sigexp(sig);
            }
            StrExp::App(f, arg) => {
                let _ = write!(self.out, "{f}(");
                self.strexp(arg);
                self.word(")");
            }
            StrExp::Let(decs, body) => {
                self.word("let");
                self.indent += 1;
                for d in decs {
                    self.nl();
                    self.strdec(d);
                }
                self.indent -= 1;
                self.nl();
                self.word("in ");
                self.strexp(body);
                self.word(" end");
            }
        }
    }

    fn strdec(&mut self, d: &StrDec) {
        match d {
            StrDec::Core(dec) => self.dec(dec),
            StrDec::Structure {
                name,
                constraint,
                def,
                ..
            } => self.structure_binding(name, constraint.as_ref(), def),
        }
    }

    fn structure_binding(
        &mut self,
        name: &smlsc_ids::Symbol,
        constraint: Option<&(SigExp, bool)>,
        def: &StrExp,
    ) {
        let _ = write!(self.out, "structure {name}");
        if let Some((sig, opaque)) = constraint {
            self.word(if *opaque { " :> " } else { " : " });
            self.sigexp(sig);
        }
        self.word(" = ");
        self.strexp(def);
    }

    fn topdec(&mut self, d: &TopDec) {
        match d {
            TopDec::Signature { name, def, .. } => {
                let _ = write!(self.out, "signature {name} = ");
                self.sigexp(def);
            }
            TopDec::Structure {
                name,
                constraint,
                def,
                ..
            } => self.structure_binding(name, constraint.as_ref(), def),
            TopDec::Functor {
                name,
                param,
                param_sig,
                result,
                body,
                ..
            } => {
                let _ = write!(self.out, "functor {name} ({param} : ");
                self.sigexp(param_sig);
                self.word(")");
                if let Some((sig, opaque)) = result {
                    self.word(if *opaque { " :> " } else { " : " });
                    self.sigexp(sig);
                }
                self.word(" = ");
                self.strexp(body);
            }
        }
    }
}
