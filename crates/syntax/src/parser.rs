//! Recursive-descent parser for mini-SML.
//!
//! Grammar layering for expressions follows SML's default fixities:
//! application binds tightest, then `* div mod` (7), `+ - ^` (6),
//! `:: @` (5, right-associative), comparisons (4), `andalso`, `orelse`,
//! `handle`, with `raise`/`if`/`case`/`fn` extending maximally to the
//! right.  Module-language syntax covers signature/structure/functor
//! bindings, `sig`/`struct` expressions, both ascriptions, functor
//! application, `include`, and `where type`.

use std::fmt;

use smlsc_ids::Symbol;

use crate::ast::*;
use crate::lexer::{lex, LexError, SpannedTok, Tok};
use crate::Loc;

/// A parse (or lexical) error with source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Human-readable description.
    pub message: String,
    /// Source location of the offending token.
    pub loc: Loc,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.loc, self.message)
    }
}

impl std::error::Error for ParseError {}

impl From<LexError> for ParseError {
    fn from(e: LexError) -> ParseError {
        ParseError {
            message: e.message,
            loc: e.loc,
        }
    }
}

/// The pieces of a `structure X [: S | :> S] = strexp` binding.
type StructureBinding = (Symbol, Option<(SigExp, bool)>, StrExp);

/// Parses a compilation unit: a sequence of `signature`, `structure` and
/// `functor` bindings (optionally separated by `;`).
///
/// # Errors
///
/// Returns a [`ParseError`] describing the first syntax error encountered.
///
/// # Examples
///
/// ```
/// let unit = smlsc_syntax::parse_unit(
///     "structure A = struct val x = 1 + 2 end",
/// ).unwrap();
/// assert_eq!(unit.decs.len(), 1);
/// ```
pub fn parse_unit(src: &str) -> Result<UnitAst, ParseError> {
    let toks = lex(src)?;
    let mut p = Parser { toks, pos: 0 };
    let mut decs = Vec::new();
    loop {
        while p.eat(&Tok::Semi) {}
        if p.at(&Tok::Eof) {
            break;
        }
        decs.push(p.topdec()?);
    }
    Ok(UnitAst { decs })
}

struct Parser {
    toks: Vec<SpannedTok>,
    pos: usize,
}

impl Parser {
    fn cur(&self) -> &Tok {
        &self.toks[self.pos].tok
    }

    fn cur_loc(&self) -> Loc {
        self.toks[self.pos].loc
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.toks.len() - 1);
        &self.toks[i].tok
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].tok.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn at(&self, t: &Tok) -> bool {
        self.cur() == t
    }

    fn eat(&mut self, t: &Tok) -> bool {
        if self.at(t) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Tok) -> Result<(), ParseError> {
        if self.eat(t) {
            Ok(())
        } else {
            Err(self.err(format!("expected {t}, found {}", self.cur())))
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
            loc: self.cur_loc(),
        }
    }

    fn ident(&mut self) -> Result<Symbol, ParseError> {
        match self.cur() {
            Tok::Ident(s) => {
                let s = *s;
                self.bump();
                Ok(s)
            }
            other => Err(self.err(format!("expected an identifier, found {other}"))),
        }
    }

    /// `A.B.x` — a dot-separated path.
    fn path(&mut self) -> Result<Path, ParseError> {
        let mut parts = vec![self.ident()?];
        while self.at(&Tok::Dot) {
            self.bump();
            parts.push(self.ident()?);
        }
        let last = parts.pop().expect("at least one component");
        Ok(Path {
            qualifiers: parts,
            last,
        })
    }

    // ----- top-level ------------------------------------------------------

    fn topdec(&mut self) -> Result<TopDec, ParseError> {
        let loc = self.cur_loc();
        match self.cur() {
            Tok::Signature => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let def = self.sigexp()?;
                Ok(TopDec::Signature { name, def, loc })
            }
            Tok::Structure => {
                self.bump();
                let (name, constraint, def) = self.structure_binding()?;
                Ok(TopDec::Structure {
                    name,
                    constraint,
                    def,
                    loc,
                })
            }
            Tok::Functor => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::LParen)?;
                let param = self.ident()?;
                self.expect(&Tok::Colon)?;
                let param_sig = self.sigexp()?;
                self.expect(&Tok::RParen)?;
                let result = self.opt_ascription()?;
                self.expect(&Tok::Eq)?;
                let body = self.strexp()?;
                Ok(TopDec::Functor {
                    name,
                    param,
                    param_sig,
                    result,
                    body,
                    loc,
                })
            }
            other => Err(self.err(format!(
                "expected `signature`, `structure` or `functor` at unit top level, found {other}"
            ))),
        }
    }

    fn opt_ascription(&mut self) -> Result<Option<(SigExp, bool)>, ParseError> {
        if self.eat(&Tok::Colon) {
            Ok(Some((self.sigexp()?, false)))
        } else if self.eat(&Tok::ColonGt) {
            Ok(Some((self.sigexp()?, true)))
        } else {
            Ok(None)
        }
    }

    fn structure_binding(&mut self) -> Result<StructureBinding, ParseError> {
        let name = self.ident()?;
        let constraint = self.opt_ascription()?;
        self.expect(&Tok::Eq)?;
        let def = self.strexp()?;
        Ok((name, constraint, def))
    }

    // ----- signatures -----------------------------------------------------

    fn sigexp(&mut self) -> Result<SigExp, ParseError> {
        let mut base = match self.cur() {
            Tok::Sig => {
                self.bump();
                let mut specs = Vec::new();
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::End) {
                        break;
                    }
                    specs.push(self.spec()?);
                }
                SigExp::Sig(specs)
            }
            Tok::Ident(_) => SigExp::Var(self.ident()?),
            other => {
                return Err(self.err(format!("expected a signature expression, found {other}")))
            }
        };
        // `where type tyvars path = ty`, possibly chained.
        while self.at(&Tok::Where) {
            self.bump();
            self.expect(&Tok::Type)?;
            let tyvars = self.tyvarseq()?;
            let ty_path = self.path()?;
            self.expect(&Tok::Eq)?;
            let def = self.ty()?;
            base = SigExp::WhereType {
                base: Box::new(base),
                tyvars,
                ty_path,
                def,
            };
        }
        Ok(base)
    }

    fn spec(&mut self) -> Result<Spec, ParseError> {
        match self.cur() {
            Tok::Val => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Colon)?;
                let ty = self.ty()?;
                Ok(Spec::Val(name, ty))
            }
            Tok::Type => {
                self.bump();
                let tyvars = self.tyvarseq()?;
                let name = self.ident()?;
                let def = if self.eat(&Tok::Eq) {
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Spec::Type { tyvars, name, def })
            }
            Tok::Datatype => {
                self.bump();
                Ok(Spec::Datatype(self.datbinds()?))
            }
            Tok::Exception => {
                self.bump();
                let name = self.ident()?;
                let arg = if self.eat(&Tok::Of) {
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Spec::Exception(name, arg))
            }
            Tok::Structure => {
                self.bump();
                let name = self.ident()?;
                self.expect(&Tok::Colon)?;
                let sig = self.sigexp()?;
                Ok(Spec::Structure(name, sig))
            }
            Tok::Include => {
                self.bump();
                Ok(Spec::Include(self.sigexp()?))
            }
            other => Err(self.err(format!("expected a specification, found {other}"))),
        }
    }

    // ----- structures -----------------------------------------------------

    fn strexp(&mut self) -> Result<StrExp, ParseError> {
        let mut s = match self.cur() {
            Tok::Struct => {
                self.bump();
                let mut decs = Vec::new();
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::End) {
                        break;
                    }
                    decs.push(self.strdec()?);
                }
                StrExp::Struct(decs)
            }
            Tok::Let => {
                self.bump();
                let mut decs = Vec::new();
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::In) {
                        break;
                    }
                    decs.push(self.strdec()?);
                }
                let body = self.strexp()?;
                self.expect(&Tok::End)?;
                StrExp::Let(decs, Box::new(body))
            }
            Tok::Ident(_) => {
                // Either a path or a functor application `F (strexp)`.
                let start = self.pos;
                let name = self.ident()?;
                if self.at(&Tok::LParen) {
                    self.bump();
                    let arg = self.strexp()?;
                    self.expect(&Tok::RParen)?;
                    StrExp::App(name, Box::new(arg))
                } else {
                    self.pos = start;
                    StrExp::Var(self.path()?)
                }
            }
            other => {
                return Err(self.err(format!("expected a structure expression, found {other}")))
            }
        };
        loop {
            if self.eat(&Tok::Colon) {
                let sig = self.sigexp()?;
                s = StrExp::Ascribe {
                    str: Box::new(s),
                    sig,
                    opaque: false,
                };
            } else if self.eat(&Tok::ColonGt) {
                let sig = self.sigexp()?;
                s = StrExp::Ascribe {
                    str: Box::new(s),
                    sig,
                    opaque: true,
                };
            } else {
                return Ok(s);
            }
        }
    }

    fn strdec(&mut self) -> Result<StrDec, ParseError> {
        if self.at(&Tok::Structure) {
            let loc = self.cur_loc();
            self.bump();
            let (name, constraint, def) = self.structure_binding()?;
            Ok(StrDec::Structure {
                name,
                constraint,
                def,
                loc,
            })
        } else {
            Ok(StrDec::Core(self.dec()?))
        }
    }

    // ----- core declarations ----------------------------------------------

    fn dec(&mut self) -> Result<Dec, ParseError> {
        let loc = self.cur_loc();
        match self.cur() {
            Tok::Val => {
                self.bump();
                let pat = self.pat()?;
                self.expect(&Tok::Eq)?;
                let exp = self.exp()?;
                Ok(Dec::Val { pat, exp, loc })
            }
            Tok::Fun => {
                self.bump();
                let mut binds = vec![self.funbind()?];
                while self.eat(&Tok::And) {
                    binds.push(self.funbind()?);
                }
                Ok(Dec::Fun(binds))
            }
            Tok::Type => {
                self.bump();
                let tyvars = self.tyvarseq()?;
                let name = self.ident()?;
                self.expect(&Tok::Eq)?;
                let def = self.ty()?;
                Ok(Dec::Type { tyvars, name, def })
            }
            Tok::Datatype => {
                self.bump();
                Ok(Dec::Datatype(self.datbinds()?))
            }
            Tok::Exception => {
                self.bump();
                let name = self.ident()?;
                let arg = if self.eat(&Tok::Of) {
                    Some(self.ty()?)
                } else {
                    None
                };
                Ok(Dec::Exception { name, arg })
            }
            Tok::Local => {
                self.bump();
                let mut hidden = Vec::new();
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::In) {
                        break;
                    }
                    hidden.push(self.dec()?);
                }
                let mut visible = Vec::new();
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::End) {
                        break;
                    }
                    visible.push(self.dec()?);
                }
                Ok(Dec::Local(hidden, visible))
            }
            Tok::Open => {
                self.bump();
                let mut paths = vec![self.path()?];
                while matches!(self.cur(), Tok::Ident(_)) {
                    paths.push(self.path()?);
                }
                Ok(Dec::Open(paths))
            }
            other => Err(self.err(format!("expected a declaration, found {other}"))),
        }
    }

    fn funbind(&mut self) -> Result<FunBind, ParseError> {
        let loc = self.cur_loc();
        let name = self.ident()?;
        let mut clauses = vec![self.clause_after_name()?];
        while self.at(&Tok::Bar) {
            self.bump();
            let n2 = self.ident()?;
            if n2 != name {
                return Err(self.err(format!(
                    "clauses of `{name}` must all use the same name, found `{n2}`"
                )));
            }
            clauses.push(self.clause_after_name()?);
        }
        let arity = clauses[0].params.len();
        if clauses.iter().any(|c| c.params.len() != arity) {
            return Err(ParseError {
                message: format!("clauses of `{name}` have differing numbers of parameters"),
                loc,
            });
        }
        Ok(FunBind { name, clauses, loc })
    }

    fn clause_after_name(&mut self) -> Result<Clause, ParseError> {
        let mut params = vec![self.atpat()?];
        while self.starts_atpat() {
            params.push(self.atpat()?);
        }
        let result_ty = if self.eat(&Tok::Colon) {
            Some(self.ty()?)
        } else {
            None
        };
        self.expect(&Tok::Eq)?;
        let body = self.exp()?;
        Ok(Clause {
            params,
            result_ty,
            body,
        })
    }

    fn datbinds(&mut self) -> Result<Vec<DatBind>, ParseError> {
        let mut out = vec![self.datbind()?];
        while self.eat(&Tok::And) {
            out.push(self.datbind()?);
        }
        Ok(out)
    }

    fn datbind(&mut self) -> Result<DatBind, ParseError> {
        let tyvars = self.tyvarseq()?;
        let name = self.ident()?;
        self.expect(&Tok::Eq)?;
        let mut cons = vec![self.conbind()?];
        while self.eat(&Tok::Bar) {
            cons.push(self.conbind()?);
        }
        Ok(DatBind { tyvars, name, cons })
    }

    fn conbind(&mut self) -> Result<(Symbol, Option<Ty>), ParseError> {
        let name = self.ident()?;
        let arg = if self.eat(&Tok::Of) {
            Some(self.ty()?)
        } else {
            None
        };
        Ok((name, arg))
    }

    fn tyvarseq(&mut self) -> Result<Vec<Symbol>, ParseError> {
        match self.cur() {
            Tok::TyVar(v) => {
                let v = *v;
                self.bump();
                Ok(vec![v])
            }
            Tok::LParen if matches!(self.peek2(), Tok::TyVar(_)) => {
                self.bump();
                let mut vs = Vec::new();
                loop {
                    match self.cur() {
                        Tok::TyVar(v) => {
                            vs.push(*v);
                            self.bump();
                        }
                        other => {
                            return Err(self.err(format!("expected a type variable, found {other}")))
                        }
                    }
                    if !self.eat(&Tok::Comma) {
                        break;
                    }
                }
                self.expect(&Tok::RParen)?;
                Ok(vs)
            }
            _ => Ok(Vec::new()),
        }
    }

    // ----- types ------------------------------------------------------------

    fn ty(&mut self) -> Result<Ty, ParseError> {
        let lhs = self.ty_tuple()?;
        if self.eat(&Tok::Arrow) {
            let rhs = self.ty()?;
            Ok(Ty::Arrow(Box::new(lhs), Box::new(rhs)))
        } else {
            Ok(lhs)
        }
    }

    fn ty_tuple(&mut self) -> Result<Ty, ParseError> {
        let first = self.ty_app()?;
        if !self.at(&Tok::Star) {
            return Ok(first);
        }
        let mut parts = vec![first];
        while self.eat(&Tok::Star) {
            parts.push(self.ty_app()?);
        }
        Ok(Ty::Tuple(parts))
    }

    /// Postfix constructor application: `int list`, `('a, 'b) pair A.t`.
    fn ty_app(&mut self) -> Result<Ty, ParseError> {
        let mut args: Vec<Ty>;
        match self.cur() {
            Tok::LParen => {
                self.bump();
                let first = self.ty()?;
                if self.eat(&Tok::Comma) {
                    let mut tys = vec![first];
                    loop {
                        tys.push(self.ty()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    // A parenthesized sequence must be followed by a constructor.
                    let path = self.path()?;
                    args = vec![Ty::Con(path, tys)];
                } else {
                    self.expect(&Tok::RParen)?;
                    args = vec![first];
                }
            }
            Tok::TyVar(v) => {
                let v = *v;
                self.bump();
                args = vec![Ty::Var(v)];
            }
            Tok::Ident(_) => {
                let path = self.path()?;
                args = vec![Ty::Con(path, Vec::new())];
            }
            other => return Err(self.err(format!("expected a type, found {other}"))),
        }
        // Postfix constructors.
        while matches!(self.cur(), Tok::Ident(_)) {
            let path = self.path()?;
            let arg = args.pop().expect("one pending type");
            args.push(Ty::Con(path, vec![arg]));
        }
        Ok(args.pop().expect("one type"))
    }

    // ----- patterns -----------------------------------------------------------

    fn starts_atpat(&self) -> bool {
        matches!(
            self.cur(),
            Tok::Underscore
                | Tok::Ident(_)
                | Tok::Int(_)
                | Tok::Str(_)
                | Tok::LParen
                | Tok::LBracket
        )
    }

    fn pat(&mut self) -> Result<Pat, ParseError> {
        // Layered pattern: `x as pat`.
        if let Tok::Ident(name) = self.cur() {
            let name = *name;
            if *self.peek2() == Tok::As {
                self.bump();
                self.bump();
                let inner = self.pat()?;
                return Ok(Pat::As(name, Box::new(inner)));
            }
        }
        let lhs = self.con_pat()?;
        let p = if self.eat(&Tok::Cons) {
            let rhs = self.pat()?;
            Pat::Con(
                Path::simple(Symbol::intern("::")),
                Box::new(Pat::Tuple(vec![lhs, rhs])),
            )
        } else {
            lhs
        };
        if self.eat(&Tok::Colon) {
            let ty = self.ty()?;
            Ok(Pat::Ascribe(Box::new(p), ty))
        } else {
            Ok(p)
        }
    }

    fn con_pat(&mut self) -> Result<Pat, ParseError> {
        if matches!(self.cur(), Tok::Ident(_)) {
            let start = self.pos;
            let path = self.path()?;
            if self.starts_atpat() {
                let arg = self.atpat()?;
                return Ok(Pat::Con(path, Box::new(arg)));
            }
            self.pos = start;
        }
        self.atpat()
    }

    fn atpat(&mut self) -> Result<Pat, ParseError> {
        match self.cur().clone() {
            Tok::Underscore => {
                self.bump();
                Ok(Pat::Wild)
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Pat::Lit(Lit::Int(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Pat::Lit(Lit::Str(s)))
            }
            Tok::Ident(_) => Ok(Pat::Var(self.path()?)),
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Pat::Lit(Lit::Unit));
                }
                let first = self.pat()?;
                if self.eat(&Tok::Comma) {
                    let mut ps = vec![first];
                    loop {
                        ps.push(self.pat()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Pat::Tuple(ps))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut ps = Vec::new();
                if !self.at(&Tok::RBracket) {
                    loop {
                        ps.push(self.pat()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Pat::List(ps))
            }
            other => Err(self.err(format!("expected a pattern, found {other}"))),
        }
    }

    // ----- expressions ----------------------------------------------------------

    fn exp(&mut self) -> Result<Exp, ParseError> {
        match self.cur() {
            Tok::Raise => {
                self.bump();
                Ok(Exp::Raise(Box::new(self.exp()?)))
            }
            Tok::If => {
                self.bump();
                let c = self.exp()?;
                self.expect(&Tok::Then)?;
                let t = self.exp()?;
                self.expect(&Tok::Else)?;
                let e = self.exp()?;
                Ok(Exp::If(Box::new(c), Box::new(t), Box::new(e)))
            }
            Tok::Case => {
                self.bump();
                let scrut = self.exp()?;
                self.expect(&Tok::Of)?;
                let rules = self.match_rules()?;
                Ok(Exp::Case(Box::new(scrut), rules))
            }
            Tok::Fn => {
                self.bump();
                let rules = self.match_rules()?;
                Ok(Exp::Fn(rules))
            }
            _ => {
                let mut e = self.orelse_exp()?;
                loop {
                    if self.eat(&Tok::Handle) {
                        let rules = self.match_rules()?;
                        e = Exp::Handle(Box::new(e), rules);
                    } else if self.eat(&Tok::Colon) {
                        let ty = self.ty()?;
                        e = Exp::Ascribe(Box::new(e), ty);
                    } else {
                        return Ok(e);
                    }
                }
            }
        }
    }

    fn match_rules(&mut self) -> Result<Vec<Rule>, ParseError> {
        let mut rules = Vec::new();
        loop {
            let pat = self.pat()?;
            self.expect(&Tok::FatArrow)?;
            let exp = self.exp()?;
            rules.push(Rule { pat, exp });
            if !self.eat(&Tok::Bar) {
                return Ok(rules);
            }
        }
    }

    fn orelse_exp(&mut self) -> Result<Exp, ParseError> {
        let mut e = self.andalso_exp()?;
        while self.eat(&Tok::Orelse) {
            let r = self.andalso_exp()?;
            e = Exp::Orelse(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn andalso_exp(&mut self) -> Result<Exp, ParseError> {
        let mut e = self.cmp_exp()?;
        while self.eat(&Tok::Andalso) {
            let r = self.cmp_exp()?;
            e = Exp::Andalso(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn cmp_exp(&mut self) -> Result<Exp, ParseError> {
        let mut e = self.cons_exp()?;
        loop {
            let op = match self.cur() {
                Tok::Eq => PrimOp::Eq,
                Tok::Neq => PrimOp::Neq,
                Tok::Lt => PrimOp::Lt,
                Tok::Le => PrimOp::Le,
                Tok::Gt => PrimOp::Gt,
                Tok::Ge => PrimOp::Ge,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.cons_exp()?;
            e = Exp::Prim(op, vec![e, r]);
        }
    }

    fn cons_exp(&mut self) -> Result<Exp, ParseError> {
        let lhs = self.add_exp()?;
        if self.eat(&Tok::Cons) {
            let rhs = self.cons_exp()?;
            Ok(Exp::App(
                Box::new(Exp::Var(Path::simple(Symbol::intern("::")))),
                Box::new(Exp::Tuple(vec![lhs, rhs])),
            ))
        } else if self.eat(&Tok::At) {
            let rhs = self.cons_exp()?;
            Ok(Exp::Prim(PrimOp::Append, vec![lhs, rhs]))
        } else {
            Ok(lhs)
        }
    }

    fn add_exp(&mut self) -> Result<Exp, ParseError> {
        let mut e = self.mul_exp()?;
        loop {
            let op = match self.cur() {
                Tok::Plus => PrimOp::Add,
                Tok::Minus => PrimOp::Sub,
                Tok::Caret => PrimOp::Concat,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.mul_exp()?;
            e = Exp::Prim(op, vec![e, r]);
        }
    }

    fn mul_exp(&mut self) -> Result<Exp, ParseError> {
        let mut e = self.app_exp()?;
        loop {
            let op = match self.cur() {
                Tok::Star => PrimOp::Mul,
                Tok::Div => PrimOp::Div,
                Tok::Mod => PrimOp::Mod,
                _ => return Ok(e),
            };
            self.bump();
            let r = self.app_exp()?;
            e = Exp::Prim(op, vec![e, r]);
        }
    }

    fn starts_atexp(&self) -> bool {
        matches!(
            self.cur(),
            Tok::Ident(_) | Tok::Int(_) | Tok::Str(_) | Tok::LParen | Tok::LBracket | Tok::Let
        )
    }

    fn app_exp(&mut self) -> Result<Exp, ParseError> {
        if self.eat(&Tok::Tilde) {
            let e = self.app_exp()?;
            return Ok(Exp::Prim(PrimOp::Neg, vec![e]));
        }
        let mut e = self.atexp()?;
        while self.starts_atexp() {
            let arg = self.atexp()?;
            e = Exp::App(Box::new(e), Box::new(arg));
        }
        Ok(e)
    }

    fn atexp(&mut self) -> Result<Exp, ParseError> {
        match self.cur().clone() {
            Tok::Int(n) => {
                self.bump();
                Ok(Exp::Lit(Lit::Int(n)))
            }
            Tok::Str(s) => {
                self.bump();
                Ok(Exp::Lit(Lit::Str(s)))
            }
            Tok::Ident(_) => Ok(Exp::Var(self.path()?)),
            Tok::LParen => {
                self.bump();
                if self.eat(&Tok::RParen) {
                    return Ok(Exp::Lit(Lit::Unit));
                }
                let first = self.exp()?;
                if self.eat(&Tok::Comma) {
                    let mut es = vec![first];
                    loop {
                        es.push(self.exp()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Exp::Tuple(es))
                } else if self.eat(&Tok::Semi) {
                    let mut es = vec![first];
                    loop {
                        es.push(self.exp()?);
                        if !self.eat(&Tok::Semi) {
                            break;
                        }
                    }
                    self.expect(&Tok::RParen)?;
                    Ok(Exp::Seq(es))
                } else {
                    self.expect(&Tok::RParen)?;
                    Ok(first)
                }
            }
            Tok::LBracket => {
                self.bump();
                let mut es = Vec::new();
                if !self.at(&Tok::RBracket) {
                    loop {
                        es.push(self.exp()?);
                        if !self.eat(&Tok::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Tok::RBracket)?;
                Ok(Exp::List(es))
            }
            Tok::Let => {
                self.bump();
                let mut decs = Vec::new();
                loop {
                    while self.eat(&Tok::Semi) {}
                    if self.eat(&Tok::In) {
                        break;
                    }
                    decs.push(self.dec()?);
                }
                let mut body = vec![self.exp()?];
                while self.eat(&Tok::Semi) {
                    body.push(self.exp()?);
                }
                self.expect(&Tok::End)?;
                let body = if body.len() == 1 {
                    body.pop().expect("one body expression")
                } else {
                    Exp::Seq(body)
                };
                Ok(Exp::Let(decs, Box::new(body)))
            }
            other => Err(self.err(format!("expected an expression, found {other}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> UnitAst {
        parse_unit(src).unwrap_or_else(|e| panic!("{e}\nsource: {src}"))
    }

    fn parse_err(src: &str) -> ParseError {
        parse_unit(src).expect_err("expected parse failure")
    }

    #[test]
    fn empty_unit() {
        assert!(parse("").decs.is_empty());
        assert!(parse("  (* just a comment *) ").decs.is_empty());
    }

    #[test]
    fn simple_structure() {
        let u = parse("structure A = struct val x = 1 end");
        assert_eq!(u.decs.len(), 1);
        assert_eq!(u.decs[0].name(), Symbol::intern("A"));
    }

    #[test]
    fn signature_with_specs() {
        let u = parse(
            "signature S = sig
               type t
               type u = int
               val x : t
               val f : t -> t list
               datatype color = Red | Green of int
               exception Bad of string
               structure Inner : sig val y : int end
             end",
        );
        let TopDec::Signature {
            def: SigExp::Sig(specs),
            ..
        } = &u.decs[0]
        else {
            panic!("expected signature");
        };
        assert_eq!(specs.len(), 7);
    }

    #[test]
    fn figure_one_parses() {
        // The paper's Figure 1, adapted to the subset (fun instead of
        // partially-applied less).
        let u = parse(
            r#"
            signature PARTIAL_ORDER = sig
              type elem
              val less : elem * elem -> bool
            end
            signature SORT = sig
              type t
              val sort : t list -> t list
            end
            functor TopSort (P : PARTIAL_ORDER) : SORT = struct
              type t = P.elem
              fun sort l = l
            end
            structure Factors : PARTIAL_ORDER = struct
              type elem = int
              fun less (i, j) = (j mod i) = 0
            end
            structure FSort : SORT = TopSort(Factors)
            "#,
        );
        assert_eq!(u.decs.len(), 5);
        assert!(matches!(
            &u.decs[4],
            TopDec::Structure {
                def: StrExp::App(..),
                ..
            }
        ));
    }

    #[test]
    fn fun_clauses() {
        let u = parse(
            "structure L = struct
               fun len [] = 0
                 | len (x :: xs) = 1 + len xs
             end",
        );
        let TopDec::Structure {
            def: StrExp::Struct(ds),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let StrDec::Core(Dec::Fun(fbs)) = &ds[0] else {
            panic!()
        };
        assert_eq!(fbs[0].clauses.len(), 2);
    }

    #[test]
    fn clause_name_mismatch_is_error() {
        let e = parse_err("structure A = struct fun f x = 1 | g x = 2 end");
        assert!(e.message.contains("same name"), "{e}");
    }

    #[test]
    fn clause_arity_mismatch_is_error() {
        let e = parse_err("structure A = struct fun f x = 1 | f x y = 2 end");
        assert!(e.message.contains("differing"), "{e}");
    }

    #[test]
    fn infix_precedence() {
        let u = parse("structure A = struct val x = 1 + 2 * 3 end");
        let TopDec::Structure {
            def: StrExp::Struct(ds),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let StrDec::Core(Dec::Val { exp, .. }) = &ds[0] else {
            panic!()
        };
        // 1 + (2 * 3)
        let Exp::Prim(PrimOp::Add, args) = exp else {
            panic!("expected +, got {exp:?}")
        };
        assert!(matches!(&args[1], Exp::Prim(PrimOp::Mul, _)));
    }

    #[test]
    fn cons_is_right_associative() {
        let u = parse("structure A = struct val x = 1 :: 2 :: [] end");
        let TopDec::Structure {
            def: StrExp::Struct(ds),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let StrDec::Core(Dec::Val { exp, .. }) = &ds[0] else {
            panic!()
        };
        let Exp::App(f, arg) = exp else { panic!() };
        assert!(matches!(**f, Exp::Var(_)));
        let Exp::Tuple(elems) = &**arg else { panic!() };
        assert!(matches!(&elems[1], Exp::App(..)));
    }

    #[test]
    fn arrow_types_are_right_associative() {
        let u = parse("signature S = sig val f : int -> int -> int end");
        let TopDec::Signature {
            def: SigExp::Sig(specs),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let Spec::Val(_, Ty::Arrow(_, rhs)) = &specs[0] else {
            panic!()
        };
        assert!(matches!(**rhs, Ty::Arrow(..)));
    }

    #[test]
    fn tuple_types_bind_tighter_than_arrow() {
        let u = parse("signature S = sig val f : int * int -> bool end");
        let TopDec::Signature {
            def: SigExp::Sig(specs),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let Spec::Val(_, Ty::Arrow(lhs, _)) = &specs[0] else {
            panic!()
        };
        assert!(matches!(**lhs, Ty::Tuple(_)));
    }

    #[test]
    fn postfix_type_constructors() {
        let u = parse("signature S = sig val x : int list list end");
        let TopDec::Signature {
            def: SigExp::Sig(specs),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let Spec::Val(_, Ty::Con(p, args)) = &specs[0] else {
            panic!()
        };
        assert_eq!(p.last, Symbol::intern("list"));
        assert!(matches!(&args[0], Ty::Con(p2, _) if p2.last == Symbol::intern("list")));
    }

    #[test]
    fn multi_arg_type_constructor() {
        let u = parse("signature S = sig type ('a, 'b) pair val x : (int, string) pair end");
        let TopDec::Signature {
            def: SigExp::Sig(specs),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let Spec::Type { tyvars, .. } = &specs[0] else {
            panic!()
        };
        assert_eq!(tyvars.len(), 2);
        let Spec::Val(_, Ty::Con(_, args)) = &specs[1] else {
            panic!()
        };
        assert_eq!(args.len(), 2);
    }

    #[test]
    fn opaque_ascription() {
        let u = parse("structure A :> sig type t end = struct type t = int end");
        let TopDec::Structure {
            constraint: Some((_, opaque)),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        assert!(opaque);
    }

    #[test]
    fn where_type() {
        let u = parse("structure A : sig type t end where type t = int = struct type t = int end");
        let TopDec::Structure {
            constraint: Some((SigExp::WhereType { .. }, _)),
            ..
        } = &u.decs[0]
        else {
            panic!("expected where type")
        };
    }

    #[test]
    fn let_and_case_and_handle() {
        parse(
            r#"structure A = struct
                 exception Empty
                 fun hd [] = raise Empty
                   | hd (x :: _) = x
                 fun safeHd l = hd l handle Empty => 0
                 val z = let val a = 1 val b = 2 in a + b end
                 val w = case [1] of [] => 0 | x :: _ => x
               end"#,
        );
    }

    #[test]
    fn functor_with_result_sig() {
        let u = parse(
            "signature S = sig type t end
             functor F (X : S) : S = struct type t = X.t end",
        );
        let TopDec::Functor {
            result: Some(_), ..
        } = &u.decs[1]
        else {
            panic!()
        };
    }

    #[test]
    fn top_level_core_dec_rejected() {
        let e = parse_err("val x = 1");
        assert!(e.message.contains("unit top level"), "{e}");
    }

    #[test]
    fn qualified_paths() {
        let u = parse("structure B = struct val y = A.Inner.x + 1 end");
        let TopDec::Structure {
            def: StrExp::Struct(ds),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let StrDec::Core(Dec::Val {
            exp: Exp::Prim(_, args),
            ..
        }) = &ds[0]
        else {
            panic!()
        };
        let Exp::Var(p) = &args[0] else { panic!() };
        assert_eq!(p.qualifiers.len(), 2);
        assert_eq!(p.root(), Symbol::intern("A"));
    }

    #[test]
    fn local_and_open() {
        parse(
            "structure A = struct
               local
                 fun helper x = x + 1
               in
                 fun visible y = helper y
               end
               open A
             end",
        );
    }

    #[test]
    fn andalso_orelse_shortcircuit_forms() {
        let u = parse("structure A = struct val b = 1 < 2 andalso 2 < 3 orelse 3 < 4 end");
        let TopDec::Structure {
            def: StrExp::Struct(ds),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        let StrDec::Core(Dec::Val { exp, .. }) = &ds[0] else {
            panic!()
        };
        assert!(matches!(exp, Exp::Orelse(..)));
    }

    #[test]
    fn seq_expressions() {
        parse("structure A = struct val x = (1; 2; 3) end");
    }

    #[test]
    fn error_has_location() {
        let e = parse_err("structure A = struct\n val x = ? end");
        assert_eq!(e.loc.line, 2);
    }

    #[test]
    fn functor_application_of_path_arg() {
        let u = parse("structure C = F(A.B)");
        let TopDec::Structure {
            def: StrExp::App(f, arg),
            ..
        } = &u.decs[0]
        else {
            panic!()
        };
        assert_eq!(*f, Symbol::intern("F"));
        assert!(matches!(**arg, StrExp::Var(_)));
    }

    #[test]
    fn nested_structures() {
        parse(
            "structure A = struct
               structure Inner = struct val x = 1 end
               val y = Inner.x
             end",
        );
    }

    #[test]
    fn str_let() {
        parse("structure A = let structure H = struct val x = 1 end in struct val y = H.x end end");
    }

    #[test]
    fn include_spec() {
        parse(
            "signature BASE = sig val x : int end
             signature EXT = sig include BASE val y : int end",
        );
    }
}
