//! `parse ∘ print = id` — on a hand-written corpus and on
//! proptest-generated ASTs.

use proptest::prelude::*;
use smlsc_ids::Symbol;
use smlsc_syntax::ast::*;
use smlsc_syntax::printer::print_unit;
use smlsc_syntax::{parse_unit, Loc};

fn roundtrip(src: &str) {
    let mut once = parse_unit(src).unwrap_or_else(|e| panic!("{e}\nsource:\n{src}"));
    once.strip_locs();
    let printed = print_unit(&once);
    let mut twice = parse_unit(&printed).unwrap_or_else(|e| panic!("{e}\nprinted:\n{printed}"));
    twice.strip_locs();
    assert_eq!(once, twice, "printed form:\n{printed}");
}

#[test]
fn corpus_roundtrips() {
    for src in [
        "structure A = struct val x = 1 end",
        "structure A = struct val x = 1 + 2 * 3 - 4 end",
        "structure A = struct fun f x y = f y x and g z = f z z end",
        "structure L = struct
           fun map f [] = []
             | map f (x :: xs) = f x :: map f xs
           fun rev l = let fun go acc [] = acc | go acc (x :: xs) = go (x :: acc) xs
                       in go [] l end
         end",
        r#"structure S = struct
             datatype 'a tree = Leaf | Node of 'a tree * 'a * 'a tree
             exception Bad of string
             fun find _ Leaf = NONE
               | find k (Node (l, x, r)) =
                   if k = x then SOME x
                   else if k < x then find k l else find k r
             val caught = (raise Bad "x") handle Bad s => s
             val seq = (1; 2; 3)
             val b = 1 < 2 andalso 2 < 3 orelse false
           end"#,
        "signature S = sig
           type t
           type ('a, 'b) pair = 'a * 'b
           val f : t -> (int, string) pair list
           datatype d = A | B of int
           exception E of string
           structure Inner : sig val n : int end
         end
         functor F (X : S) :> S = struct
           type t = X.t
           type ('a, 'b) pair = 'a * 'b
           fun f x = X.f x
           datatype d = A | B of int
           exception E of string
           structure Inner = struct val n = 1 end
         end",
        "structure A = let structure H = struct val v = 9 end in struct open H val w = v end end",
        "signature T = sig type t end
         structure C : T where type t = int = struct type t = int end",
        "structure N = struct
           local
             fun help x = ~x
           in
             val out = help 3
             type alias = int * (int -> int)
           end
         end",
        "structure L2 = struct
           fun dup (l as (x :: _)) = x :: l
             | dup other = other
         end",
        "structure P = struct
           val tup = (1, \"two\", (3, 4))
           val (a, b) = (1, 2)
           val _ = a
           val l = [1, 2] @ [3]
           val c : int = case l of [] => 0 | x :: _ => x
         end",
    ] {
        roundtrip(src);
    }
}

// ----- generated ASTs ------------------------------------------------------

fn ident(pool: &'static [&'static str]) -> impl Strategy<Value = Symbol> {
    (0..pool.len()).prop_map(move |i| Symbol::intern(pool[i]))
}

fn var_name() -> impl Strategy<Value = Symbol> {
    ident(&["x", "y", "zed", "acc", "n1", "fooBar"])
}

fn ty_name() -> impl Strategy<Value = Symbol> {
    ident(&["int", "string", "bool"])
}

fn arb_ty() -> impl Strategy<Value = Ty> {
    let leaf = prop_oneof![
        ty_name().prop_map(|n| Ty::Con(Path::simple(n), vec![])),
        ident(&["a", "b"]).prop_map(Ty::Var),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Ty::Arrow(Box::new(a), Box::new(b))),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Ty::Tuple),
            inner.prop_map(|t| Ty::Con(Path::simple(Symbol::intern("list")), vec![t])),
        ]
    })
}

fn arb_lit() -> impl Strategy<Value = Lit> {
    prop_oneof![
        any::<i32>().prop_map(|n| Lit::Int(i64::from(n))),
        "[a-z 0-9]{0,8}".prop_map(Lit::Str),
        Just(Lit::Unit),
    ]
}

fn arb_pat() -> impl Strategy<Value = Pat> {
    let leaf = prop_oneof![
        Just(Pat::Wild),
        var_name().prop_map(|v| Pat::Var(Path::simple(v))),
        arb_lit().prop_map(Pat::Lit),
    ];
    leaf.prop_recursive(3, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Pat::Tuple),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Pat::List),
            (inner.clone(), arb_ty()).prop_map(|(p, t)| Pat::Ascribe(Box::new(p), t)),
        ]
    })
}

fn arb_exp() -> impl Strategy<Value = Exp> {
    let leaf = prop_oneof![
        arb_lit().prop_map(Exp::Lit),
        var_name().prop_map(|v| Exp::Var(Path::simple(v))),
    ];
    leaf.prop_recursive(4, 32, 3, |inner| {
        let rule = (arb_pat(), inner.clone())
            .prop_map(|(pat, exp)| Rule { pat, exp })
            .boxed();
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Exp::Tuple),
            proptest::collection::vec(inner.clone(), 0..3).prop_map(Exp::List),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Exp::Seq),
            (inner.clone(), inner.clone()).prop_map(|(f, a)| Exp::App(Box::new(f), Box::new(a))),
            (
                prop_oneof![
                    Just(PrimOp::Add),
                    Just(PrimOp::Sub),
                    Just(PrimOp::Mul),
                    Just(PrimOp::Div),
                    Just(PrimOp::Eq),
                    Just(PrimOp::Lt),
                    Just(PrimOp::Concat),
                    Just(PrimOp::Append),
                ],
                inner.clone(),
                inner.clone()
            )
                .prop_map(|(op, a, b)| Exp::Prim(op, vec![a, b])),
            inner.clone().prop_map(|a| Exp::Prim(PrimOp::Neg, vec![a])),
            (inner.clone(), inner.clone())
                .prop_map(|(a, b)| Exp::Andalso(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Exp::Orelse(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Exp::If(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
            proptest::collection::vec(rule.clone(), 1..3).prop_map(Exp::Fn),
            (inner.clone(), proptest::collection::vec(rule.clone(), 1..3))
                .prop_map(|(s, rs)| Exp::Case(Box::new(s), rs)),
            (inner.clone(), proptest::collection::vec(rule, 1..2))
                .prop_map(|(s, rs)| Exp::Handle(Box::new(s), rs)),
            inner.clone().prop_map(|e| Exp::Raise(Box::new(e))),
            (inner.clone(), arb_ty()).prop_map(|(e, t)| Exp::Ascribe(Box::new(e), t)),
        ]
    })
}

fn arb_dec() -> impl Strategy<Value = Dec> {
    prop_oneof![
        (arb_pat(), arb_exp()).prop_map(|(pat, exp)| Dec::Val {
            pat,
            exp,
            loc: Loc::default(),
        }),
        (ident(&["f", "g", "loop"]), arb_pat(), arb_exp()).prop_map(|(name, p, body)| {
            Dec::Fun(vec![FunBind {
                name,
                clauses: vec![Clause {
                    params: vec![p],
                    result_ty: None,
                    body,
                }],
                loc: Loc::default(),
            }])
        }),
        (ident(&["t", "u"]), arb_ty()).prop_map(|(name, def)| Dec::Type {
            tyvars: vec![],
            name,
            def,
        }),
        (ident(&["E1", "E2"]), proptest::option::of(arb_ty()))
            .prop_map(|(name, arg)| Dec::Exception { name, arg }),
    ]
}

fn arb_unit() -> impl Strategy<Value = UnitAst> {
    proptest::collection::vec(
        (
            ident(&["A", "B", "C", "Mod"]),
            proptest::collection::vec(arb_dec(), 0..4),
        ),
        1..3,
    )
    .prop_map(|strs| UnitAst {
        decs: strs
            .into_iter()
            .map(|(name, decs)| TopDec::Structure {
                name,
                constraint: None,
                def: StrExp::Struct(decs.into_iter().map(StrDec::Core).collect()),
                loc: Loc::default(),
            })
            .collect(),
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Printing any generated unit and re-parsing yields the same AST.
    #[test]
    fn generated_units_roundtrip(unit in arb_unit()) {
        let printed = print_unit(&unit);
        let mut back = parse_unit(&printed)
            .unwrap_or_else(|e| panic!("{e}\nprinted:\n{printed}"));
        back.strip_locs();
        let reprinted = print_unit(&back);
        prop_assert_eq!(unit, back, "printed:\n{}", reprinted);
    }
}

// Reuse the AST generators to check the elaborator is total: generated
// programs may well be ill-typed, but elaboration must return `Ok` or
// `Err`, never panic or hang.
proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn elaborator_is_total_on_generated_asts(unit in arb_unit()) {
        let _ = smlsc_statics::elab::elaborate_unit(
            &unit,
            &smlsc_statics::elab::ImportEnv::empty(),
        );
    }

    /// And on re-parsed printed programs (exercises the parser output
    /// path rather than the generator's shapes).
    #[test]
    fn elaborator_is_total_on_printed_programs(unit in arb_unit()) {
        let printed = print_unit(&unit);
        if let Ok(ast) = parse_unit(&printed) {
            let _ = smlsc_statics::elab::elaborate_unit(
                &ast,
                &smlsc_statics::elab::ImportEnv::empty(),
            );
        }
    }
}
