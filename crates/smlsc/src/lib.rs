//! # smlsc — Separate Compilation for Standard ML, in Rust
//!
//! A full reproduction of Andrew W. Appel and David B. MacQueen,
//! *Separate Compilation for Standard ML* (PLDI 1994): the separate
//! compilation architecture that became SML/NJ's Compilation Manager.
//!
//! This umbrella crate re-exports the whole system:
//!
//! | Crate | Contents |
//! |---|---|
//! | [`ids`] | Symbols, generative stamps, 128-bit pids |
//! | [`syntax`] | Mini-SML lexer, parser, AST, import analysis |
//! | [`statics`] | Types, static environments, signature matching, functors, elaboration |
//! | [`dynamics`] | Runtime IR, values, the `execute` interpreter |
//! | [`pickle`] | Dehydration/rehydration of static environments |
//! | [`core`] | Intrinsic-pid hashing, units, type-safe linkage, the IRM, sessions |
//! | [`trace`] | Structured spans, build telemetry, rebuild-decision records |
//! | [`faults`] | Deterministic fault injection for chaos testing |
//! | [`daemon`] | Resident build server: filesystem watch, socket protocol |
//! | [`workload`] | Synthetic module-graph generation for experiments |
//!
//! # Quickstart
//!
//! ```
//! use smlsc::core::irm::{Irm, Project, Strategy};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut project = Project::new();
//! project.add("math", "structure Math = struct fun square x = x * x end");
//! project.add("main", "structure Main = struct val answer = Math.square 6 + 6 end");
//!
//! let mut irm = Irm::new(Strategy::Cutoff);
//! let (report, env) = irm.execute(&project)?;
//! assert_eq!(report.recompiled.len(), 2);
//! assert_eq!(env.len(), 2);
//!
//! // A body edit to `math` recompiles one unit; `main` is cut off.
//! project.edit("math", "structure Math = struct fun square x = x * x * 1 end")?;
//! let report = irm.build(&project)?;
//! assert_eq!(report.recompiled.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use smlsc_core as core;
pub use smlsc_daemon as daemon;
pub use smlsc_dynamics as dynamics;
pub use smlsc_faults as faults;
pub use smlsc_ids as ids;
pub use smlsc_pickle as pickle;
pub use smlsc_statics as statics;
pub use smlsc_syntax as syntax;
pub use smlsc_trace as trace;
pub use smlsc_workload as workload;
