//! The `smlsc` command-line driver.
//!
//! ```text
//! smlsc build <dir>    incrementally compile every *.sml file in <dir>
//!                      (bins cached in <dir>/.smlsc-bins by default)
//! smlsc run <dir>      build, link, execute, and print the exports
//! smlsc profile <dir>  build, then print a critical-path profile: the
//!                      top-k slowest units with per-phase breakdown,
//!                      the import-DAG critical path, and the wall time
//!                      the caches saved vs a rebuild-everything build
//! smlsc history <dir>  query the persistent build ledger
//!                      (<bin-dir>/builds.jsonl): median/p95 wall time,
//!                      cache hit-rate drift, regression flags
//! smlsc repl           interactive compile-and-execute session (§7);
//!                      terminate each input with a line ending in `;;`
//! smlsc cache <op>     manage a shared artifact store: stats | gc |
//!                      verify | clear
//! smlsc doctor <dir>   audit every kind of durable build state (stamps,
//!                      pack, ledger, store, daemon socket/lock, commit
//!                      litter) and print a JSON report; with --fix,
//!                      repair what the audit finds.  Exit 0 when
//!                      healthy or fully repaired, 4 when issues were
//!                      found without --fix, 3 when a repair failed
//! smlsc daemon <op>    resident build server for <dir>: start | stop |
//!                      restart | status | run.  While one is running,
//!                      plain `smlsc build` requests are served over its
//!                      socket from the in-memory analysis — a warm
//!                      no-op answers without reloading any cache.
//!                      `run` serves in the foreground (`start` uses it
//!                      internally); `stop` and `status` talk to the
//!                      socket in <bin-dir>; `restart` is stop-then-
//!                      start (idempotent — works with no daemon up).
//!                      Env knobs for `run`/`start`:
//!                      SMLSC_DAEMON_POLL_MS (watcher poll interval),
//!                      SMLSC_DAEMON_IDLE_SECS (auto-shutdown after
//!                      this long idle), SMLSC_DAEMON_DEADLINE_SECS
//!                      (per-request build deadline)
//!
//! build/run options:
//!   --strategy <s>     recompilation strategy: cutoff (default),
//!                      timestamp, or classical
//!   --jobs <n>         compile up to <n> units in parallel (default:
//!                      available CPU parallelism; 1 = sequential)
//!   --keep-going, -k   on a unit failure, keep compiling every unit
//!                      that does not depend on it; dependents are
//!                      reported as skipped
//!   --bin-dir <dir>    where per-project bins live (default:
//!                      <dir>/.smlsc-bins)
//!   --store <dir>      shared content-addressed artifact store; compiles
//!                      publish to it, recompile verdicts probe it first
//!                      (default: the SMLSC_STORE environment variable)
//!   --inject-faults <spec>  install a deterministic fault plan for
//!                      chaos testing (or the SMLSC_FAULTS environment
//!                      variable); see the README for the grammar
//!   --paranoid         distrust the stamp cache: re-read and re-digest
//!                      every source file even when its (mtime, size)
//!                      stamp matches the previous run
//!   --no-daemon        never dispatch this build to a running daemon,
//!                      even when one is serving the project
//!   --explain          print why each unit was recompiled or reused
//!   --stats            print a JSON telemetry report (counters and
//!                      per-phase duration histograms) to stdout
//!   --trace-out <f>    write a Chrome trace-event JSON file (load it in
//!                      chrome://tracing or https://ui.perfetto.dev)
//!   --report-json <f>  write the full machine-readable build report
//!                      (ledger record + per-unit decisions + counters)
//!   --top <n>          profile: how many units to show (default 10)
//!
//! Exit codes: 0 success; 1 source/compile failure; 2 usage error;
//! 3 internal error (a caught compiler panic); 4 store or filesystem
//! IO failure.
//!
//! cache options:
//!   --store <dir>          the store to operate on (or SMLSC_STORE)
//!   --max-bytes <n>        gc: evict LRU objects until the store fits
//!   --max-age-secs <n>     gc: evict objects unused for longer than this
//! ```
//!
//! The driver is a thin client of the library — exactly the paper's
//! architecture, where batch compilation, the interactive loop and user
//! metaprograms all sit on the same primitives.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

use smlsc::core::irm::{FailurePolicy, Irm, Project, Strategy, UnitOutcome};
use smlsc::core::session::Session;
use smlsc::core::store::{GcConfig, Store};
use smlsc::core::{trace, BuildReport, CoreError};

const USAGE: &str = "usage: smlsc build [options] <dir> | smlsc run [options] <dir> | smlsc profile [options] <dir> | smlsc history [options] <dir> | smlsc repl | smlsc cache <stats|gc|verify|clear> [options] | smlsc doctor [--fix] [options] <dir> | smlsc daemon <start|stop|restart|status|run> [options] <dir>\noptions: --strategy <cutoff|timestamp|classical>  --jobs <n>  --keep-going|-k  --bin-dir <dir>  --store <dir>  --inject-faults <spec>  --paranoid  --no-daemon  --explain  --stats  --trace-out <file>  --report-json <file>  --top <n>\ncache options: --store <dir>  --max-bytes <n>  --max-age-secs <n>\nexit codes: 0 ok, 1 compile failure, 2 usage, 3 internal error, 4 store/io error";

/// Exit codes (documented in the README): distinguishing "your source
/// is wrong" from "the compiler broke" from "the disk/store broke".
const EXIT_OK: i32 = 0;
const EXIT_COMPILE: i32 = 1;
const EXIT_USAGE: i32 = 2;
const EXIT_INTERNAL: i32 = 3;
const EXIT_IO: i32 = 4;

/// Maps a build error to its exit code class.
fn exit_code_for(e: &CoreError) -> i32 {
    if e.is_internal() {
        EXIT_INTERNAL
    } else if e.is_io() {
        EXIT_IO
    } else {
        EXIT_COMPILE
    }
}

/// The exit code for a finished keep-going build: internal errors
/// dominate, then IO, then plain compile failures.
fn exit_code_for_report(report: &BuildReport) -> i32 {
    if report.succeeded() {
        EXIT_OK
    } else if report.any_internal_failure() {
        EXIT_INTERNAL
    } else if report.failed.iter().any(|(_, e)| e.is_io()) {
        EXIT_IO
    } else {
        EXIT_COMPILE
    }
}

/// Resolves the store directory: an explicit `--store` wins, else the
/// `SMLSC_STORE` environment variable (ignored when empty).
fn resolve_store(flag: &Option<String>) -> Option<PathBuf> {
    flag.clone()
        .or_else(|| std::env::var("SMLSC_STORE").ok())
        .filter(|s| !s.is_empty())
        .map(PathBuf::from)
}

/// Installs the deterministic fault plan from `--inject-faults` (wins)
/// or the `SMLSC_FAULTS` environment variable.  No-op when neither is
/// set; a malformed spec is a usage error.
fn install_faults(flag: &Option<String>) -> Result<(), String> {
    let spec = flag
        .clone()
        .or_else(|| std::env::var("SMLSC_FAULTS").ok())
        .filter(|s| !s.is_empty());
    if let Some(spec) = spec {
        let plan = smlsc::faults::FaultPlan::parse(&spec)
            .map_err(|e| format!("--inject-faults/SMLSC_FAULTS: {e}"))?;
        smlsc::faults::install_global(plan);
    }
    Ok(())
}

/// Options for `smlsc build` / `smlsc run`.
#[derive(Default)]
struct BuildOpts {
    dir: Option<String>,
    strategy: Strategy,
    jobs: Option<usize>,
    keep_going: bool,
    bin_dir: Option<PathBuf>,
    store: Option<String>,
    inject_faults: Option<String>,
    paranoid: bool,
    no_daemon: bool,
    explain: bool,
    stats: bool,
    trace_out: Option<PathBuf>,
    report_json: Option<PathBuf>,
    top: Option<usize>,
}

impl BuildOpts {
    /// Parses the arguments after the subcommand.  `Err` is a message for
    /// stderr (usage errors exit with code 2).
    fn parse(args: &[String]) -> Result<BuildOpts, String> {
        let mut opts = BuildOpts::default();
        let mut it = args.iter();
        while let Some(arg) = it.next() {
            let mut take = |flag: &str| -> Result<String, String> {
                match arg.strip_prefix(&format!("{flag}=")) {
                    Some(v) => Ok(v.to_string()),
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| format!("{flag} requires a value")),
                }
            };
            if arg == "--strategy" || arg.starts_with("--strategy=") {
                opts.strategy = take("--strategy")?.parse()?;
            } else if arg == "--jobs" || arg.starts_with("--jobs=") {
                let v = take("--jobs")?;
                let n: usize = v
                    .parse()
                    .map_err(|_| format!("--jobs expects a positive integer, got `{v}`"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                opts.jobs = Some(n);
            } else if arg == "--trace-out" || arg.starts_with("--trace-out=") {
                opts.trace_out = Some(PathBuf::from(take("--trace-out")?));
            } else if arg == "--report-json" || arg.starts_with("--report-json=") {
                opts.report_json = Some(PathBuf::from(take("--report-json")?));
            } else if arg == "--top" || arg.starts_with("--top=") {
                let v = take("--top")?;
                opts.top = Some(
                    v.parse()
                        .map_err(|_| format!("--top expects a positive integer, got `{v}`"))?,
                );
            } else if arg == "--bin-dir" || arg.starts_with("--bin-dir=") {
                opts.bin_dir = Some(PathBuf::from(take("--bin-dir")?));
            } else if arg == "--store" || arg.starts_with("--store=") {
                opts.store = Some(take("--store")?);
            } else if arg == "--inject-faults" || arg.starts_with("--inject-faults=") {
                opts.inject_faults = Some(take("--inject-faults")?);
            } else if arg == "--keep-going" || arg == "-k" {
                opts.keep_going = true;
            } else if arg == "--paranoid" {
                opts.paranoid = true;
            } else if arg == "--no-daemon" {
                opts.no_daemon = true;
            } else if arg == "--explain" {
                opts.explain = true;
            } else if arg == "--stats" {
                opts.stats = true;
            } else if arg.starts_with('-') {
                return Err(format!("unknown option `{arg}`"));
            } else if opts.dir.is_none() {
                opts.dir = Some(arg.clone());
            } else {
                return Err(format!("unexpected argument `{arg}`"));
            }
        }
        Ok(opts)
    }

    /// The worker count: `--jobs` if given, else the machine's available
    /// parallelism (1 when that cannot be determined).
    fn effective_jobs(&self) -> usize {
        self.jobs.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some(cmd @ ("build" | "run" | "profile")) => match BuildOpts::parse(&args[1..]) {
            Ok(opts) => build(
                opts,
                match cmd {
                    "run" => Mode::Run,
                    "profile" => Mode::Profile,
                    _ => Mode::Build,
                },
            ),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                2
            }
        },
        Some("history") => match BuildOpts::parse(&args[1..]) {
            Ok(opts) => history(&opts),
            Err(e) => {
                eprintln!("error: {e}");
                eprintln!("{USAGE}");
                2
            }
        },
        Some("repl") => repl(),
        Some("cache") => cache(&args[1..]),
        Some("doctor") => doctor_cmd(&args[1..]),
        Some("daemon") => daemon_cmd(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            2
        }
    };
    std::process::exit(code);
}

/// Scans the project directory without reading any source file: each
/// `*.sml` is stat'ed into a lazy [`SourceFile`], so a warm build whose
/// stamps all match never opens a source at all.  Real mtimes are
/// threaded into the project (nanoseconds since the epoch) so
/// `--strategy timestamp` compares sources against cached bins the way
/// `make` would.
fn load_project(dir: &Path) -> Result<Project, String> {
    let p = Project::from_dir(dir).map_err(|e| e.to_string())?;
    if p.files().is_empty() {
        return Err(format!("no .sml files in {}", dir.display()));
    }
    Ok(p)
}

/// What `build()` does after the build finishes.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// Compile only.
    Build,
    /// Compile, then link and execute.
    Run,
    /// Compile, then print the critical-path profile.
    Profile,
}

fn build(opts: BuildOpts, mode: Mode) -> i32 {
    let run = mode == Mode::Run;
    let Some(dir) = &opts.dir else {
        eprintln!(
            "usage: smlsc {} [options] <dir>",
            match mode {
                Mode::Run => "run",
                Mode::Profile => "profile",
                Mode::Build => "build",
            }
        );
        return EXIT_USAGE;
    };
    if let Err(e) = install_faults(&opts.inject_faults) {
        eprintln!("error: {e}");
        return EXIT_USAGE;
    }
    let dir = PathBuf::from(dir);
    let bin_dir = opts
        .bin_dir
        .clone()
        .unwrap_or_else(|| dir.join(".smlsc-bins"));
    // Transparent daemon dispatch: a plain build against a project with
    // a live daemon is served over the socket from the in-memory
    // analysis.  Any client-side failure — no daemon, stale socket, a
    // daemon killed mid-request — falls through to the in-process build
    // below: the daemon is a latency optimization, never a correctness
    // dependency.
    if mode == Mode::Build && daemon_eligible(&opts) {
        if let Some(code) = daemon_dispatch(&opts, &bin_dir) {
            return code;
        }
    }
    let started = std::time::Instant::now();
    // The collector is always on: the ledger record appended after every
    // build reads its counters, and `--stats`/`--trace-out`/`profile`
    // consume the rest.  Collection is a few Vec pushes per unit —
    // noise against a compile.
    let collector = trace::Collector::new();
    collector.install();
    let project = match load_project(&dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_COMPILE;
        }
    };
    let mut irm = Irm::new(opts.strategy);
    irm.set_paranoid(opts.paranoid);
    // Stamps are a pure accelerator: a missing or corrupt cache only
    // costs re-digesting, so load failures are silently an empty cache.
    let stamps_path = bin_dir.join("stamps.json");
    irm.load_stamps(&stamps_path);
    if let Some(store_dir) = resolve_store(&opts.store) {
        match Store::open(&store_dir) {
            Ok(store) => irm.set_store(Arc::new(store)),
            Err(e) => {
                // A requested-but-unusable store is a hard error: the
                // user asked for shared caching and silently building
                // without it would hide misconfiguration.
                eprintln!("error: cannot open store {}: {e}", store_dir.display());
                return EXIT_IO;
            }
        }
    }
    if bin_dir.is_dir() {
        match irm.load_bins(&bin_dir) {
            Ok(outcome) => {
                // A corrupt bin downgrades that unit to a recompile;
                // the build continues with whatever loaded cleanly.
                for (path, e) in &outcome.corrupt {
                    eprintln!("warning: ignoring corrupt bin {}: {e}", path.display());
                }
                if outcome.loaded > 0 {
                    println!("loaded {} cached bin(s)", outcome.loaded);
                }
            }
            Err(e) => eprintln!("warning: ignoring bin cache: {e}"),
        }
    }
    let jobs = opts.effective_jobs();
    let policy = if opts.keep_going {
        FailurePolicy::KeepGoing
    } else {
        FailurePolicy::FailFast
    };
    let report = match irm.build_with(&project, jobs, policy) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return exit_code_for(&e);
        }
    };
    for (unit, w) in &report.warnings {
        eprintln!("{unit}: {w}");
    }
    // `CoreError`'s Display already names the unit.
    for (_, e) in &report.failed {
        eprintln!("error: {e}");
    }
    for (unit, outcome) in &report.outcomes {
        if let UnitOutcome::Skipped { blocked_on } = outcome {
            let imports: Vec<String> = blocked_on.iter().map(|u| format!("`{u}`")).collect();
            eprintln!(
                "skipped `{unit}`: blocked on failed import(s) {}",
                imports.join(", ")
            );
        }
    }
    let store_suffix = if irm.store().is_some() {
        format!(", {} from store", report.store_hits.len())
    } else {
        String::new()
    };
    let failure_suffix = if report.succeeded() {
        String::new()
    } else {
        format!(
            ", {} failed, {} skipped",
            report.failed.len(),
            report.skipped.len()
        )
    };
    println!(
        "built {} unit(s) [{}]: {} recompiled, {} reused{}{}",
        report.order.len(),
        report.strategy,
        report.recompiled.len(),
        report.reused.len(),
        store_suffix,
        failure_suffix
    );
    if opts.explain {
        for (unit, decision) in &report.decisions {
            println!("  {unit}: {decision}");
        }
    }
    if let Err(e) = irm.save_bins(&bin_dir) {
        eprintln!("warning: could not persist bins: {e}");
    } else if let Err(e) = irm.save_stamps(&stamps_path) {
        eprintln!("warning: could not persist stamps: {e}");
    }
    // Every finished build appends one flight-recorder line to the
    // ledger.  The ledger never fails a build: append errors (including
    // injected `ledger.append=io` faults) are warnings.
    let exit_code = exit_code_for_report(&report);
    let wall_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
    let ledger = smlsc::core::Ledger::for_bin_dir(&bin_dir);
    let record =
        smlsc::core::LedgerRecord::from_build(&report, &collector, jobs, wall_us, exit_code);
    if let Err(e) = ledger.append(&record) {
        eprintln!("warning: could not append to build ledger: {e}");
    }
    if let Some(path) = &opts.report_json {
        let json = smlsc::core::build_report_json(&record, &report, &collector);
        match std::fs::write(path, json) {
            Ok(()) => println!("report written to {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                return EXIT_IO;
            }
        }
    }
    if mode == Mode::Profile {
        match irm.import_graph(&project) {
            Ok(graph) => {
                // A warm build compiles nothing, so it cannot measure a
                // per-compile cost; history supplies one.
                let hint = mean_compile_us_from_history(&ledger);
                let profile =
                    smlsc::core::BuildProfile::compute(&collector.spans(), &graph, &report, hint);
                print!("{}", profile.render(opts.top.unwrap_or(10)));
            }
            Err(e) => eprintln!("warning: no profile: {e}"),
        }
    }
    if run && report.succeeded() {
        let (_, env) = match irm.execute_with_jobs(&project, jobs) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return exit_code_for(&e);
            }
        };
        for unit in &report.order {
            let linked = env.get(*unit).expect("linked in order");
            println!("{unit}: export pid {}", linked.export_pid);
        }
    } else if run {
        eprintln!("error: not running: the build did not complete");
    }
    trace::uninstall();
    if let Some(path) = &opts.trace_out {
        match std::fs::write(path, collector.chrome_trace_json()) {
            Ok(()) => println!("trace written to {}", path.display()),
            Err(e) => {
                eprintln!("error: could not write {}: {e}", path.display());
                return EXIT_IO;
            }
        }
    }
    if opts.stats {
        println!("{}", collector.stats_json());
    }
    exit_code
}

/// Whether this build may be dispatched to a daemon.  Only "plain"
/// cutoff builds qualify: a store, paranoia, fault injection, or a
/// trace/report output file all select in-process semantics the daemon
/// does not carry.
fn daemon_eligible(opts: &BuildOpts) -> bool {
    !opts.no_daemon
        && opts.strategy == Strategy::Cutoff
        && !opts.paranoid
        && opts.inject_faults.is_none()
        && std::env::var("SMLSC_FAULTS").map_or(true, |s| s.is_empty())
        && resolve_store(&opts.store).is_none()
        && opts.trace_out.is_none()
        && opts.report_json.is_none()
}

/// Tries to serve this build from a running daemon.  `None` means "no
/// daemon answered" (no socket, handshake failed, or it died
/// mid-request) and the caller builds in-process instead; `Some` is a
/// final exit code whose output already mirrors the in-process CLI.
///
/// Self-healing: when the socket exists but no daemon answers *and*
/// the lockfile's owner is dead (SIGKILLed daemon, reboot debris), the
/// client restarts the daemon once — stale-owner takeover clears the
/// corpse — and retries the request a single time before falling back
/// to an in-process build.
fn daemon_dispatch(opts: &BuildOpts, bin_dir: &Path) -> Option<i32> {
    let socket = smlsc::daemon::socket_path(bin_dir);
    if !socket.exists() {
        return None;
    }
    // `fresh`: the daemon re-stats the sources before deciding, so an
    // edit its watcher has not polled yet is still seen — dispatch is
    // never less correct than building in-process.
    let mut request = smlsc::daemon::Request::build(true);
    request.jobs = opts.jobs.unwrap_or(0) as u64;
    request.keep_going = opts.keep_going;
    request.explain = opts.explain;
    match smlsc::daemon::client::request(&socket, &request) {
        Ok(response) => Some(render_daemon_response(opts, &response)),
        Err(_) => {
            if !restart_dead_daemon(opts, bin_dir, &socket) {
                return None;
            }
            let response = smlsc::daemon::client::request(&socket, &request).ok()?;
            Some(render_daemon_response(opts, &response))
        }
    }
}

/// Prints a daemon build response exactly as the in-process CLI would
/// and returns its exit code.
fn render_daemon_response(opts: &BuildOpts, response: &smlsc::daemon::Response) -> i32 {
    if !response.ok {
        // The daemon answered but the build failed before producing a
        // report (fail-fast) — or timed out: same stderr shape and exit
        // code class as in-process.
        eprintln!("error: {}", response.error);
        return if response.exit_code == 0 {
            EXIT_COMPILE
        } else {
            response.exit_code
        };
    }
    for note in &response.notes {
        eprintln!("{note}");
    }
    println!("{}", response.summary);
    for line in &response.explain {
        println!("{line}");
    }
    if opts.stats {
        println!("{}", response.stats_json);
    }
    response.exit_code
}

/// Restarts a daemon whose socket is present but whose lockfile owner
/// is dead.  Quiet (dispatch is transparent); `false` means "do not
/// retry, fall back in-process" — including when the owner is alive
/// (a live daemon that refused a request is not ours to replace).
fn restart_dead_daemon(opts: &BuildOpts, bin_dir: &Path, socket: &Path) -> bool {
    let lockfile = smlsc::daemon::lock_path(bin_dir);
    let owner = smlsc::daemon::lock::owner(&lockfile);
    if owner.is_some_and(smlsc::daemon::lock::pid_alive) {
        return false;
    }
    let Some(dir) = &opts.dir else { return false };
    let Ok(exe) = std::env::current_exe() else {
        return false;
    };
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("daemon")
        .arg("run")
        .arg(dir)
        .arg("--bin-dir")
        .arg(bin_dir)
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    let Ok(mut child) = cmd.spawn() else {
        return false;
    };
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while std::time::Instant::now() < deadline {
        if socket.exists() && smlsc::daemon::lock::owner(&lockfile) == Some(u64::from(child.id())) {
            return true;
        }
        if let Ok(Some(_)) = child.try_wait() {
            return false;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

/// `smlsc doctor [--fix] [--bin-dir <dir>] [--store <dir>] <dir>`:
/// audit (and with `--fix`, repair) every kind of durable build state.
/// Shares its store audit with `smlsc cache verify`.
fn doctor_cmd(args: &[String]) -> i32 {
    const DOCTOR_USAGE: &str =
        "usage: smlsc doctor [--fix] [--bin-dir <dir>] [--store <dir>] <dir>";
    let mut fix = false;
    let mut dir: Option<String> = None;
    let mut bin_dir: Option<PathBuf> = None;
    let mut store_flag: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            match arg.strip_prefix(&format!("{flag}=")) {
                Some(v) => Ok(v.to_string()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value")),
            }
        };
        let parsed = if arg == "--fix" {
            fix = true;
            Ok(())
        } else if arg == "--bin-dir" || arg.starts_with("--bin-dir=") {
            take("--bin-dir").map(|v| bin_dir = Some(PathBuf::from(v)))
        } else if arg == "--store" || arg.starts_with("--store=") {
            take("--store").map(|v| store_flag = Some(v))
        } else if arg.starts_with('-') {
            Err(format!("unknown option `{arg}`"))
        } else if dir.is_none() {
            dir = Some(arg.clone());
            Ok(())
        } else {
            Err(format!("unexpected argument `{arg}`"))
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            eprintln!("{DOCTOR_USAGE}");
            return EXIT_USAGE;
        }
    }
    let Some(dir) = dir else {
        eprintln!("{DOCTOR_USAGE}");
        return EXIT_USAGE;
    };
    let dir = PathBuf::from(dir);
    let opts = smlsc::core::doctor::DoctorOptions {
        bin_dir: bin_dir.unwrap_or_else(|| dir.join(".smlsc-bins")),
        store: resolve_store(&store_flag),
        fix,
    };
    let report = smlsc::core::doctor::run(&opts);
    println!("{}", report.to_json());
    report.exit_code()
}

/// `smlsc daemon <start|stop|restart|status|run>`: manage the resident
/// build server for a project.
fn daemon_cmd(args: &[String]) -> i32 {
    const DAEMON_USAGE: &str =
        "usage: smlsc daemon <start|stop|restart|status|run> [options] <dir>";
    let Some(verb) = args.first().map(String::as_str) else {
        eprintln!("{DAEMON_USAGE}");
        return EXIT_USAGE;
    };
    let opts = match BuildOpts::parse(&args[1..]) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("{DAEMON_USAGE}");
            return EXIT_USAGE;
        }
    };
    let Some(dir) = &opts.dir else {
        eprintln!("{DAEMON_USAGE}");
        return EXIT_USAGE;
    };
    let dir = PathBuf::from(dir);
    let bin_dir = opts
        .bin_dir
        .clone()
        .unwrap_or_else(|| dir.join(".smlsc-bins"));
    let socket = smlsc::daemon::socket_path(&bin_dir);
    match verb {
        // The foreground server; `start` re-invokes the binary with
        // this verb to get a detached daemon process.
        "run" => {
            if let Err(e) = install_faults(&opts.inject_faults) {
                eprintln!("error: {e}");
                return EXIT_USAGE;
            }
            let mut config = smlsc::daemon::ServerConfig::new(&dir, &bin_dir);
            config.strategy = opts.strategy;
            if let Some(jobs) = opts.jobs {
                config.jobs = jobs;
            }
            if let Some(ms) = std::env::var("SMLSC_DAEMON_POLL_MS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
            {
                config.watch_interval = Duration::from_millis(ms.max(1));
            }
            if let Some(secs) = std::env::var("SMLSC_DAEMON_IDLE_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&s| s > 0)
            {
                config.idle_timeout = Some(Duration::from_secs(secs));
            }
            if let Some(secs) = std::env::var("SMLSC_DAEMON_DEADLINE_SECS")
                .ok()
                .and_then(|v| v.parse::<u64>().ok())
                .filter(|&s| s > 0)
            {
                config.request_deadline = Duration::from_secs(secs);
            }
            match smlsc::daemon::run(config) {
                Ok(()) => EXIT_OK,
                Err(e) => {
                    eprintln!("error: daemon: {e}");
                    EXIT_IO
                }
            }
        }
        "start" => daemon_start(&opts, &dir, &bin_dir, &socket),
        // Idempotent: stopping an already-stopped daemon succeeds.
        "stop" => daemon_stop(&dir, &bin_dir, &socket),
        // Stop-then-start; just as idempotent as its halves, so it
        // doubles as "make sure a fresh daemon is up".
        "restart" => {
            let stopped = daemon_stop(&dir, &bin_dir, &socket);
            if stopped != EXIT_OK {
                return stopped;
            }
            daemon_start(&opts, &dir, &bin_dir, &socket)
        }
        "status" => {
            match smlsc::daemon::client::request(&socket, &smlsc::daemon::Request::simple("status"))
            {
                Ok(resp) if resp.ok => {
                    println!("{}", resp.status_json);
                    EXIT_OK
                }
                _ => {
                    eprintln!("daemon not running for {}", dir.display());
                    EXIT_COMPILE
                }
            }
        }
        other => {
            eprintln!("error: unknown daemon operation `{other}`");
            eprintln!("{DAEMON_USAGE}");
            EXIT_USAGE
        }
    }
}

/// `daemon start`: spawn a detached `daemon run` and wait for it to
/// own the lockfile and bind the socket.  A live daemon already
/// serving the project is success, not an error.
fn daemon_start(opts: &BuildOpts, dir: &Path, bin_dir: &Path, socket: &Path) -> i32 {
    if smlsc::daemon::alive(socket) {
        println!("daemon already serving {}", dir.display());
        return EXIT_OK;
    }
    let exe = match std::env::current_exe() {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return EXIT_IO;
        }
    };
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("daemon")
        .arg("run")
        .arg(dir)
        .arg("--bin-dir")
        .arg(bin_dir)
        .arg("--strategy")
        .arg(opts.strategy.to_string())
        .stdin(std::process::Stdio::null())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::null());
    if let Some(jobs) = opts.jobs {
        cmd.arg("--jobs").arg(jobs.to_string());
    }
    if let Some(spec) = &opts.inject_faults {
        cmd.arg("--inject-faults").arg(spec);
    }
    let mut child = match cmd.spawn() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: could not spawn daemon: {e}");
            return EXIT_IO;
        }
    };
    // Readiness: the child owns the lockfile and has bound the
    // socket.  Deliberately not a handshake probe — injected
    // `daemon.accept` faults drop connections, and a readiness
    // probe must not consume (or be confused by) them.
    let lockfile = smlsc::daemon::lock_path(bin_dir);
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    while std::time::Instant::now() < deadline {
        if socket.exists() && smlsc::daemon::lock::owner(&lockfile) == Some(u64::from(child.id())) {
            println!(
                "daemon started (pid {}) serving {} on {}",
                child.id(),
                dir.display(),
                socket.display()
            );
            return EXIT_OK;
        }
        // A child that already exited (project unreadable, lock
        // contended) will never come up: fail fast.
        if let Ok(Some(status)) = child.try_wait() {
            eprintln!("error: daemon exited during startup ({status})");
            return EXIT_IO;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    eprintln!("error: daemon did not come up within 60s");
    EXIT_IO
}

/// `daemon stop`: ask the resident to shut down and wait until the
/// socket and lockfile are actually released.  Idempotent — stopping
/// an already-stopped daemon succeeds.
fn daemon_stop(dir: &Path, bin_dir: &Path, socket: &Path) -> i32 {
    match smlsc::daemon::client::request(socket, &smlsc::daemon::Request::simple("stop")) {
        Ok(_) => {
            // The daemon removes its socket and lockfile on the
            // way out; wait so "stopped" means "released".
            let lockfile = smlsc::daemon::lock_path(bin_dir);
            let deadline = std::time::Instant::now() + Duration::from_secs(10);
            while (socket.exists() || lockfile.exists()) && std::time::Instant::now() < deadline {
                std::thread::sleep(Duration::from_millis(25));
            }
            println!("daemon stopped");
        }
        Err(_) => println!("daemon not running for {}", dir.display()),
    }
    EXIT_OK
}

/// The median per-compile cost over ledger history, microseconds — the
/// hint `smlsc profile` uses to price avoided compiles when the profiled
/// build itself compiled nothing.
fn mean_compile_us_from_history(ledger: &smlsc::core::Ledger) -> Option<u64> {
    // Streamed: the ledger is read one record at a time, and only the
    // 8-byte per-build cost sample is retained for the median.
    let costs: Vec<u64> = ledger
        .stream()
        .filter(|r| r.compiled > 0)
        .map(|r| (r.parse_us + r.elaborate_us + r.hash_us + r.dehydrate_us) / r.compiled)
        .collect();
    (!costs.is_empty()).then(|| smlsc::core::ledger::quantile(&costs, 0.5))
}

/// `smlsc history <dir>`: wall-time and hit-rate trends from the
/// persistent ledger, plus a flag when the last build regressed to at
/// least twice the median wall time, and a scaling flag when warm
/// no-op builds grew superlinearly in the project's unit count.
fn history(opts: &BuildOpts) -> i32 {
    let Some(dir) = &opts.dir else {
        eprintln!("usage: smlsc history [--bin-dir <dir>] <dir>");
        return EXIT_USAGE;
    };
    let dir = PathBuf::from(dir);
    let bin_dir = opts
        .bin_dir
        .clone()
        .unwrap_or_else(|| dir.join(".smlsc-bins"));
    let ledger = smlsc::core::Ledger::for_bin_dir(&bin_dir);
    // One streaming pass: full records are never collected.  Only the
    // newest record survives the pass whole; everything else folds into
    // running aggregates (plus one u64 wall sample per build for the
    // quantiles), so memory is O(1) per record however long the history.
    let mut walls: Vec<u64> = Vec::new();
    let mut rates = (None::<f64>, None::<f64>, 0.0f64, 0usize); // first, last, sum, count
    let mut failures = 0usize;
    let mut last: Option<smlsc::core::LedgerRecord> = None;
    // Warm (zero-compile) samples as (units, wall_us): the material for
    // the scaling check below.  Two u64s per record, like `walls`.
    let mut warm: Vec<(u64, u64)> = Vec::new();
    for r in ledger.stream() {
        walls.push(r.wall_us);
        if r.compiled == 0 && r.exit_code == 0 {
            let units = r.reused + r.cutoff + r.store_hits + r.skipped;
            if units > 0 {
                warm.push((units, r.wall_us));
            }
        }
        let total = r.stamp_hits + r.stamp_misses;
        if total > 0 {
            let rate = 100.0 * r.stamp_hits as f64 / total as f64;
            rates.0.get_or_insert(rate);
            rates.1 = Some(rate);
            rates.2 += rate;
            rates.3 += 1;
        }
        if r.exit_code != 0 {
            failures += 1;
        }
        last = Some(r);
    }
    let Some(last) = last else {
        println!("history: no builds recorded in {}", ledger.path().display());
        return EXIT_OK;
    };
    let median = smlsc::core::ledger::quantile(&walls, 0.5);
    let p95 = smlsc::core::ledger::quantile(&walls, 0.95);
    let ms = |us: u64| us as f64 / 1e3;
    println!(
        "history: {} build(s) in {}",
        walls.len(),
        ledger.path().display()
    );
    println!(
        "  wall time: median {:.2}ms, p95 {:.2}ms, last {:.2}ms",
        ms(median),
        ms(p95),
        ms(walls[walls.len() - 1])
    );
    if let (Some(first), Some(newest)) = (rates.0, rates.1) {
        let mean = rates.2 / rates.3 as f64;
        println!(
            "  stamp hit rate: first {first:.0}%, mean {mean:.0}%, last {newest:.0}%{}",
            if newest + 25.0 < mean {
                "  (drifting down)"
            } else {
                ""
            }
        );
    }
    println!(
        "  last build: {} compiled, {} reused, {} cutoff, {} from store, critical path {}, exit {}",
        last.compiled,
        last.reused,
        last.cutoff,
        last.store_hits,
        last.critical_path,
        last.exit_code
    );
    if walls.len() >= 3 && median > 0 && last.wall_us >= 2 * median {
        println!(
            "  regression: last build took {:.2}ms, >= 2x the median {:.2}ms",
            ms(last.wall_us),
            ms(median)
        );
    }
    // Scaling: a warm no-op's wall time should grow at most ~linearly
    // with the project's unit count.  Compare the newest warm build
    // against the smallest project on record — 2x the units may cost at
    // most ~2.5x the time (10ms slack absorbs timer noise on tiny
    // projects).  A superlinear warm path shows up here long before the
    // same-size regression check above can see it.
    if let (Some(&(u0, w0)), Some(&(u1, w1))) = (warm.iter().min(), warm.last()) {
        if u1 >= 2 * u0 {
            let ratio = u1 as f64 / u0 as f64;
            let limit = w0 as f64 * ratio * 1.25 + 10_000.0;
            if w1 as f64 > limit {
                println!(
                    "  scaling regression: no-op at {u1} units took {:.2}ms, but {u0} units took \
                     {:.2}ms — {ratio:.1}x the units may cost at most {:.1}x the time",
                    ms(w1),
                    ms(w0),
                    ratio * 1.25
                );
            }
        }
    }
    if failures > 0 {
        println!("  {failures} build(s) exited non-zero");
    }
    EXIT_OK
}

/// `smlsc cache <stats|gc|verify|clear>`: operate on a shared store.
fn cache(args: &[String]) -> i32 {
    let Some(op) = args.first().map(String::as_str) else {
        eprintln!("usage: smlsc cache <stats|gc|verify|clear> [--store <dir>] [--max-bytes <n>] [--max-age-secs <n>]");
        return 2;
    };
    let mut store_flag: Option<String> = None;
    let mut config = GcConfig::default();
    let mut it = args[1..].iter();
    while let Some(arg) = it.next() {
        let mut take = |flag: &str| -> Result<String, String> {
            match arg.strip_prefix(&format!("{flag}=")) {
                Some(v) => Ok(v.to_string()),
                None => it
                    .next()
                    .cloned()
                    .ok_or_else(|| format!("{flag} requires a value")),
            }
        };
        let parsed = if arg == "--store" || arg.starts_with("--store=") {
            take("--store").map(|v| store_flag = Some(v))
        } else if arg == "--max-bytes" || arg.starts_with("--max-bytes=") {
            take("--max-bytes").and_then(|v| {
                v.parse()
                    .map(|n| config.max_bytes = Some(n))
                    .map_err(|_| format!("--max-bytes expects an integer, got `{v}`"))
            })
        } else if arg == "--max-age-secs" || arg.starts_with("--max-age-secs=") {
            take("--max-age-secs").and_then(|v| {
                v.parse()
                    .map(|n| config.max_age = Some(Duration::from_secs(n)))
                    .map_err(|_| format!("--max-age-secs expects an integer, got `{v}`"))
            })
        } else {
            Err(format!("unknown option `{arg}`"))
        };
        if let Err(e) = parsed {
            eprintln!("error: {e}");
            return 2;
        }
    }
    let Some(store_dir) = resolve_store(&store_flag) else {
        eprintln!("error: no store given (use --store <dir> or set SMLSC_STORE)");
        return EXIT_USAGE;
    };
    if let Err(e) = install_faults(&None) {
        eprintln!("error: {e}");
        return EXIT_USAGE;
    }
    let store = match Store::open(&store_dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot open store {}: {e}", store_dir.display());
            return EXIT_IO;
        }
    };
    match op {
        "stats" => match store.stats() {
            Ok(s) => {
                println!(
                    "store {}: {} object(s), {} bytes, {} quarantined, journal {} bytes",
                    store_dir.display(),
                    s.objects,
                    s.bytes,
                    s.quarantined,
                    s.journal_bytes
                );
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_IO
            }
        },
        "gc" => match store.gc(&config) {
            Ok(r) => {
                println!(
                    "gc: examined {} object(s), evicted {}, {} -> {} bytes, purged {} quarantined",
                    r.examined, r.evicted, r.bytes_before, r.bytes_after, r.quarantine_purged
                );
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_IO
            }
        },
        "verify" => match store.verify() {
            Ok(r) => {
                println!(
                    "verify: checked {} object(s), {} corrupt",
                    r.checked,
                    r.corrupt.len()
                );
                for key in &r.corrupt {
                    println!("  quarantined {key}");
                }
                i32::from(!r.corrupt.is_empty())
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_IO
            }
        },
        "clear" => match store.clear() {
            Ok(n) => {
                println!("cleared {n} object(s)");
                0
            }
            Err(e) => {
                eprintln!("error: {e}");
                EXIT_IO
            }
        },
        other => {
            eprintln!("error: unknown cache operation `{other}`");
            eprintln!("usage: smlsc cache <stats|gc|verify|clear>");
            2
        }
    }
}

fn repl() -> i32 {
    // The interpreter recurses on the host stack; give the session a
    // deep one so the depth guard fires before the stack does.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(repl_loop)
        .expect("spawn repl thread")
        .join()
        .unwrap_or(1)
}

fn repl_loop() -> i32 {
    let stdin = std::io::stdin();
    let mut session = Session::new();
    // Keep runaway recursion from hanging the terminal.
    session.set_step_limit(50_000_000);
    let mut buffer = String::new();
    println!("smlsc interactive session — end each input with `;;`, Ctrl-D to exit");
    print!("- ");
    let _ = std::io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim_end();
        if let Some(stripped) = trimmed.strip_suffix(";;") {
            buffer.push_str(stripped);
            buffer.push('\n');
            match session.eval(&buffer) {
                Ok(out) => {
                    for w in &out.warnings {
                        println!("  {w}");
                    }
                    for b in &out.bindings {
                        println!("  {b}");
                    }
                    println!("  (unit {}, pid {})", out.unit, out.export_pid);
                }
                Err(e) => println!("  error: {e}"),
            }
            buffer.clear();
            print!("- ");
        } else {
            buffer.push_str(trimmed);
            buffer.push('\n');
            print!("= ");
        }
        let _ = std::io::stdout().flush();
    }
    println!();
    0
}
