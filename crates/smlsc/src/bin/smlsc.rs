//! The `smlsc` command-line driver.
//!
//! ```text
//! smlsc build <dir>    incrementally compile every *.sml file in <dir>
//!                      (bins cached in <dir>/.smlsc-bins)
//! smlsc run <dir>      build, link, execute, and print the exports
//! smlsc repl           interactive compile-and-execute session (§7);
//!                      terminate each input with a line ending in `;;`
//! ```
//!
//! The driver is a thin client of the library — exactly the paper's
//! architecture, where batch compilation, the interactive loop and user
//! metaprograms all sit on the same primitives.

use std::io::{BufRead, Write};
use std::path::{Path, PathBuf};

use smlsc::core::irm::{Irm, Project, Strategy};
use smlsc::core::session::Session;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let code = match args.first().map(String::as_str) {
        Some("build") => build(args.get(1).map(String::as_str), false),
        Some("run") => build(args.get(1).map(String::as_str), true),
        Some("repl") => repl(),
        _ => {
            eprintln!("usage: smlsc build <dir> | smlsc run <dir> | smlsc repl");
            2
        }
    };
    std::process::exit(code);
}

fn load_project(dir: &Path) -> Result<Project, String> {
    let mut files: Vec<(String, String, std::time::SystemTime)> = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.extension().is_some_and(|e| e == "sml") {
            let stem = path
                .file_stem()
                .and_then(|s| s.to_str())
                .ok_or_else(|| format!("bad file name {}", path.display()))?
                .to_owned();
            let text = std::fs::read_to_string(&path).map_err(|e| e.to_string())?;
            let mtime = entry
                .metadata()
                .and_then(|m| m.modified())
                .unwrap_or(std::time::SystemTime::UNIX_EPOCH);
            files.push((stem, text, mtime));
        }
    }
    if files.is_empty() {
        return Err(format!("no .sml files in {}", dir.display()));
    }
    // Deterministic order; real mtimes are irrelevant to cutoff (the
    // strategy the driver uses), so virtual stamps suffice.
    files.sort_by(|a, b| a.0.cmp(&b.0));
    let mut p = Project::new();
    for (name, text, _) in files {
        p.add(name, text);
    }
    Ok(p)
}

fn build(dir: Option<&str>, run: bool) -> i32 {
    let Some(dir) = dir else {
        eprintln!("usage: smlsc {} <dir>", if run { "run" } else { "build" });
        return 2;
    };
    let dir = PathBuf::from(dir);
    let project = match load_project(&dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    let bin_dir = dir.join(".smlsc-bins");
    let mut irm = Irm::new(Strategy::Cutoff);
    if bin_dir.is_dir() {
        match irm.load_bins(&bin_dir) {
            Ok(n) if n > 0 => println!("loaded {n} cached bin(s)"),
            Ok(_) => {}
            Err(e) => eprintln!("warning: ignoring bin cache: {e}"),
        }
    }
    let report = match irm.build(&project) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: {e}");
            return 1;
        }
    };
    for (unit, w) in &report.warnings {
        eprintln!("{unit}: {w}");
    }
    println!(
        "built {} unit(s): {} recompiled, {} reused",
        report.order.len(),
        report.recompiled.len(),
        report.reused.len()
    );
    if let Err(e) = irm.save_bins(&bin_dir) {
        eprintln!("warning: could not persist bins: {e}");
    }
    if run {
        let (_, env) = match irm.execute(&project) {
            Ok(x) => x,
            Err(e) => {
                eprintln!("error: {e}");
                return 1;
            }
        };
        for unit in &report.order {
            let linked = env.get(*unit).expect("linked in order");
            println!("{unit}: export pid {}", linked.export_pid);
        }
    }
    0
}

fn repl() -> i32 {
    // The interpreter recurses on the host stack; give the session a
    // deep one so the depth guard fires before the stack does.
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(repl_loop)
        .expect("spawn repl thread")
        .join()
        .unwrap_or(1)
}

fn repl_loop() -> i32 {
    let stdin = std::io::stdin();
    let mut session = Session::new();
    // Keep runaway recursion from hanging the terminal.
    session.set_step_limit(50_000_000);
    let mut buffer = String::new();
    println!("smlsc interactive session — end each input with `;;`, Ctrl-D to exit");
    print!("- ");
    let _ = std::io::stdout().flush();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let trimmed = line.trim_end();
        if let Some(stripped) = trimmed.strip_suffix(";;") {
            buffer.push_str(stripped);
            buffer.push('\n');
            match session.eval(&buffer) {
                Ok(out) => {
                    for w in &out.warnings {
                        println!("  {w}");
                    }
                    for b in &out.bindings {
                        println!("  {b}");
                    }
                    println!("  (unit {}, pid {})", out.unit, out.export_pid);
                }
                Err(e) => println!("  error: {e}"),
            }
            buffer.clear();
            print!("- ");
        } else {
            buffer.push_str(trimmed);
            buffer.push('\n');
            print!("= ");
        }
        let _ = std::io::stdout().flush();
    }
    println!();
    0
}
