//! End-to-end warm builds through the `smlsc` CLI: the second build of
//! an unchanged project must do no source IO at all and parse only the
//! archive index — and `--stats` proves it with counters.

use std::path::{Path, PathBuf};
use std::process::Command;

fn smlsc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smlsc"));
    cmd.env_remove("SMLSC_STORE");
    cmd
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-warmcli-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_project(dir: &Path) {
    std::fs::write(
        dir.join("util.sml"),
        "structure Util = struct fun inc x = x + 1 end",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.sml"),
        "structure Main = struct val v = Util.inc 41 end",
    )
    .unwrap();
}

fn stats_line(stdout: &str) -> &str {
    stdout.lines().find(|l| l.starts_with('{')).unwrap()
}

#[test]
fn warm_rebuild_reads_no_sources_and_only_the_index() {
    let proj = temp("noop");
    write_project(&proj);

    let out = smlsc()
        .args(["build", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 recompiled, 0 reused"), "{stdout}");
    let json = stats_line(&stdout);
    // Cold: every source is read and digested, no stamps match yet.
    assert!(json.contains(r#""source.reads":2"#), "{json}");
    assert!(json.contains(r#""stamp.misses":2"#), "{json}");
    assert!(proj.join(".smlsc-bins").join("bins.pack").is_file());
    assert!(proj.join(".smlsc-bins").join("stamps.json").is_file());

    // Warm: zero compiles, zero source reads, index-only bin loading.
    let out = smlsc()
        .args(["build", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 recompiled, 2 reused"), "{stdout}");
    let json = stats_line(&stdout);
    assert!(json.contains(r#""stamp.hits":2"#), "{json}");
    assert!(json.contains(r#""bin.index_only":2"#), "{json}");
    assert!(!json.contains(r#""source.reads""#), "{json}");
    assert!(!json.contains(r#""stamp.misses""#), "{json}");
    assert!(!json.contains(r#""irm.units_compiled""#), "{json}");
    assert!(!json.contains(r#""bin.lazy_bodies""#), "{json}");
    // Nothing changed, so the stamp cache skips its rewrite, the import
    // DAG rehydrates from the sidecar, and the dirty set stays empty.
    assert!(json.contains(r#""stamp.saves_skipped":1"#), "{json}");
    assert!(json.contains(r#""deps.pack_hits":1"#), "{json}");
    assert!(!json.contains(r#""sched.dirty_seed""#), "{json}");

    std::fs::remove_dir_all(&proj).ok();
}

#[test]
fn paranoid_flag_redigests_every_source() {
    let proj = temp("paranoid");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    // `--paranoid` distrusts the stamps: both sources are re-read and
    // the archive bodies are verified eagerly — but the conclusion is
    // the same: nothing recompiles.
    let out = smlsc()
        .args(["build", "--paranoid", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 recompiled, 2 reused"), "{stdout}");
    let json = stats_line(&stdout);
    assert!(json.contains(r#""source.reads":2"#), "{json}");
    assert!(!json.contains(r#""stamp.hits""#), "{json}");
    assert!(!json.contains(r#""bin.index_only""#), "{json}");

    std::fs::remove_dir_all(&proj).ok();
}

#[test]
fn editing_one_leaf_recompiles_only_it_on_the_warm_path() {
    let proj = temp("leaf-edit");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    // A body-only edit to the leaf: one stamp misses, one hits; only
    // the edited unit recompiles (its interface is unchanged, so the
    // dependent is cut off).
    std::fs::write(
        proj.join("main.sml"),
        "structure Main = struct val v = Util.inc 42 end",
    )
    .unwrap();
    let out = smlsc()
        .args(["build", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 recompiled, 1 reused"), "{stdout}");
    let json = stats_line(&stdout);
    assert!(json.contains(r#""stamp.hits":1"#), "{json}");
    assert!(json.contains(r#""stamp.misses":1"#), "{json}");
    assert!(json.contains(r#""source.reads":1"#), "{json}");
    // Dirty-set scheduling: the edited leaf seeds the wavefront and its
    // cone is just itself (no dependents).
    assert!(json.contains(r#""sched.dirty_seed":1"#), "{json}");
    assert!(json.contains(r#""sched.dirty_cone":1"#), "{json}");

    std::fs::remove_dir_all(&proj).ok();
}
