//! Graceful daemon shutdown on SIGTERM/SIGINT: the socket and
//! lockfile are released (no stale debris for the next acquire or
//! `smlsc doctor`), and an in-flight build is drained — its client
//! gets a real response, not a dropped connection.

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::{Duration, Instant};

fn smlsc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smlsc"));
    cmd.env_remove("SMLSC_STORE");
    cmd.env_remove("SMLSC_FAULTS");
    cmd
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-daemonsig-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_project(dir: &Path) {
    std::fs::write(
        dir.join("a.sml"),
        "structure A = struct fun f x = x + 1 end",
    )
    .unwrap();
    std::fs::write(dir.join("b.sml"), "structure B = struct val y = A.f 41 end").unwrap();
}

fn start_daemon(proj: &Path, extra: &[&str]) -> u32 {
    let out = smlsc()
        .arg("daemon")
        .arg("start")
        .args(extra)
        .arg(proj)
        .env("SMLSC_DAEMON_POLL_MS", "20")
        .output()
        .unwrap();
    assert!(out.status.success(), "daemon start failed: {out:?}");
    std::fs::read_to_string(proj.join(".smlsc-bins/daemon.lock"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

fn signal_pid(pid: u32, sig: &str) {
    let status = Command::new("kill")
        .args([sig, &pid.to_string()])
        .status()
        .unwrap();
    assert!(status.success(), "kill {sig} {pid} failed");
}

/// Waits until both daemon files are gone, panicking with state on
/// timeout.
fn wait_released(proj: &Path, within: Duration) {
    let socket = proj.join(".smlsc-bins/daemon.sock");
    let lock = proj.join(".smlsc-bins/daemon.lock");
    let deadline = Instant::now() + within;
    while Instant::now() < deadline {
        if !socket.exists() && !lock.exists() {
            return;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    panic!(
        "daemon did not release its files: socket={} lock={}",
        socket.exists(),
        lock.exists()
    );
}

#[test]
fn sigterm_releases_socket_and_lockfile() {
    let proj = temp("sigterm");
    write_project(&proj);
    let pid = start_daemon(&proj, &[]);
    signal_pid(pid, "-TERM");
    wait_released(&proj, Duration::from_secs(10));
}

#[test]
fn sigint_releases_socket_and_lockfile() {
    let proj = temp("sigint");
    write_project(&proj);
    let pid = start_daemon(&proj, &[]);
    signal_pid(pid, "-INT");
    wait_released(&proj, Duration::from_secs(10));
}

#[test]
fn sigterm_mid_build_drains_the_in_flight_request() {
    let proj = temp("inflight");
    write_project(&proj);
    // Every compile in the daemon is slowed by 300ms, so a cold build
    // of two units is reliably still running when the signal lands.
    let pid = start_daemon(&proj, &["--inject-faults", "compile.unit=delay:300"]);

    let proj_clone = proj.clone();
    let client =
        std::thread::spawn(move || smlsc().arg("build").arg(&proj_clone).output().unwrap());
    // Let the request reach the daemon and start compiling.
    std::thread::sleep(Duration::from_millis(150));
    signal_pid(pid, "-TERM");

    // The drain keeps the socket alive until the handler answers: the
    // client's build completes (served by the daemon, so no in-process
    // cache-load banner) instead of seeing a dropped connection.
    let out = client.join().unwrap();
    assert!(
        out.status.success(),
        "in-flight build must complete: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("built 2 unit(s)"),
        "daemon answered the in-flight build: {stdout}"
    );
    wait_released(&proj, Duration::from_secs(10));
}
