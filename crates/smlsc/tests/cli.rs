//! End-to-end tests of the `smlsc` command-line driver.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn smlsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smlsc"))
}

fn project_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn build_and_rebuild_with_cached_bins() {
    let dir = project_dir("build");
    std::fs::write(
        dir.join("util.sml"),
        "structure Util = struct fun inc x = x + 1 end",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.sml"),
        "structure Main = struct val v = Util.inc 41 end",
    )
    .unwrap();

    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 recompiled"), "{stdout}");

    // Second build: cached bins satisfy cutoff.
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 recompiled, 2 reused"), "{stdout}");

    // Run prints per-unit export pids.
    let out = smlsc().arg("run").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("main: export pid"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn jobs_flag_builds_in_parallel_with_identical_results() {
    let dir = project_dir("jobs");
    std::fs::write(
        dir.join("base.sml"),
        "structure Base = struct val n = 10 end",
    )
    .unwrap();
    for m in ["a", "b", "c", "d"] {
        std::fs::write(
            dir.join(format!("mid_{m}.sml")),
            format!("structure Mid_{m} = struct val v = Base.n + 1 end"),
        )
        .unwrap();
    }
    std::fs::write(
        dir.join("top.sml"),
        "structure Top = struct val s = Mid_a.v + Mid_b.v + Mid_c.v + Mid_d.v end",
    )
    .unwrap();

    let out = smlsc()
        .args(["build", "--jobs", "4"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("6 recompiled"), "{stdout}");

    // The bins written by the parallel build satisfy a sequential cutoff
    // rebuild completely — the pids must be identical.
    let out = smlsc()
        .args(["build", "--jobs", "1"])
        .arg(&dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 recompiled, 6 reused"), "{stdout}");

    // And run works under parallelism too.
    let out = smlsc()
        .args(["run", "--jobs", "3"])
        .arg(&dir)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("top: export pid"), "{stdout}");

    // --jobs 0 is a usage error.
    let out = smlsc()
        .args(["build", "--jobs", "0"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--jobs must be at least 1"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_reports_errors_with_unit_names() {
    let dir = project_dir("err");
    std::fs::write(
        dir.join("bad.sml"),
        r#"structure Bad = struct val x = 1 + "s" end"#,
    )
    .unwrap();
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("`bad`"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_surfaces_warnings() {
    let dir = project_dir("warn");
    std::fs::write(
        dir.join("w.sml"),
        "structure W = struct fun hd (x :: _) = x end",
    )
    .unwrap();
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not exhaustive"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_evaluates_and_recovers_from_errors() {
    let mut child = smlsc()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "structure A = struct val x = 40 + 2 end;;").unwrap();
        writeln!(stdin, "structure Broken = struct val y = Nope.z end;;").unwrap();
        writeln!(stdin, "structure B = struct val y = A.x end;;").unwrap();
    }
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("structure A : {x : int}"), "{stdout}");
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("structure B : {y : int}"), "{stdout}");
}

#[test]
fn usage_on_bad_arguments() {
    let out = smlsc().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn strategy_flag_selects_and_reports_the_strategy() {
    let dir = project_dir("strategy");
    std::fs::write(dir.join("a.sml"), "structure A = struct val x = 1 end").unwrap();

    let out = smlsc()
        .args(["build", "--strategy", "classical"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[classical]"), "{stdout}");

    // Default is the paper's cutoff.
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("[cutoff]"), "{stdout}");

    // A bogus strategy is a usage error.
    let out = smlsc()
        .args(["build", "--strategy", "frobnicate"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown strategy"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_prints_causal_decision_chains() {
    let dir = project_dir("explain");
    std::fs::write(
        dir.join("util.sml"),
        "structure Util = struct fun inc x = x + 1 end",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.sml"),
        "structure Main = struct val v = Util.inc 41 end",
    )
    .unwrap();

    let out = smlsc()
        .args(["build", "--explain"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("util: compiled: new unit"), "{stdout}");
    assert!(stdout.contains("main: compiled: new unit"), "{stdout}");

    // A comment-only edit: util's source pid changes, its export pid does
    // not, so --explain shows the dependent cut off with the pid intact.
    std::fs::write(
        dir.join("util.sml"),
        "(* comment *) structure Util = struct fun inc x = x + 1 end",
    )
    .unwrap();
    let out = smlsc()
        .args(["build", "--explain"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("util: recompiled: source changed"),
        "{stdout}"
    );
    assert!(
        stdout.contains("main: cut off: import `util`") && stdout.contains("unchanged"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_out_writes_chrome_trace_events() {
    let dir = project_dir("trace");
    std::fs::write(dir.join("a.sml"), "structure A = struct val x = 1 end").unwrap();
    std::fs::write(dir.join("b.sml"), "structure B = struct val y = A.x end").unwrap();
    let trace_file = dir.join("trace.json");

    let out = smlsc()
        .args(["build", "--trace-out"])
        .arg(&trace_file)
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let trace = std::fs::read_to_string(&trace_file).unwrap();
    assert!(
        trace.starts_with('[') && trace.trim_end().ends_with(']'),
        "{trace}"
    );
    for needle in [
        r#""ph":"X""#,
        r#""name":"irm.build""#,
        r#""name":"compile.parse""#,
        r#""name":"compile.elaborate""#,
        r#""name":"compile.hash""#,
        r#""name":"compile.dehydrate""#,
        r#""pid":1"#,
    ] {
        assert!(trace.contains(needle), "missing {needle} in {trace}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_emits_counters_and_phase_histograms() {
    let dir = project_dir("stats");
    std::fs::write(dir.join("a.sml"), "structure A = struct val x = 1 end").unwrap();

    let out = smlsc()
        .args(["build", "--stats"])
        .arg(&dir)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let json_line = stdout
        .lines()
        .find(|l| l.starts_with('{'))
        .expect("a JSON stats line");
    for needle in [
        r#""counters""#,
        r#""irm.units_compiled":1"#,
        r#""histograms""#,
        r#""compile.parse":{"count":1"#,
        r#""p99_us""#,
    ] {
        assert!(
            json_line.contains(needle),
            "missing {needle} in {json_line}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn exit_codes_distinguish_failure_classes() {
    // 1: the user's source is wrong.
    let dir = project_dir("exit-compile");
    std::fs::write(
        dir.join("bad.sml"),
        r#"structure Bad = struct val x = 1 + "s" end"#,
    )
    .unwrap();
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    // 3: the compiler itself broke (here: an injected panic).
    let out = smlsc()
        .args(["build", "--inject-faults", "compile.unit=panic(bad)"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(3), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("internal compiler error"), "{stderr}");

    // 4: the store cannot be opened (its root is a regular file).
    let blocker = dir.join("not-a-store");
    std::fs::write(&blocker, "x").unwrap();
    let out = smlsc()
        .args(["build", "--store"])
        .arg(&blocker)
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(4), "{out:?}");

    // 2: a malformed fault spec is a usage error.
    let out = smlsc()
        .args(["build", "--inject-faults", "frobnicate=explode"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn keep_going_builds_past_a_failure_and_reports_skips() {
    let dir = project_dir("keep-going");
    std::fs::write(dir.join("ok.sml"), "structure Ok = struct val x = 1 end").unwrap();
    std::fs::write(
        dir.join("bad.sml"),
        r#"structure Bad = struct val y = 1 + "s" end"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("uses_bad.sml"),
        "structure Uses_bad = struct val z = Bad.y end",
    )
    .unwrap();

    let out = smlsc()
        .args(["build", "--keep-going", "--jobs", "4"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stdout.contains("1 failed, 1 skipped"), "{stdout}");
    assert!(stderr.contains("`bad`"), "{stderr}");
    assert!(
        stderr.contains("skipped `uses_bad`") && stderr.contains("blocked on"),
        "{stderr}"
    );

    // The independent unit's bin was persisted: a fixed rebuild reuses it.
    std::fs::write(dir.join("bad.sml"), "structure Bad = struct val y = 2 end").unwrap();
    let out = smlsc().args(["build", "-k"]).arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 recompiled, 1 reused"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn explain_shows_skipped_decisions() {
    let dir = project_dir("explain-skip");
    std::fs::write(
        dir.join("bad.sml"),
        r#"structure Bad = struct val y = 1 + "s" end"#,
    )
    .unwrap();
    std::fs::write(
        dir.join("child.sml"),
        "structure Child = struct val z = Bad.y end",
    )
    .unwrap();
    let out = smlsc()
        .args(["build", "-k", "--explain"])
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("child: skipped: blocked on failed import(s) `bad`"),
        "{stdout}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_surface_fault_and_quarantine_counters() {
    let dir = project_dir("chaos-stats");
    let store = dir.join("store");
    std::fs::write(dir.join("a.sml"), "structure A = struct val x = 1 end").unwrap();

    // Every publish is torn: the store ends up with corrupt objects,
    // and the counters prove the faults fired.
    let out = smlsc()
        .args(["build", "--stats", "--inject-faults", "store.publish=torn"])
        .arg("--store")
        .arg(&store)
        .arg(&dir)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""faults.injected""#), "{stdout}");

    // A fresh builder (cold bins, faults off, via SMLSC_FAULTS unset)
    // probes the store, catches the torn object by digest, and
    // quarantines it — visible in the stats counters.
    let bins2 = dir.join("bins2");
    let out = smlsc()
        .args(["build", "--stats"])
        .arg("--bin-dir")
        .arg(&bins2)
        .arg("--store")
        .arg(&store)
        .arg(&dir)
        .env_remove("SMLSC_FAULTS")
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains(r#""store.quarantined":1"#), "{stdout}");

    // `cache verify` then reports a consistent store (the torn object
    // was already quarantined; the republished one is sound).
    let out = smlsc()
        .args(["cache", "verify"])
        .arg("--store")
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}
