//! End-to-end tests of the `smlsc` command-line driver.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn smlsc() -> Command {
    Command::new(env!("CARGO_BIN_EXE_smlsc"))
}

fn project_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-cli-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn build_and_rebuild_with_cached_bins() {
    let dir = project_dir("build");
    std::fs::write(
        dir.join("util.sml"),
        "structure Util = struct fun inc x = x + 1 end",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.sml"),
        "structure Main = struct val v = Util.inc 41 end",
    )
    .unwrap();

    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 recompiled"), "{stdout}");

    // Second build: cached bins satisfy cutoff.
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 recompiled, 2 reused"), "{stdout}");

    // Run prints per-unit export pids.
    let out = smlsc().arg("run").arg(&dir).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("main: export pid"), "{stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_reports_errors_with_unit_names() {
    let dir = project_dir("err");
    std::fs::write(
        dir.join("bad.sml"),
        r#"structure Bad = struct val x = 1 + "s" end"#,
    )
    .unwrap();
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("`bad`"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn build_surfaces_warnings() {
    let dir = project_dir("warn");
    std::fs::write(
        dir.join("w.sml"),
        "structure W = struct fun hd (x :: _) = x end",
    )
    .unwrap();
    let out = smlsc().arg("build").arg(&dir).output().unwrap();
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("not exhaustive"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn repl_evaluates_and_recovers_from_errors() {
    let mut child = smlsc()
        .arg("repl")
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    {
        let stdin = child.stdin.as_mut().unwrap();
        writeln!(stdin, "structure A = struct val x = 40 + 2 end;;").unwrap();
        writeln!(stdin, "structure Broken = struct val y = Nope.z end;;").unwrap();
        writeln!(stdin, "structure B = struct val y = A.x end;;").unwrap();
    }
    let out = child.wait_with_output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("structure A : {x : int}"), "{stdout}");
    assert!(stdout.contains("error:"), "{stdout}");
    assert!(stdout.contains("structure B : {y : int}"), "{stdout}");
}

#[test]
fn usage_on_bad_arguments() {
    let out = smlsc().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage"), "{stderr}");
}
