//! Crash-consistency harness: kill `smlsc` with a real `abort()` at
//! every registered durable-write crash point, then prove full
//! recovery.
//!
//! Each case runs the CLI as a subprocess with an injected
//! `<point>=crash(<stage>)` fault (see `smlsc_faults`), so the process
//! dies exactly as a power cut would: mid-stage, with tmp files,
//! half-renamed packs, or torn ledger lines on disk.  The recovery
//! property asserted for every point and stage:
//!
//! 1. the crashed run really aborted at the injected point (SIGABRT,
//!    marker on stderr);
//! 2. the next plain build succeeds with exit 0 — no manual cleanup;
//! 3. its artifacts are bit-identical to a never-crashed build of the
//!    same sources (pack entry set and body bytes);
//! 4. `smlsc doctor --fix` then reports exit 0 and a follow-up audit
//!    is fully healthy — no debris survives.
//!
//! Workloads are seeded monorepo graphs at N ∈ {50, 200} from
//! `smlsc-workload`, written to disk as real `*.sml` trees.

use std::path::{Path, PathBuf};
use std::process::Command;

use smlsc::core::pack::PackReader;
use smlsc::core::BinFile;
use smlsc::workload::{Topology, Workload, WorkloadSpec};

fn smlsc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smlsc"));
    cmd.env_remove("SMLSC_STORE");
    cmd.env_remove("SMLSC_FAULTS");
    cmd
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-crashrec-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Writes a seeded monorepo workload to `dir` as one `*.sml` file per
/// module.  The same `(units, seed)` always produces byte-identical
/// sources, so two directories seeded alike are buildable references
/// for each other.
fn seed_project(dir: &Path, units: usize) {
    let w = Workload::new(WorkloadSpec::with_topology(Topology::Monorepo {
        units,
        seed: 7,
    }));
    for f in w.project().files() {
        std::fs::write(dir.join(format!("{}.sml", f.name)), f.read_text().unwrap()).unwrap();
    }
}

fn build(dir: &Path, store: Option<&Path>, faults: Option<&str>) -> std::process::Output {
    let mut cmd = smlsc();
    cmd.arg("build").arg("--no-daemon");
    if let Some(s) = store {
        cmd.arg("--store").arg(s);
    }
    if let Some(f) = faults {
        cmd.arg("--inject-faults").arg(f);
    }
    cmd.arg(dir);
    cmd.output().unwrap()
}

/// The durable artifact state of a bin dir: every pack entry's identity
/// and its canonical body bytes, sorted by unit name.  Bodies are
/// compared in the store's canonical mtime-zero form — identical
/// compiles are bit-identical once the per-compile virtual mtime is
/// zeroed, which is exactly the normalization `store.publish` uses.
type Fingerprint = Vec<(String, String, String, Vec<u8>)>;

fn fingerprint(bin_dir: &Path) -> Fingerprint {
    let pack = PackReader::open(&bin_dir.join("bins.pack"))
        .expect("pack readable")
        .expect("pack present after a successful build");
    let mut rows: Fingerprint = pack
        .entries()
        .iter()
        .map(|e| {
            // `read_body` verifies the digest before returning bytes,
            // so a torn pack fails loudly here rather than producing a
            // bogus "match".
            let body = pack
                .read_body(e.offset, e.len, e.digest)
                .unwrap_or_else(|err| panic!("body of {} unreadable: {err}", e.name));
            let mut bin = BinFile::from_bytes(&body)
                .unwrap_or_else(|err| panic!("body of {} unparseable: {err}", e.name));
            bin.mtime = 0;
            (
                e.name.to_string(),
                format!("{:?}", e.source_pid),
                format!("{:?}", e.export_pid),
                bin.to_bytes(),
            )
        })
        .collect();
    rows.sort();
    rows
}

fn doctor(dir: &Path, store: Option<&Path>, fix: bool) -> std::process::Output {
    let mut cmd = smlsc();
    cmd.arg("doctor");
    if fix {
        cmd.arg("--fix");
    }
    if let Some(s) = store {
        cmd.arg("--store").arg(s);
    }
    cmd.arg(dir);
    cmd.output().unwrap()
}

/// The crash-recovery property for one `(point, stage)` crash rule.
fn crash_then_recover(
    tag: &str,
    units: usize,
    rule: &str,
    with_store: bool,
    reference: &Fingerprint,
) {
    let proj = temp(tag);
    seed_project(&proj, units);
    let store_dir = proj.join("_store");
    let store = with_store.then_some(store_dir.as_path());

    // The crashed run: the injected fault aborts the process at the
    // exact durable-write stage named by the rule.
    let out = build(&proj, store, Some(rule));
    assert!(
        out.status.code().is_none(),
        "{rule}: expected an abort (killed by signal), got {:?}\nstderr: {}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("injected fault: crash at"),
        "{rule}: abort must come from the injected crash point, stderr: {stderr}"
    );

    // Recovery: a plain build on the crashed state succeeds and lands
    // in exactly the state a never-crashed build produces.
    let out = build(&proj, store, None);
    assert!(
        out.status.success(),
        "{rule}: recovery build failed: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains(&format!("built {units} unit(s)")),
        "{rule}: recovery build summary wrong: {stdout}"
    );
    let recovered = fingerprint(&proj.join(".smlsc-bins"));
    assert_eq!(
        &recovered, reference,
        "{rule}: recovered artifacts differ from a clean build"
    );

    // Self-healing: `doctor --fix` clears any crash debris (tmp litter,
    // torn ledger tail) and a follow-up audit is fully healthy.
    let out = doctor(&proj, store, true);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{rule}: doctor --fix failed: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    let out = doctor(&proj, store, false);
    assert_eq!(
        out.status.code(),
        Some(0),
        "{rule}: post-fix audit not healthy: {}",
        String::from_utf8_lossy(&out.stdout)
    );

    std::fs::remove_dir_all(&proj).ok();
}

/// Builds the clean reference once per `(units, with_store)` shape.
fn reference(tag: &str, units: usize, with_store: bool) -> Fingerprint {
    let dir = temp(tag);
    seed_project(&dir, units);
    let store_dir = dir.join("_store");
    let store = with_store.then_some(store_dir.as_path());
    let out = build(&dir, store, None);
    assert!(out.status.success(), "reference build failed: {out:?}");
    let fp = fingerprint(&dir.join(".smlsc-bins"));
    std::fs::remove_dir_all(&dir).ok();
    fp
}

/// Every stage of every local durable-write point, N = 50.
#[test]
fn crash_at_every_local_durable_write_stage_recovers_n50() {
    let reference_fp = reference("ref-local-50", 50, false);
    for (i, rule) in [
        "stamp.save=crash(begin)",
        "stamp.save=crash(staged)",
        "stamp.save=crash(renamed)",
        "pack.save=crash(begin)",
        "pack.save=crash(staged)",
        "pack.save=crash(renamed)",
        "deps.save=crash(begin)",
        "deps.save=crash(staged)",
        "deps.save=crash(renamed)",
        "ledger.append=crash(begin)",
        "ledger.append=crash(mid)",
    ]
    .iter()
    .enumerate()
    {
        crash_then_recover(&format!("local50-{i}"), 50, rule, false, &reference_fp);
    }
}

/// Every stage of the store publication point, N = 50.
#[test]
fn crash_at_every_store_publish_stage_recovers_n50() {
    let reference_fp = reference("ref-store-50", 50, true);
    for (i, rule) in [
        "store.publish=crash(begin)",
        "store.publish=crash(staged)",
        "store.publish=crash(renamed)",
    ]
    .iter()
    .enumerate()
    {
        crash_then_recover(&format!("store50-{i}"), 50, rule, true, &reference_fp);
    }
}

/// One representative stage per point at monorepo scale, N = 200.
#[test]
fn crash_recovery_holds_at_monorepo_scale_n200() {
    let reference_fp = reference("ref-local-200", 200, false);
    for (i, rule) in [
        "stamp.save=crash(staged)",
        "pack.save=crash(renamed)",
        "deps.save=crash(staged)",
        "ledger.append=crash(mid)",
    ]
    .iter()
    .enumerate()
    {
        crash_then_recover(&format!("local200-{i}"), 200, rule, false, &reference_fp);
    }
    let store_fp = reference("ref-store-200", 200, true);
    crash_then_recover(
        "store200",
        200,
        "store.publish=crash(staged)",
        true,
        &store_fp,
    );
}

/// A daemon killed while writing its lockfile leaves exactly the
/// stale-lock debris the next acquire and `smlsc doctor` must clear.
#[test]
fn crash_in_daemon_lock_leaves_recoverable_debris() {
    let proj = temp("daemonlock");
    seed_project(&proj, 10);

    let out = smlsc()
        .args(["daemon", "run", "--inject-faults", "daemon.lock=crash"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(
        out.status.code().is_none(),
        "daemon must abort at the lock crash point: {out:?}"
    );
    let lock = proj.join(".smlsc-bins/daemon.lock");
    assert!(lock.exists(), "the crash leaves a stale lockfile behind");

    // `doctor` sees the stale lock; `--fix` clears it; the audit is
    // then clean.
    let out = doctor(&proj, None, false);
    assert_eq!(out.status.code(), Some(4), "stale lock is a finding");
    let out = doctor(&proj, None, true);
    assert_eq!(
        out.status.code(),
        Some(0),
        "doctor --fix clears the stale lock: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(!lock.exists(), "stale lockfile removed by --fix");

    // And the daemon itself self-heals: a fresh start takes over the
    // same project without manual intervention even when the debris is
    // still there.
    std::fs::write(&lock, format!("{}\n", u32::MAX)).unwrap();
    let out = smlsc()
        .args(["daemon", "start"])
        .arg(&proj)
        .env("SMLSC_DAEMON_POLL_MS", "20")
        .output()
        .unwrap();
    assert!(out.status.success(), "start over stale debris: {out:?}");
    let out = smlsc()
        .args(["daemon", "stop"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "stop: {out:?}");

    std::fs::remove_dir_all(&proj).ok();
}
