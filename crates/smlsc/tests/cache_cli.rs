//! End-to-end tests of the shared artifact store through the `smlsc`
//! CLI: `--store`/`SMLSC_STORE`, `--bin-dir`, cross-process sharing,
//! and the `smlsc cache` subcommands.

use std::path::{Path, PathBuf};
use std::process::Command;

fn smlsc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smlsc"));
    // Keep the ambient environment from leaking a store into tests
    // that exercise the explicit flag.
    cmd.env_remove("SMLSC_STORE");
    cmd
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-cachecli-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_project(dir: &Path) {
    std::fs::write(
        dir.join("util.sml"),
        "structure Util = struct fun inc x = x + 1 end",
    )
    .unwrap();
    std::fs::write(
        dir.join("main.sml"),
        "structure Main = struct val v = Util.inc 41 end",
    )
    .unwrap();
}

#[test]
fn second_cold_session_is_all_store_hits() {
    let store = temp("hits-store");
    let proj = temp("hits-proj");
    write_project(&proj);

    let out = smlsc()
        .args(["build", "--store"])
        .arg(&store)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2 recompiled, 0 reused, 0 from store"),
        "{stdout}"
    );

    // Wipe the project's bins: the next session is cold, but the store
    // is warm — zero compiles, and the stats JSON proves it.
    std::fs::remove_dir_all(proj.join(".smlsc-bins")).unwrap();
    let out = smlsc()
        .args(["build", "--stats", "--store"])
        .arg(&store)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 recompiled, 0 reused, 2 from store"),
        "{stdout}"
    );
    let json = stdout.lines().find(|l| l.starts_with('{')).unwrap();
    assert!(json.contains(r#""store.hit":2"#), "{json}");
    assert!(!json.contains(r#""irm.units_compiled""#), "{json}");

    // `run` works off the rehydrated bins too.
    let out = smlsc()
        .args(["run", "--store"])
        .arg(&store)
        .arg(&proj)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("main: export pid"), "{stdout}");

    std::fs::remove_dir_all(&store).ok();
    std::fs::remove_dir_all(&proj).ok();
}

#[test]
fn store_env_var_is_the_default() {
    let store = temp("env-store");
    let proj = temp("env-proj");
    write_project(&proj);

    let out = smlsc()
        .arg("build")
        .arg(&proj)
        .env("SMLSC_STORE", &store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("2 recompiled, 0 reused, 0 from store"),
        "{stdout}"
    );

    // Cold session via the env var alone: all store hits.
    std::fs::remove_dir_all(proj.join(".smlsc-bins")).unwrap();
    let out = smlsc()
        .arg("build")
        .arg(&proj)
        .env("SMLSC_STORE", &store)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 recompiled, 0 reused, 2 from store"),
        "{stdout}"
    );

    // `cache stats` honours the same env var.
    let out = smlsc()
        .args(["cache", "stats"])
        .env("SMLSC_STORE", &store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 object(s)"), "{stdout}");

    std::fs::remove_dir_all(&store).ok();
    std::fs::remove_dir_all(&proj).ok();
}

#[test]
fn bin_dir_flag_relocates_the_bin_cache() {
    let proj = temp("bindir-proj");
    let bins = temp("bindir-bins");
    write_project(&proj);

    let out = smlsc()
        .args(["build", "--bin-dir"])
        .arg(&bins)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(bins.join("bins.pack").is_file());
    assert!(!proj.join(".smlsc-bins").exists());

    // The relocated cache satisfies the next build.
    let out = smlsc()
        .args(["build", "--bin-dir"])
        .arg(&bins)
        .arg(&proj)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 recompiled, 2 reused"), "{stdout}");

    std::fs::remove_dir_all(&proj).ok();
    std::fs::remove_dir_all(&bins).ok();
}

#[test]
fn corrupt_bin_degrades_to_recompile_with_a_warning() {
    // A stray legacy `<unit>.bin` that is garbage: warned about,
    // skipped, and the unit recompiles while the archived one reuses.
    let proj = temp("degrade-proj");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    std::fs::write(proj.join(".smlsc-bins").join("util.bin"), b"garbage").unwrap();
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ignoring corrupt bin"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("1 recompiled, 1 reused"), "{stdout}");

    std::fs::remove_dir_all(&proj).ok();
}

#[test]
fn corrupt_pack_archive_degrades_to_full_recompile_with_a_warning() {
    let proj = temp("degrade-pack-proj");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    assert!(proj.join(".smlsc-bins").join("bins.pack").is_file());

    // Smash the whole archive (bad magic): both units recompile, the
    // build still succeeds.
    std::fs::write(proj.join(".smlsc-bins").join("bins.pack"), b"garbage").unwrap();
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ignoring corrupt bin"), "{stderr}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 recompiled, 0 reused"), "{stdout}");

    std::fs::remove_dir_all(&proj).ok();
}

#[test]
fn concurrent_cli_builds_share_one_store() {
    let store = temp("pair-store");
    let proj_a = temp("pair-a");
    let proj_b = temp("pair-b");
    write_project(&proj_a);
    write_project(&proj_b);

    // Two simultaneous processes, same store, same sources: whatever
    // interleaving the scheduler picks, both succeed and the store ends
    // up with exactly one valid object per unit.
    let mut child_a = smlsc()
        .args(["build", "--store"])
        .arg(&store)
        .arg(&proj_a)
        .spawn()
        .unwrap();
    let mut child_b = smlsc()
        .args(["build", "--store"])
        .arg(&store)
        .arg(&proj_b)
        .spawn()
        .unwrap();
    assert!(child_a.wait().unwrap().success());
    assert!(child_b.wait().unwrap().success());

    let out = smlsc()
        .args(["cache", "verify", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("checked 2 object(s), 0 corrupt"),
        "{stdout}"
    );

    // A third project compiles nothing: both units come from the store.
    let proj_c = temp("pair-c");
    write_project(&proj_c);
    let out = smlsc()
        .args(["build", "--store"])
        .arg(&store)
        .arg(&proj_c)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("0 recompiled, 0 reused, 2 from store"),
        "{stdout}"
    );

    for d in [&store, &proj_a, &proj_b, &proj_c] {
        std::fs::remove_dir_all(d).ok();
    }
}

#[test]
fn cache_subcommands_report_gc_and_clear() {
    let store = temp("ops-store");
    let proj = temp("ops-proj");
    write_project(&proj);
    let out = smlsc()
        .args(["build", "--store"])
        .arg(&store)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    let out = smlsc()
        .args(["cache", "stats", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("2 object(s)"), "{stdout}");

    // An unbounded gc evicts nothing; a zero-byte cap evicts all.
    let out = smlsc()
        .args(["cache", "gc", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evicted 0"), "{stdout}");
    let out = smlsc()
        .args(["cache", "gc", "--max-bytes", "0", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("evicted 2"), "{stdout}");

    // Rebuild repopulates; clear empties.
    std::fs::remove_dir_all(proj.join(".smlsc-bins")).unwrap();
    let out = smlsc()
        .args(["build", "--store"])
        .arg(&store)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = smlsc()
        .args(["cache", "clear", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cleared 2 object(s)"), "{stdout}");

    // Usage errors: no store, unknown op.
    let out = smlsc().args(["cache", "stats"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = smlsc()
        .args(["cache", "frobnicate", "--store"])
        .arg(&store)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");

    std::fs::remove_dir_all(&store).ok();
    std::fs::remove_dir_all(&proj).ok();
}
