//! End-to-end tests of the observability layer through the `smlsc`
//! CLI: the persistent build ledger (`builds.jsonl`), `smlsc profile`,
//! `smlsc history`, `--report-json`, and torn-ledger fault injection.

use std::path::{Path, PathBuf};
use std::process::Command;

fn smlsc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smlsc"));
    cmd.env_remove("SMLSC_STORE");
    cmd.env_remove("SMLSC_FAULTS");
    cmd
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-profcli-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A three-deep chain, so the critical path is unambiguous.
fn write_project(dir: &Path) {
    std::fs::write(
        dir.join("a.sml"),
        "structure A = struct fun f x = x + 1 end",
    )
    .unwrap();
    std::fs::write(dir.join("b.sml"), "structure B = struct val y = A.f 41 end").unwrap();
    std::fs::write(dir.join("c.sml"), "structure C = struct val z = B.y end").unwrap();
}

fn ledger_lines(proj: &Path) -> Vec<String> {
    let text = std::fs::read_to_string(proj.join(".smlsc-bins/builds.jsonl")).unwrap_or_default();
    text.lines().map(str::to_string).collect()
}

fn field(line: &str, key: &str) -> Option<u64> {
    let at = line.find(&format!("\"{key}\":"))?;
    let rest = &line[at + key.len() + 3..];
    let end = rest.find([',', '}'])?;
    rest[..end].parse().ok()
}

#[test]
fn two_builds_append_two_records_and_the_second_compiles_nothing() {
    let proj = temp("two-builds");
    write_project(&proj);
    for _ in 0..2 {
        let out = smlsc().arg("build").arg(&proj).output().unwrap();
        assert!(out.status.success(), "{out:?}");
    }
    let lines = ledger_lines(&proj);
    assert_eq!(lines.len(), 2, "one ledger record per build: {lines:?}");
    assert_eq!(field(&lines[0], "compiled"), Some(3), "{}", lines[0]);
    assert_eq!(field(&lines[1], "compiled"), Some(0), "{}", lines[1]);
    assert_eq!(field(&lines[1], "reused"), Some(3));
    assert_eq!(field(&lines[1], "exit_code"), Some(0));
    assert_eq!(field(&lines[1], "stamp_hits"), Some(3), "warm stamps hit");

    // `smlsc history` sees both builds and the warm second build.
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("history: 2 build(s)"), "{stdout}");
    assert!(
        stdout.contains("last build: 0 compiled, 3 reused"),
        "{stdout}"
    );
}

#[test]
fn profile_reports_the_wavefront_schedulers_critical_path() {
    let proj = temp("profile-cp");
    write_project(&proj);
    let out = smlsc()
        .args(["profile", "--jobs", "4", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    // a -> b -> c: the profiler's DAG walk and the parallel scheduler's
    // `irm.critical_path` counter must agree.
    assert!(stdout.contains("critical path 3 unit(s)"), "{stdout}");
    assert!(stdout.contains(r#""irm.critical_path":3"#), "{stdout}");
    assert!(stdout.contains("critical chain"), "{stdout}");
    // The ledger record mirrors the same number.
    let lines = ledger_lines(&proj);
    assert_eq!(field(&lines[0], "critical_path"), Some(3));
    assert_eq!(field(&lines[0], "jobs"), Some(4));
}

#[test]
fn report_json_holds_record_decisions_and_stats() {
    let proj = temp("report-json");
    write_project(&proj);
    let report = proj.join("report.json");
    let out = smlsc()
        .args(["build", "--report-json"])
        .arg(&report)
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&report).unwrap();
    assert!(text.starts_with(r#"{"record":{"version":1"#), "{text}");
    assert!(text.contains(r#""decisions":["#), "{text}");
    assert!(text.contains(r#""kind":"new_unit""#), "{text}");
    assert!(text.contains(r#""counters":"#), "{text}");
    assert!(text.ends_with('}'), "{text}");
}

#[test]
fn history_is_friendly_and_exits_zero_on_an_empty_ledger() {
    let proj = temp("empty-ledger");
    write_project(&proj);
    // No builds at all: no bin dir, no ledger file.
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("history: no builds recorded in"),
        "{stdout}"
    );

    // A ledger that exists but is empty (e.g. just rotated away every
    // record) gets the same friendly answer, not a crash or exit 1.
    std::fs::create_dir_all(proj.join(".smlsc-bins")).unwrap();
    std::fs::write(proj.join(".smlsc-bins/builds.jsonl"), "").unwrap();
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("history: no builds recorded in"),
        "{stdout}"
    );
}

/// One warm (zero-compile) ledger record with the given unit count and
/// wall time, for fabricating scaling histories.
fn warm_record(id: u64, units: u64, wall_us: u64) -> String {
    format!(
        r#"{{"version":1,"build_id":{id},"timestamp_ms":{id},"strategy":"cutoff","jobs":1,"host_parallelism":4,"wall_us":{wall_us},"parse_us":0,"elaborate_us":0,"hash_us":0,"dehydrate_us":0,"rehydrate_us":0,"compiled":0,"reused":{units},"cutoff":0,"store_hits":0,"skipped":0,"failed":0,"stamp_hits":{units},"stamp_misses":0,"store_misses":0,"deps_cache_hits":{units},"deps_cache_misses":0,"source_reads":0,"critical_path":0,"exit_code":0,"daemon":0}}"#
    )
}

#[test]
fn history_flags_superlinear_warm_scaling() {
    let proj = temp("history-scaling");
    write_project(&proj);
    std::fs::create_dir_all(proj.join(".smlsc-bins")).unwrap();
    // 10x the units costing 45x the time: the superlinear warm path.
    let bad = [
        warm_record(1, 5000, 52_000),
        warm_record(2, 50_000, 2_356_000),
    ]
    .join("\n");
    std::fs::write(proj.join(".smlsc-bins/builds.jsonl"), format!("{bad}\n")).unwrap();
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("scaling regression"), "{stdout}");
    assert!(stdout.contains("50000 units"), "{stdout}");

    // A near-linear history (10x units, ~10x time) raises no flag.
    let good = [
        warm_record(1, 5000, 52_000),
        warm_record(2, 50_000, 540_000),
    ]
    .join("\n");
    std::fs::write(proj.join(".smlsc-bins/builds.jsonl"), format!("{good}\n")).unwrap();
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(!stdout.contains("scaling regression"), "{stdout}");
}

#[test]
fn profile_exits_zero_when_the_ledger_has_no_cost_history() {
    let proj = temp("profile-empty-ledger");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    // Drop the ledger (as a rotation that kept zero records would):
    // a warm profile now has no per-compile cost hint to price avoided
    // compiles with, and must degrade gracefully.
    std::fs::remove_file(proj.join(".smlsc-bins/builds.jsonl")).unwrap();
    let out = smlsc().arg("profile").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("no per-compile cost measured yet"),
        "{stdout}"
    );
}

#[test]
fn torn_ledger_append_keeps_the_build_green_and_the_prefix_valid() {
    let proj = temp("torn-ledger");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    // A crash mid-append (torn fault): the build itself still exits 0.
    let out = smlsc()
        .args(["build", "--inject-faults", "ledger.append=torn"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "torn ledger must not fail the build: {out:?}"
    );

    // The valid prefix (build 1) survives; the torn tail is discarded
    // by readers and healed by the next append.
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("history: 1 build(s)"), "{stdout}");

    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = smlsc().arg("history").arg(&proj).output().unwrap();
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("history: 2 build(s)"), "{stdout}");

    // An IO failure on append is only a warning: the build stays green.
    let out = smlsc()
        .args(["build", "--inject-faults", "ledger.append=io"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("warning: could not append"), "{stderr}");
}
