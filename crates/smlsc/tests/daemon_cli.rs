//! End-to-end tests of the build daemon through the `smlsc` CLI:
//! `daemon start/stop/status`, transparent dispatch of plain builds to
//! the socket, watcher-driven invalidation, and the fallback contract
//! (a dead or faulted daemon must never fail a build).

use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Duration;

fn smlsc() -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_smlsc"));
    cmd.env_remove("SMLSC_STORE");
    cmd.env_remove("SMLSC_FAULTS");
    cmd
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-daemoncli-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_project(dir: &Path) {
    std::fs::write(
        dir.join("a.sml"),
        "structure A = struct fun f x = x + 1 end",
    )
    .unwrap();
    std::fs::write(dir.join("b.sml"), "structure B = struct val y = A.f 41 end").unwrap();
}

/// The `--stats` JSON line: the last stdout line starting with `{`.
fn stats_line(stdout: &str) -> String {
    stdout
        .lines()
        .rfind(|l| l.starts_with('{'))
        .unwrap_or_default()
        .to_string()
}

/// Stops the daemon on drop, so a failed assertion never leaks a
/// detached daemon process.
struct DaemonGuard(PathBuf);

impl DaemonGuard {
    fn start(proj: &Path, extra: &[&str]) -> DaemonGuard {
        let out = smlsc()
            .arg("daemon")
            .arg("start")
            .args(extra)
            .arg(proj)
            // A fast watcher poll, so edit tests settle in milliseconds.
            .env("SMLSC_DAEMON_POLL_MS", "20")
            .output()
            .unwrap();
        assert!(out.status.success(), "daemon start failed: {out:?}");
        DaemonGuard(proj.to_path_buf())
    }

    fn stop(&self) -> std::process::Output {
        smlsc()
            .arg("daemon")
            .arg("stop")
            .arg(&self.0)
            .output()
            .unwrap()
    }
}

impl Drop for DaemonGuard {
    fn drop(&mut self) {
        self.stop();
    }
}

/// The daemon's pid, read from its lockfile.
fn daemon_pid(proj: &Path) -> u32 {
    std::fs::read_to_string(proj.join(".smlsc-bins/daemon.lock"))
        .unwrap()
        .trim()
        .parse()
        .unwrap()
}

#[test]
fn noop_build_over_the_socket_rereads_nothing() {
    let proj = temp("noop");
    write_project(&proj);
    // Warm the caches with a plain in-process build.
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let daemon = DaemonGuard::start(&proj, &[]);
    for round in 0..2 {
        let out = smlsc()
            .args(["build", "--stats"])
            .arg(&proj)
            .output()
            .unwrap();
        assert!(out.status.success(), "{out:?}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(
            stdout.contains("built 2 unit(s) [cutoff]: 0 recompiled, 2 reused"),
            "round {round}: {stdout}"
        );
        // The daemon never printed the in-process cache-load banner:
        // the request was really served over the socket.
        assert!(!stdout.contains("loaded"), "round {round}: {stdout}");
        let stats = stats_line(&stdout);
        // The telemetry that proves the resident session answered from
        // memory: every rebuild decision was a stamp hit, no source was
        // read, and the pack index was not reloaded (it was loaded once
        // at daemon open, outside this request).
        assert!(
            stats.contains(r#""stamp.hits":2"#),
            "round {round}: {stats}"
        );
        assert!(
            !stats.contains(r#""source.reads""#),
            "round {round}: {stats}"
        );
        assert!(
            !stats.contains(r#""bin.index_only""#),
            "round {round}: {stats}"
        );
        assert!(
            !stats.contains(r#""irm.units_compiled""#),
            "round {round}: {stats}"
        );
    }

    // Both socket builds are in the status counters and ledger-tagged.
    let out = smlsc()
        .arg("daemon")
        .arg("status")
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(status.contains(r#""daemon.requests":"#), "{status}");
    let ledger = std::fs::read_to_string(proj.join(".smlsc-bins/builds.jsonl")).unwrap();
    let daemon_records = ledger
        .lines()
        .filter(|l| l.contains(r#""daemon":1"#))
        .count();
    assert_eq!(daemon_records, 1, "first socket build appends one daemon-tagged record; the no-change repeat is snapshot-served: {ledger}");

    let out = daemon.stop();
    assert!(out.status.success(), "{out:?}");
    assert!(
        !proj.join(".smlsc-bins/daemon.sock").exists(),
        "stop releases the socket"
    );
    assert!(
        !proj.join(".smlsc-bins/daemon.lock").exists(),
        "stop releases the lock"
    );
}

#[test]
fn watched_leaf_edit_recompiles_exactly_one_unit() {
    let proj = temp("watch");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let _daemon = DaemonGuard::start(&proj, &[]);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    // Edit the leaf; the watcher (20ms poll, two settled ticks) feeds
    // the delta into the resident session.
    std::fs::write(
        proj.join("a.sml"),
        "structure A = struct fun f x = x + 2 end",
    )
    .unwrap();
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut status = String::new();
    while std::time::Instant::now() < deadline {
        let out = smlsc()
            .arg("daemon")
            .arg("status")
            .arg(&proj)
            .output()
            .unwrap();
        status = String::from_utf8_lossy(&out.stdout).to_string();
        if status.contains(r#""daemon.invalidations":1"#) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(
        status.contains(r#""daemon.invalidations":1"#),
        "watcher applied the one-leaf delta: {status}"
    );

    let out = smlsc()
        .args(["build", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("built 2 unit(s) [cutoff]: 1 recompiled, 1 reused"),
        "{stdout}"
    );
    let stats = stats_line(&stdout);
    // Exactly the edited source was read; the untouched unit's rebuild
    // decision came from its stamp, and the cutoff kept it unbuilt.
    assert!(stats.contains(r#""source.reads":1"#), "{stats}");
    assert!(stats.contains(r#""stamp.hits":1"#), "{stats}");
    assert!(stats.contains(r#""irm.cutoff_hits":1"#), "{stats}");
}

#[test]
fn killed_daemon_is_restarted_once_and_serves_the_build() {
    let proj = temp("killed");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let daemon = DaemonGuard::start(&proj, &[]);
    let pid = daemon_pid(&proj);
    // SIGKILL: no cleanup runs, so the socket and lockfile both linger
    // — exactly the state a client sees when a daemon dies mid-request.
    let killed = Command::new("kill")
        .args(["-9", &pid.to_string()])
        .status()
        .unwrap();
    assert!(killed.success());
    assert!(proj.join(".smlsc-bins/daemon.sock").exists());

    // The dispatch path finds the stale socket, sees the lockfile owner
    // is dead, restarts the daemon once, and the retried request is
    // served over the new socket — no in-process cache-load banner.
    let out = smlsc()
        .args(["build", "--stats"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "restarted build must succeed: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("built 2 unit(s) [cutoff]: 0 recompiled, 2 reused"),
        "{stdout}"
    );
    assert!(
        !stdout.contains("loaded"),
        "served by the restarted daemon, not in-process: {stdout}"
    );
    let new_pid = daemon_pid(&proj);
    assert_ne!(new_pid, pid, "restart wrote a fresh lockfile");

    let out = daemon.stop();
    assert!(out.status.success(), "{out:?}");
    assert!(
        !proj.join(".smlsc-bins/daemon.sock").exists(),
        "stop reaches the restarted daemon"
    );
}

#[test]
fn stale_socket_without_dir_context_still_falls_back_in_process() {
    // Same stale-socket debris, but dispatched with `--no-daemon`:
    // the in-process path must still work with the corpse in place.
    let proj = temp("stale-fallback");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    std::fs::write(proj.join(".smlsc-bins/daemon.sock"), b"stale").unwrap();
    std::fs::write(
        proj.join(".smlsc-bins/daemon.lock"),
        format!("{}\n", u32::MAX),
    )
    .unwrap();
    let out = smlsc()
        .args(["build", "--no-daemon"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("loaded 2 cached bin(s)"), "{stdout}");
}

#[test]
fn accept_fault_drops_the_connection_and_the_client_falls_back() {
    let proj = temp("accept-fault");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    // The first accepted connection is dropped before its first frame
    // (`*1`: one fire, so the guard's later `stop` still gets through).
    let _daemon = DaemonGuard::start(&proj, &["--inject-faults", "daemon.accept=io*1"]);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "fallback build must succeed: {out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("loaded 2 cached bin(s)"),
        "served in-process after the drop: {stdout}"
    );
    assert!(stdout.contains("0 recompiled, 2 reused"), "{stdout}");
}

#[test]
fn stop_is_idempotent_and_status_reports_a_missing_daemon() {
    let proj = temp("verbs");
    write_project(&proj);
    let out = smlsc()
        .arg("daemon")
        .arg("stop")
        .arg(&proj)
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "stop without a daemon exits 0: {out:?}"
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("daemon not running"), "{stdout}");

    let out = smlsc()
        .arg("daemon")
        .arg("status")
        .arg(&proj)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");

    let daemon = DaemonGuard::start(&proj, &[]);
    let out = smlsc()
        .arg("daemon")
        .arg("status")
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let status = String::from_utf8_lossy(&out.stdout);
    assert!(status.contains(r#""protocol":2"#), "{status}");
    assert!(status.contains(r#""units":2"#), "{status}");
    // Watcher health and the generation pair are part of status.
    assert!(status.contains(r#""watch_healthy":true"#), "{status}");
    assert!(status.contains(r#""generation":"#), "{status}");
    assert!(status.contains(r#""last_build_generation":"#), "{status}");

    let out = daemon.stop();
    assert!(out.status.success(), "{out:?}");
    let out = daemon.stop();
    assert!(out.status.success(), "second stop still exits 0: {out:?}");
}

#[test]
fn no_daemon_flag_builds_in_process_despite_a_live_daemon() {
    let proj = temp("optout");
    write_project(&proj);
    let out = smlsc().arg("build").arg(&proj).output().unwrap();
    assert!(out.status.success(), "{out:?}");

    let _daemon = DaemonGuard::start(&proj, &[]);
    let out = smlsc()
        .args(["build", "--no-daemon"])
        .arg(&proj)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("loaded 2 cached bin(s)"),
        "--no-daemon stays in-process: {stdout}"
    );
}
