//! Minimal read-only memory mapping for the pack readers.
//!
//! `smlsc-core` forbids `unsafe`, so the two `mmap(2)` calls the warm
//! path needs live in this leaf crate behind a safe API.  A [`Mapping`]
//! is an immutable, page-cache-resident view of a file: opening a
//! 100k-unit `bins.pack` touches no heap for the raw index bytes, and a
//! second cold process reading the same pack hits the page cache
//! instead of issuing read syscalls.
//!
//! Mapping is strictly an optimization with a mandatory fallback:
//! [`Mapping::map`] returns `None` on unsupported platforms, for empty
//! files, when the syscall fails, or when `SMLSC_NO_MMAP` is set (the
//! escape hatch CI uses to prove the `pread` path stays equivalent).
//! Callers must treat `None` as "read the file the ordinary way" —
//! never as an error.
//!
//! Safety argument for the `&[u8]` view: packs are published with
//! tmp + fsync + `rename(2)` (see `smlsc-core`'s `fsutil`), never
//! truncated or rewritten in place, so the mapped inode's length is
//! stable for the mapping's lifetime; `MAP_PRIVATE` additionally keeps
//! any concurrent replacement (a new inode renamed over the path) from
//! changing the bytes this process already mapped.

#![warn(missing_docs)]

/// A read-only memory mapping of an entire file.
#[derive(Debug)]
pub struct Mapping {
    #[cfg(all(unix, target_pointer_width = "64"))]
    addr: *mut core::ffi::c_void,
    len: usize,
}

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use core::ffi::{c_int, c_void};

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;

    // std already links libc on every unix target; declaring the two
    // symbols we need avoids depending on the `libc` crate.
    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl Mapping {
    /// Maps the whole of `file` (which must be `len` bytes long)
    /// read-only.  `None` when mapping is unavailable or fails for any
    /// reason — including zero-length files and the `SMLSC_NO_MMAP`
    /// escape hatch — so callers always keep a read/`pread` fallback.
    #[cfg(all(unix, target_pointer_width = "64"))]
    pub fn map(file: &std::fs::File, len: u64) -> Option<Mapping> {
        use std::os::unix::io::AsRawFd;
        let len = usize::try_from(len).ok()?;
        if len == 0 || std::env::var_os("SMLSC_NO_MMAP").is_some() {
            return None;
        }
        let addr = unsafe {
            sys::mmap(
                core::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if addr as isize == -1 || addr.is_null() {
            return None;
        }
        Some(Mapping { addr, len })
    }

    /// Fallback for platforms without the mapping path.
    #[cfg(not(all(unix, target_pointer_width = "64")))]
    pub fn map(_file: &std::fs::File, _len: u64) -> Option<Mapping> {
        None
    }

    /// The mapped bytes.
    pub fn bytes(&self) -> &[u8] {
        #[cfg(all(unix, target_pointer_width = "64"))]
        // SAFETY: `addr` is a live PROT_READ, MAP_PRIVATE mapping of
        // `len` bytes (checked against MAP_FAILED at creation), unmapped
        // only by Drop; the file behind it is rename-published and never
        // truncated in place, so every byte stays readable.
        unsafe {
            core::slice::from_raw_parts(self.addr as *const u8, self.len)
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        // Unreachable: `map` never constructs a Mapping here.
        &[]
    }

    /// The mapping's length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the mapping is empty (never constructed in practice).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(all(unix, target_pointer_width = "64"))]
impl Drop for Mapping {
    fn drop(&mut self) {
        // SAFETY: `addr`/`len` describe exactly the mapping created in
        // `map`; after this the struct is gone, so no dangling view.
        unsafe {
            sys::munmap(self.addr, self.len);
        }
    }
}

// SAFETY: the mapping is immutable (PROT_READ) for its whole lifetime,
// so sharing the view across threads is no different from sharing any
// `&[u8]`.
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Send for Mapping {}
#[cfg(all(unix, target_pointer_width = "64"))]
unsafe impl Sync for Mapping {}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!(
            "smlsc-mmap-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    #[test]
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn maps_whole_file_read_only() {
        let path = tmp("roundtrip");
        std::fs::write(&path, b"hello, mapping").unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let len = f.metadata().unwrap().len();
        let m = Mapping::map(&f, len).expect("mmap works on 64-bit unix");
        assert_eq!(m.bytes(), b"hello, mapping");
        assert_eq!(m.len(), 14);
        assert!(!m.is_empty());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn empty_files_fall_back() {
        let path = tmp("empty");
        std::fs::write(&path, b"").unwrap();
        let f = std::fs::File::open(&path).unwrap();
        assert!(Mapping::map(&f, 0).is_none());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    #[cfg(all(unix, target_pointer_width = "64"))]
    fn mapping_survives_a_rename_replacement() {
        // The publish discipline: writers rename a new inode over the
        // path.  An existing mapping must keep seeing the old bytes.
        let path = tmp("rename");
        std::fs::write(&path, b"old-bytes").unwrap();
        let f = std::fs::File::open(&path).unwrap();
        let m = Mapping::map(&f, 9).unwrap();
        let staged = tmp("rename-staged");
        std::fs::write(&staged, b"new-bytes").unwrap();
        std::fs::rename(&staged, &path).unwrap();
        assert_eq!(m.bytes(), b"old-bytes");
        std::fs::remove_file(&path).ok();
    }
}
