//! The IRM ↔ artifact-store integration: cold sessions rehydrating from
//! a warm shared store, publish-back, semantic rejection, and corrupt
//! objects degrading to plain recompiles.

use std::path::PathBuf;
use std::sync::Arc;

use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::store::Store;
use smlsc_ids::Pid;

fn temp_store(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("smlsc-store-{name}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn chain_project() -> Project {
    let mut p = Project::new();
    p.add("a", "structure A = struct fun f x = x + 1 end");
    p.add("b", "structure B = struct val y = A.f 10 end");
    p.add("c", "structure C = struct val z = B.y + A.f 1 end");
    p.add("d", "structure D = struct val w = C.z * 2 end");
    p
}

fn export_pids(irm: &Irm) -> Vec<(String, Pid)> {
    let mut pids: Vec<(String, Pid)> = ["a", "b", "c", "d"]
        .iter()
        .map(|n| (n.to_string(), irm.bin(n).unwrap().unit.export_pid))
        .collect();
    pids.sort();
    pids
}

#[test]
fn cold_session_rebuild_is_all_store_hits_with_identical_pids() {
    let root = temp_store("cold");
    let store = Arc::new(Store::open(&root).unwrap());
    let p = chain_project();

    // Warm the store: a fresh session compiles everything and publishes.
    let mut warm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = warm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 4);
    assert!(report.store_hits.is_empty());
    assert_eq!(store.stats().unwrap().objects, 4);
    let warm_pids = export_pids(&warm);

    // A cold session (no bins at all) over the same project: every unit
    // is served from the store, zero compiles.
    let mut cold = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = cold.build(&p).unwrap();
    assert!(
        report.recompiled.is_empty(),
        "expected zero compiles, got {:?}",
        report.recompiled
    );
    assert_eq!(report.store_hits.len(), 4, "{:?}", report.store_hits);
    assert!(report.was_store_hit("a") && report.was_store_hit("d"));
    assert_eq!(export_pids(&cold), warm_pids);

    // The decision explains itself as a store hit wrapping the verdict
    // that would have compiled.
    let d = report.decision_for("a").unwrap();
    assert_eq!(d.kind(), "store_hit");
    assert!(!d.requires_recompile());
    assert!(d.to_string().contains("from store"), "{d}");

    // And the rehydrated program still links and executes.
    let (_, env) = cold.execute(&p).unwrap();
    assert_eq!(env.len(), 4);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn parallel_cold_session_rebuild_hits_the_store() {
    let root = temp_store("cold-par");
    let store = Arc::new(Store::open(&root).unwrap());
    let p = chain_project();

    // Warm in parallel, rebuild cold in parallel: dependents of
    // store-hit units must rehydrate from the freshly fetched bins.
    let mut warm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    warm.build_with_jobs(&p, 4).unwrap();
    let warm_pids = export_pids(&warm);

    let mut cold = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = cold.build_with_jobs(&p, 4).unwrap();
    assert!(report.recompiled.is_empty(), "{:?}", report.recompiled);
    assert_eq!(report.store_hits.len(), 4);
    assert_eq!(export_pids(&cold), warm_pids);
    let (_, env) = cold.execute_with_jobs(&p, 4).unwrap();
    assert_eq!(env.len(), 4);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn an_edit_publishes_the_new_object_and_leaves_the_old() {
    let root = temp_store("edit");
    let store = Arc::new(Store::open(&root).unwrap());
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = 1 end");

    let mut irm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    irm.build(&p).unwrap();
    assert_eq!(store.stats().unwrap().objects, 1);

    // Body edit: new source pid, new cache key, second object.
    p.edit("a", "structure A = struct val x = 2 end").unwrap();
    irm.build(&p).unwrap();
    assert_eq!(store.stats().unwrap().objects, 2);

    // Reverting hits the original object instead of compiling.
    p.edit("a", "structure A = struct val x = 1 end").unwrap();
    let report = irm.build(&p).unwrap();
    assert!(report.was_store_hit("a"), "{:?}", report.decisions);
    assert_eq!(store.stats().unwrap().objects, 2);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn same_source_under_a_different_unit_name_is_rejected_not_served() {
    let root = temp_store("stem");
    let store = Arc::new(Store::open(&root).unwrap());

    let mut p1 = Project::new();
    p1.add("a", "structure A = struct val x = 1 end");
    let mut irm1 = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    irm1.build(&p1).unwrap();

    // Identical source text under a different file stem maps to the
    // same cache key; the fetched object names the wrong unit and must
    // be rejected, falling back to an ordinary compile.
    let mut p2 = Project::new();
    p2.add("c", "structure A = struct val x = 1 end");
    let mut irm2 = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = irm2.build(&p2).unwrap();
    assert!(report.store_hits.is_empty(), "{:?}", report.store_hits);
    assert!(report.was_recompiled("c"));
    assert_eq!(irm2.bin("c").unwrap().unit.name.as_str(), "c");
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn corrupt_store_object_is_quarantined_and_the_unit_recompiles() {
    let root = temp_store("corrupt");
    let store = Arc::new(Store::open(&root).unwrap());
    let p = chain_project();

    let mut warm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    warm.build(&p).unwrap();
    let warm_pids = export_pids(&warm);

    // Flip a byte deep in every object's payload.
    let mut flipped = 0;
    for fan in std::fs::read_dir(root.join("objects")).unwrap() {
        for obj in std::fs::read_dir(fan.unwrap().path()).unwrap() {
            let path = obj.unwrap().path();
            let mut bytes = std::fs::read(&path).unwrap();
            let last = bytes.len() - 1;
            bytes[last] ^= 0xFF;
            std::fs::write(&path, bytes).unwrap();
            flipped += 1;
        }
    }
    assert_eq!(flipped, 4);

    // A cold session sees only digest mismatches: each object is
    // quarantined, every unit recompiles, and the results (and pids)
    // are exactly what the warm session produced.
    let mut cold = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = cold.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 4, "{:?}", report.decisions);
    assert!(report.store_hits.is_empty());
    assert_eq!(export_pids(&cold), warm_pids);

    let stats = store.stats().unwrap();
    assert_eq!(stats.quarantined, 4);
    // The recompiles re-published clean objects under the same keys.
    assert_eq!(stats.objects, 4);
    let verify = store.verify().unwrap();
    assert!(verify.corrupt.is_empty(), "{:?}", verify.corrupt);
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn store_survives_cross_project_sharing() {
    let root = temp_store("share");
    let store = Arc::new(Store::open(&root).unwrap());

    // Two distinct projects share a common `util` unit (same text, same
    // stem). The second project's util build is a store hit even though
    // the projects never shared a bin directory.
    let mut p1 = Project::new();
    p1.add("util", "structure Util = struct fun inc x = x + 1 end");
    p1.add("app1", "structure App1 = struct val v = Util.inc 1 end");
    let mut irm1 = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    irm1.build(&p1).unwrap();

    let mut p2 = Project::new();
    p2.add("util", "structure Util = struct fun inc x = x + 1 end");
    p2.add("app2", "structure App2 = struct val v = Util.inc 2 end");
    let mut irm2 = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let report = irm2.build(&p2).unwrap();
    assert!(report.was_store_hit("util"), "{:?}", report.decisions);
    assert!(report.was_recompiled("app2"));
    assert_eq!(
        irm1.bin("util").unwrap().unit.export_pid,
        irm2.bin("util").unwrap().unit.export_pid
    );
    std::fs::remove_dir_all(&root).ok();
}

#[test]
fn store_hit_bins_persist_and_satisfy_the_next_build() {
    let root = temp_store("persist");
    let bins = temp_store("persist-bins");
    let store = Arc::new(Store::open(&root).unwrap());
    let p = chain_project();

    let mut warm = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    warm.build(&p).unwrap();

    // Cold session: all store hits; the hits are dirty, so save_bins
    // writes them out...
    let mut cold = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    cold.build(&p).unwrap();
    cold.save_bins(&bins).unwrap();

    // ...and a third session loads them and needs neither compiles nor
    // store fetches.
    let mut third = Irm::with_store(Strategy::Cutoff, Arc::clone(&store));
    let outcome = third.load_bins(&bins).unwrap();
    assert_eq!(outcome.loaded, 4);
    let report = third.build(&p).unwrap();
    assert!(report.recompiled.is_empty());
    assert!(report.store_hits.is_empty());
    assert_eq!(report.reused.len(), 4);
    std::fs::remove_dir_all(&root).ok();
    std::fs::remove_dir_all(&bins).ok();
}
