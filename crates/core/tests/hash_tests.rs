//! Intrinsic-pid hashing: determinism, alpha-conversion of provisional
//! pids, sensitivity to exactly the interface and nothing else.

use smlsc_core::hash_exports;
use smlsc_ids::Symbol;
use smlsc_statics::elab::{elaborate_unit, ImportEnv, ImportedUnit};

fn export_pid(unit_name: &str, src: &str) -> smlsc_ids::Pid {
    let ast = smlsc_syntax::parse_unit(src).unwrap();
    let u = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    hash_exports(Symbol::intern(unit_name), &u.exports)
        .unwrap()
        .export_pid
}

#[test]
fn recursive_datatypes_hash_deterministically() {
    let src = "structure T = struct
                 datatype t = Leaf | Node of t * t
                 and u = U of t
               end";
    assert_eq!(export_pid("a", src), export_pid("a", src));
}

#[test]
fn provisional_pids_alpha_convert_over_stamps() {
    // The same interface elaborated twice gets entirely different session
    // stamps; the hash must not see them.  (Each elaboration allocates
    // fresh stamps from the global counter.)
    let src = "structure A = struct
                 datatype d = D of int
                 type alias = d list
                 fun f (x : alias) = x
               end";
    let p1 = export_pid("u", src);
    // Burn some stamps in between to shift the counter.
    let _ = export_pid("other", "structure Z = struct datatype q = Q end");
    let p2 = export_pid("u", src);
    assert_eq!(p1, p2);
}

#[test]
fn binding_order_is_part_of_the_interface() {
    // Order determines the runtime record layout, so it must be hashed.
    let a = export_pid("u", "structure A = struct val x = 1 val y = 2 end");
    let b = export_pid("u", "structure A = struct val y = 2 val x = 1 end");
    assert_ne!(a, b);
}

#[test]
fn structure_names_are_part_of_the_interface() {
    let a = export_pid("u", "structure A = struct val x = 1 end");
    let b = export_pid("u", "structure B = struct val x = 1 end");
    assert_ne!(a, b);
}

#[test]
fn export_pid_is_independent_of_unit_name() {
    // The *export* pid is interface-only; the unit name enters only the
    // derived entity pids.
    let src = "structure A = struct val x = 1 end";
    assert_eq!(export_pid("u1", src), export_pid("u2", src));
}

#[test]
fn entity_pids_depend_on_unit_name() {
    let src = "structure A = struct datatype d = D end";
    let ast = smlsc_syntax::parse_unit(src).unwrap();
    let u1 = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    let u2 = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    hash_exports(Symbol::intern("one"), &u1.exports).unwrap();
    hash_exports(Symbol::intern("two"), &u2.exports).unwrap();
    let d1 = u1
        .exports
        .str(Symbol::intern("A"))
        .unwrap()
        .bindings
        .tycon(Symbol::intern("d"))
        .unwrap()
        .entity_pid
        .get()
        .unwrap();
    let d2 = u2
        .exports
        .str(Symbol::intern("A"))
        .unwrap()
        .bindings
        .tycon(Symbol::intern("d"))
        .unwrap()
        .entity_pid
        .get()
        .unwrap();
    assert_ne!(d1, d2, "identical interfaces, distinct generative entities");
}

#[test]
fn hashing_is_idempotent_in_effect() {
    let src = "structure A = struct datatype d = D of int val v = D 3 end";
    let ast = smlsc_syntax::parse_unit(src).unwrap();
    let u = elaborate_unit(&ast, &ImportEnv::empty()).unwrap();
    let first = hash_exports(Symbol::intern("u"), &u.exports).unwrap();
    assert!(first.new_entities >= 2, "A and d at least");
    // Second pass: every entity already carries a pid; the traversal now
    // hashes them as external references, and nothing is reassigned.
    let second = hash_exports(Symbol::intern("u"), &u.exports).unwrap();
    assert_eq!(second.new_entities, 0);
}

#[test]
fn reexported_entities_keep_their_pids() {
    // B re-exports A's datatype: the tycon keeps A's entity pid, so B's
    // hash references it externally (and changing B's body never touches
    // A's entity identity).
    let a_ast = smlsc_syntax::parse_unit("structure A = struct datatype d = D end").unwrap();
    let a = elaborate_unit(&a_ast, &ImportEnv::empty()).unwrap();
    hash_exports(Symbol::intern("a"), &a.exports).unwrap();
    let d_pid = a
        .exports
        .str(Symbol::intern("A"))
        .unwrap()
        .bindings
        .tycon(Symbol::intern("d"))
        .unwrap()
        .entity_pid
        .get()
        .unwrap();

    let imports = ImportEnv {
        units: vec![ImportedUnit {
            name: Symbol::intern("a"),
            exports: a.exports.clone(),
        }],
        shadowing: false,
    };
    let b_ast = smlsc_syntax::parse_unit("structure B = struct structure Re = A end").unwrap();
    let b = elaborate_unit(&b_ast, &imports).unwrap();
    hash_exports(Symbol::intern("b"), &b.exports).unwrap();
    let re_d_pid = b
        .exports
        .str(Symbol::intern("B"))
        .unwrap()
        .bindings
        .str(Symbol::intern("Re"))
        .unwrap()
        .bindings
        .tycon(Symbol::intern("d"))
        .unwrap()
        .entity_pid
        .get()
        .unwrap();
    assert_eq!(d_pid, re_d_pid, "re-export preserves entity identity");
}

#[test]
fn signature_flexibility_is_hashed() {
    // `type t` (flexible) vs `type t = int` (manifest) are different
    // interfaces even though both expose a type named t.
    let a = export_pid(
        "u",
        "signature S = sig type t end
         structure D = struct end",
    );
    let b = export_pid(
        "u",
        "signature S = sig type t = int end
         structure D = struct end",
    );
    assert_ne!(a, b);
}

#[test]
fn functor_parameter_interfaces_are_hashed() {
    let a = export_pid(
        "u",
        "functor F (X : sig val n : int end) = struct val m = X.n end",
    );
    let b = export_pid(
        "u",
        "functor F (X : sig val n : string end) = struct val m = X.n end",
    );
    assert_ne!(a, b);
}

#[test]
fn opaque_and_transparent_ascription_hash_differently() {
    let t = export_pid(
        "u",
        "structure A : sig type t val mk : int -> t end =
           struct type t = int fun mk x = x end",
    );
    let o = export_pid(
        "u",
        "structure A :> sig type t val mk : int -> t end =
           struct type t = int fun mk x = x end",
    );
    assert_ne!(t, o, "t = int is visible only transparently");
}
