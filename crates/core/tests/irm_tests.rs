//! Integration tests of the compilation manager: cutoff vs. baselines,
//! bin persistence, type-safe linkage, and the interactive session.

use smlsc_core::irm::{Irm, Project, Strategy};
use smlsc_core::session::Session;
use smlsc_core::unit::BinFile;
use smlsc_core::{compile_unit, CoreError};
use smlsc_ids::{Pid, Symbol};

fn chain_project() -> Project {
    // a <- b <- c <- d : a linear dependency chain.
    let mut p = Project::new();
    p.add(
        "a",
        "structure A = struct fun f x = x + 1 val base = 10 end",
    );
    p.add("b", "structure B = struct val y = A.f A.base end");
    p.add("c", "structure C = struct val z = B.y * 2 end");
    p.add("d", "structure D = struct val w = C.z + 1 end");
    p
}

#[test]
fn initial_build_compiles_everything_in_topo_order() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let p = chain_project();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 4);
    assert!(report.reused.is_empty());
    let names: Vec<&str> = report.order.iter().map(|s| s.as_str()).collect();
    assert_eq!(names, vec!["a", "b", "c", "d"]);
}

#[test]
fn noop_rebuild_compiles_nothing() {
    for strategy in [Strategy::Cutoff, Strategy::Timestamp, Strategy::Classical] {
        let mut irm = Irm::new(strategy);
        let p = chain_project();
        irm.build(&p).unwrap();
        let report = irm.build(&p).unwrap();
        assert!(
            report.recompiled.is_empty(),
            "{strategy}: {:?}",
            report.recompiled
        );
    }
}

#[test]
fn comment_edit_cutoff_recompiles_only_the_edited_unit() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    p.edit(
        "a",
        "(* a helpful comment *) structure A = struct fun f x = x + 1 val base = 10 end",
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled, vec![Symbol::intern("a")]);
    assert_eq!(report.reused.len(), 3);
}

#[test]
fn comment_edit_timestamp_cascades() {
    let mut irm = Irm::new(Strategy::Timestamp);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    p.edit(
        "a",
        "(* a helpful comment *) structure A = struct fun f x = x + 1 val base = 10 end",
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 4, "make rebuilds the world");
}

#[test]
fn body_edit_cutoff_stops_at_the_edited_unit() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    // f's behaviour changes but its type does not.
    p.edit(
        "a",
        "structure A = struct fun f x = x + 100 val base = 10 end",
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled, vec![Symbol::intern("a")]);
}

#[test]
fn body_edit_classical_cascades() {
    let mut irm = Irm::new(Strategy::Classical);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    p.edit(
        "a",
        "structure A = struct fun f x = x + 100 val base = 10 end",
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 4);
}

#[test]
fn interface_edit_recompiles_direct_dependents() {
    for strategy in [Strategy::Cutoff, Strategy::Timestamp, Strategy::Classical] {
        let mut irm = Irm::new(strategy);
        let mut p = chain_project();
        irm.build(&p).unwrap();
        // A new export — an interface change to a.
        p.edit(
            "a",
            r#"structure A = struct fun f x = x + 1 val base = 10 val extra = "new" end"#,
        )
        .unwrap();
        let report = irm.build(&p).unwrap();
        match strategy {
            // b sees a changed import pid and recompiles; b's own
            // interface is unchanged, so the cascade is cut off there.
            Strategy::Cutoff => {
                assert_eq!(report.recompiled.len(), 2, "cutoff: a and b only")
            }
            // The baselines rebuild the whole downstream chain.
            Strategy::Timestamp | Strategy::Classical => {
                assert_eq!(report.recompiled.len(), 4, "{strategy}")
            }
        }
    }
}

#[test]
fn type_propagating_interface_edit_cascades_even_under_cutoff() {
    // b re-exports a's type, so changing it changes b's interface too,
    // and the cascade legitimately continues to c.
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = Project::new();
    p.add("a", "structure A = struct val v = 1 end");
    p.add("b", "structure B = struct val w = A.v end");
    p.add("c", "structure C = struct val u = B.w end");
    irm.build(&p).unwrap();
    // v : int becomes v : string; the new type flows through b's
    // inferred interface into c.
    p.edit("a", r#"structure A = struct val v = "s" end"#)
        .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 3, "{:?}", report.recompiled);
}

#[test]
fn touch_rebuilds_under_make_but_not_cutoff() {
    let mut make = Irm::new(Strategy::Timestamp);
    let mut cutoff = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    make.build(&p).unwrap();
    cutoff.build(&p).unwrap();
    p.touch("b").unwrap();
    let make_report = make.build(&p).unwrap();
    let cutoff_report = cutoff.build(&p).unwrap();
    // make: b plus its dependents c, d.
    assert_eq!(make_report.recompiled.len(), 3);
    // cutoff: the source digest is unchanged; nothing to do.
    assert!(cutoff_report.recompiled.is_empty());
}

#[test]
fn cutoff_resumes_cascade_when_interfaces_really_change_downstream() {
    // a's interface changes; b uses the changed part so b's interface
    // (via its inferred types) may or may not change — here b's exported
    // type stays int, so c is cut off after b recompiles.
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = Project::new();
    p.add("a", "structure A = struct val n = 1 end");
    p.add("b", "structure B = struct val m = A.n + 1 end");
    p.add("c", "structure C = struct val k = B.m + 1 end");
    irm.build(&p).unwrap();
    // Change a's interface: n : int stays but a new export appears.
    p.edit("a", "structure A = struct val n = 1 val extra = 2 end")
        .unwrap();
    let report = irm.build(&p).unwrap();
    // a recompiled (source changed); b recompiled (import pid changed);
    // b's own interface is unchanged, so c is cut off.
    assert!(report.was_recompiled("a"));
    assert!(report.was_recompiled("b"));
    assert!(!report.was_recompiled("c"), "cutoff should stop at b");
}

#[test]
fn diamond_dependencies_build_once() {
    let mut p = Project::new();
    p.add("base", "structure Base = struct val n = 1 end");
    p.add("left", "structure Left = struct val l = Base.n + 1 end");
    p.add("right", "structure Right = struct val r = Base.n + 2 end");
    p.add("top", "structure Top = struct val t = Left.l + Right.r end");
    let mut irm = Irm::new(Strategy::Cutoff);
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 4);
    let (_, env) = irm.execute(&p).unwrap();
    assert_eq!(env.len(), 4);
}

#[test]
fn execution_produces_correct_values_and_stays_correct_after_cutoff() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    let (_, env) = irm.execute(&p).unwrap();
    // D.w = ((f(10) = 11) * 2) + 1 = 23
    let d = env.get(Symbol::intern("d")).unwrap();
    let smlsc_dynamics::value::Value::Record(units) = &d.values else {
        panic!()
    };
    let smlsc_dynamics::value::Value::Record(fields) = &units[0] else {
        panic!()
    };
    assert_eq!(fields[0], smlsc_dynamics::value::Value::Int(23));

    // Body edit, rebuild (cutoff reuses b..d bins), re-execute: the new
    // behaviour must flow through even though b..d were not recompiled.
    p.edit(
        "a",
        "structure A = struct fun f x = x + 2 val base = 10 end",
    )
    .unwrap();
    let (report, env) = irm.execute(&p).unwrap();
    assert_eq!(report.recompiled.len(), 1);
    let d = env.get(Symbol::intern("d")).unwrap();
    let smlsc_dynamics::value::Value::Record(units) = &d.values else {
        panic!()
    };
    let smlsc_dynamics::value::Value::Record(fields) = &units[0] else {
        panic!()
    };
    assert_eq!(fields[0], smlsc_dynamics::value::Value::Int(25));
}

#[test]
fn import_cycles_are_reported() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = B.y end");
    p.add("b", "structure B = struct val y = A.x end");
    let mut irm = Irm::new(Strategy::Cutoff);
    let err = irm.build(&p).unwrap_err();
    assert!(matches!(err, CoreError::ImportCycle(_)), "{err}");
}

#[test]
fn unresolved_imports_are_reported() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = Missing.y end");
    let mut irm = Irm::new(Strategy::Cutoff);
    let err = irm.build(&p).unwrap_err();
    assert!(matches!(err, CoreError::UnresolvedImport { .. }), "{err}");
}

#[test]
fn duplicate_exports_are_reported() {
    let mut p = Project::new();
    p.add("a", "structure X = struct val x = 1 end");
    p.add("b", "structure X = struct val x = 2 end");
    let mut irm = Irm::new(Strategy::Cutoff);
    let err = irm.build(&p).unwrap_err();
    assert!(matches!(err, CoreError::DuplicateExport { .. }), "{err}");
}

#[test]
fn type_errors_name_the_unit() {
    let mut p = Project::new();
    p.add("a", r#"structure A = struct val x = 1 + "s" end"#);
    let mut irm = Irm::new(Strategy::Cutoff);
    let err = irm.build(&p).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("`a`"), "{msg}");
}

#[test]
fn bins_persist_across_manager_instances() {
    let dir = std::env::temp_dir().join(format!("smlsc-bins-{}", std::process::id()));
    let p = chain_project();
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    irm.save_bins(&dir).unwrap();

    let mut irm2 = Irm::new(Strategy::Cutoff);
    let outcome = irm2.load_bins(&dir).unwrap();
    assert_eq!(outcome.loaded, 4);
    assert!(outcome.corrupt.is_empty());
    let report = irm2.build(&p).unwrap();
    assert!(
        report.recompiled.is_empty(),
        "loaded bins should satisfy cutoff: {:?}",
        report.recompiled
    );
    // And the loaded bins still execute.
    let (_, env) = irm2.execute(&p).unwrap();
    assert_eq!(env.len(), 4);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn makefile_bug_is_caught_by_the_type_safe_linker() {
    // The paper's §5 scenario: under timestamp-based building, clock skew
    // (or a missing makefile dependency) can leave a dependent's bin
    // stale after an interface change.  The type-safe linker refuses to
    // run the inconsistent program.
    let mut irm = Irm::new(Strategy::Timestamp);
    let mut p = Project::new();
    p.add("a", "structure A = struct val n = 1 end");
    p.add("b", "structure B = struct val m = A.n + 1 end");
    irm.build(&p).unwrap();
    // Interface change to a...
    p.edit("a", "structure A = struct val n = 1 val extra = 2 end")
        .unwrap();
    // ...while b's bin appears newer than everything (clock skew).
    let mut skewed: BinFile = irm.bin("b").unwrap().clone();
    skewed.mtime = u64::MAX;
    irm.inject_bin(skewed);
    let err = irm.execute(&p).unwrap_err();
    let CoreError::Link(e) = err else {
        panic!("expected a link error, got {err}")
    };
    assert!(e.to_string().contains("stale"), "{e}");

    // Under cutoff the same skew is harmless: mtimes are never consulted,
    // the changed import pid forces b's recompilation, and the program
    // links.
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = Project::new();
    p.add("a", "structure A = struct val n = 1 end");
    p.add("b", "structure B = struct val m = A.n + 1 end");
    irm.build(&p).unwrap();
    p.edit("a", "structure A = struct val n = 1 val extra = 2 end")
        .unwrap();
    let mut skewed: BinFile = irm.bin("b").unwrap().clone();
    skewed.mtime = u64::MAX;
    irm.inject_bin(skewed);
    assert!(irm.execute(&p).is_ok());
}

#[test]
fn export_pid_is_deterministic_across_sessions() {
    let src = "structure A = struct fun f x = x + 1 datatype d = D of int end";
    let one = compile_unit(Symbol::intern("a"), src, &[]).unwrap();
    let two = compile_unit(Symbol::intern("a"), src, &[]).unwrap();
    assert_eq!(one.unit.export_pid, two.unit.export_pid);
}

#[test]
fn export_pid_ignores_comments_and_bodies_but_sees_interfaces() {
    let base = compile_unit(
        Symbol::intern("a"),
        "structure A = struct fun f x = x + 1 end",
        &[],
    )
    .unwrap();
    let comment = compile_unit(
        Symbol::intern("a"),
        "(* hi *) structure A = struct fun f x = x + 1 end",
        &[],
    )
    .unwrap();
    let body = compile_unit(
        Symbol::intern("a"),
        "structure A = struct fun f x = x + 999 end",
        &[],
    )
    .unwrap();
    let iface = compile_unit(
        Symbol::intern("a"),
        "structure A = struct fun f x = x + 1 val g = 2 end",
        &[],
    )
    .unwrap();
    assert_eq!(base.unit.export_pid, comment.unit.export_pid);
    assert_eq!(base.unit.export_pid, body.unit.export_pid);
    assert_ne!(base.unit.export_pid, iface.unit.export_pid);
    // Source pids tell the edits apart.
    assert_ne!(base.unit.source_pid, comment.unit.source_pid);
}

#[test]
fn functor_interfaces_hash_stably() {
    let src = "signature S = sig type t val mk : int -> t end
               functor F (X : S) = struct val v = X.mk 1 end";
    let one = compile_unit(Symbol::intern("lib"), src, &[]).unwrap();
    let two = compile_unit(Symbol::intern("lib"), src, &[]).unwrap();
    assert_eq!(one.unit.export_pid, two.unit.export_pid);
}

#[test]
fn cross_unit_functor_project_executes() {
    let mut p = Project::new();
    p.add(
        "sorting",
        "signature PARTIAL_ORDER = sig
           type elem
           val less : elem * elem -> bool
         end
         signature SORT = sig
           type t
           val sort : t list -> t list
         end
         functor TopSort (P : PARTIAL_ORDER) : SORT = struct
           type t = P.elem
           fun insert (x, []) = [x]
             | insert (x, y :: ys) =
                 if P.less (x, y) then x :: y :: ys else y :: insert (x, ys)
           fun sort [] = []
             | sort (x :: xs) = insert (x, sort xs)
         end",
    );
    p.add(
        "factors",
        "structure Factors : PARTIAL_ORDER = struct
           type elem = int
           fun less (i, j) = (j mod i) = 0
         end",
    );
    p.add(
        "fsort",
        "structure FSort : SORT = TopSort(Factors)
         structure Demo = struct
           val sorted = FSort.sort [9, 3, 27]
         end",
    );
    let mut irm = Irm::new(Strategy::Cutoff);
    let (_, env) = irm.execute(&p).unwrap();
    assert_eq!(env.len(), 3);

    // Editing TopSort's insert strategy (a body change) must not
    // recompile factors or fsort.
    let mut p2 = p.clone();
    p2.edit(
        "sorting",
        "signature PARTIAL_ORDER = sig
           type elem
           val less : elem * elem -> bool
         end
         signature SORT = sig
           type t
           val sort : t list -> t list
         end
         functor TopSort (P : PARTIAL_ORDER) : SORT = struct
           type t = P.elem
           fun insert (x, []) = [x]
             | insert (x, y :: ys) =
                 if P.less (y, x) then y :: insert (x, ys) else x :: y :: ys
           fun sort [] = []
             | sort (x :: xs) = insert (x, sort xs)
         end",
    )
    .unwrap();
    let report = irm.build(&p2).unwrap();
    assert_eq!(report.recompiled.len(), 1, "{:?}", report.recompiled);
}

// ----- rebuild decisions (the --explain record) --------------------------

/// The `(unit, kind)` pairs of a report, for exact sequence assertions.
fn kinds(report: &smlsc_core::BuildReport) -> Vec<(String, &'static str)> {
    report.decision_kinds()
}

fn pairs(v: &[(&str, &'static str)]) -> Vec<(String, &'static str)> {
    v.iter().map(|(n, k)| ((*n).to_string(), *k)).collect()
}

#[test]
fn decisions_on_first_build_are_all_new_unit() {
    for strategy in [Strategy::Cutoff, Strategy::Timestamp, Strategy::Classical] {
        let mut irm = Irm::new(strategy);
        let p = chain_project();
        let report = irm.build(&p).unwrap();
        assert_eq!(report.strategy, strategy);
        assert_eq!(
            kinds(&report),
            pairs(&[
                ("a", "new_unit"),
                ("b", "new_unit"),
                ("c", "new_unit"),
                ("d", "new_unit"),
            ]),
            "{strategy}"
        );
    }
}

#[test]
fn comment_edit_decision_sequences_per_strategy() {
    let edit = "(* a helpful comment *) structure A = struct fun f x = x + 1 val base = 10 end";
    let expect = |strategy| match strategy {
        // The paper's cutoff: a's interface survives the recompile, so b
        // is cut off and c, d never even see a rebuilt import.
        Strategy::Cutoff => pairs(&[
            ("a", "source_changed"),
            ("b", "cutoff"),
            ("c", "reused"),
            ("d", "reused"),
        ]),
        // The baselines cascade to the end of the chain.
        Strategy::Timestamp | Strategy::Classical => pairs(&[
            ("a", "source_changed"),
            ("b", "dependency_rebuilt"),
            ("c", "dependency_rebuilt"),
            ("d", "dependency_rebuilt"),
        ]),
    };
    for strategy in [Strategy::Cutoff, Strategy::Timestamp, Strategy::Classical] {
        let mut irm = Irm::new(strategy);
        let mut p = chain_project();
        irm.build(&p).unwrap();
        p.edit("a", edit).unwrap();
        let report = irm.build(&p).unwrap();
        assert_eq!(kinds(&report), expect(strategy), "{strategy}");
    }
}

#[test]
fn comment_edit_cutoff_records_the_unchanged_export_pid() {
    use smlsc_core::RebuildDecision;
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    let a_pid = irm.bin("a").unwrap().unit.export_pid;
    p.edit(
        "a",
        "(* a helpful comment *) structure A = struct fun f x = x + 1 val base = 10 end",
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    // The cutoff decision names the rebuilt import and proves its export
    // pid survived — the full causal chain of the paper's claim.
    let Some(RebuildDecision::CutOff { import, export_pid }) = report.decision_for("b") else {
        panic!("expected CutOff for b, got {:?}", report.decision_for("b"));
    };
    assert_eq!(import, "a");
    assert_eq!(*export_pid, a_pid.to_string());
    assert_eq!(irm.bin("a").unwrap().unit.export_pid, a_pid);
}

#[test]
fn interface_edit_decision_cascade_under_cutoff() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    // A new export: a's interface (and export pid) changes; b must see
    // the changed import pid; b's own interface survives, so c is cut
    // off and d is untouched.
    p.edit(
        "a",
        r#"structure A = struct fun f x = x + 1 val base = 10 val extra = "new" end"#,
    )
    .unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(
        kinds(&report),
        pairs(&[
            ("a", "source_changed"),
            ("b", "import_pid_changed"),
            ("c", "cutoff"),
            ("d", "reused"),
        ])
    );
}

#[test]
fn new_unit_decision_leaves_existing_units_reused() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    p.add("e", "structure E = struct val q = D.w + 1 end");
    let report = irm.build(&p).unwrap();
    assert_eq!(
        kinds(&report),
        pairs(&[
            ("a", "reused"),
            ("b", "reused"),
            ("c", "reused"),
            ("d", "reused"),
            ("e", "new_unit"),
        ])
    );
}

#[test]
fn deleting_a_leaf_drops_it_from_the_build() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    p.remove("d").unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(
        kinds(&report),
        pairs(&[("a", "reused"), ("b", "reused"), ("c", "reused")])
    );
    assert!(report.decision_for("d").is_none());
    assert!(p.remove("nope").is_err());
}

#[test]
fn deleting_a_dependency_is_an_unresolved_import() {
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    // d still imports C; removing c must fail the next build's import
    // resolution rather than silently reusing stale bins.
    p.remove("c").unwrap();
    let err = irm.build(&p).unwrap_err();
    assert!(matches!(err, CoreError::UnresolvedImport { .. }), "{err}");
}

#[test]
fn external_mtimes_thread_into_timestamp_builds() {
    // Sources stamped with "real" wall-clock mtimes (nanoseconds): the
    // bins written by the build must still come out newer, so a no-op
    // rebuild reuses everything even under the timestamp strategy.
    let now = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_nanos() as u64;
    let mut p = Project::new();
    p.add_with_mtime("a", "structure A = struct val n = 1 end", now - 1_000_000);
    p.add_with_mtime("b", "structure B = struct val m = A.n + 1 end", now);
    let mut irm = Irm::new(Strategy::Timestamp);
    irm.build(&p).unwrap();
    let report = irm.build(&p).unwrap();
    assert!(report.recompiled.is_empty(), "{:?}", kinds(&report));
    // An edit (virtual tick, now past the wall clock) still triggers.
    p.edit("a", "structure A = struct val n = 2 end").unwrap();
    let report = irm.build(&p).unwrap();
    assert_eq!(report.recompiled.len(), 2, "{:?}", kinds(&report));
}

#[test]
fn build_telemetry_counts_cutoffs_and_cache_traffic() {
    use smlsc_core::trace;
    let collector = trace::Collector::new();
    collector.install();
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = chain_project();
    irm.build(&p).unwrap();
    p.edit(
        "a",
        "(* a helpful comment *) structure A = struct fun f x = x + 1 val base = 10 end",
    )
    .unwrap();
    irm.build(&p).unwrap();
    trace::uninstall();

    assert_eq!(collector.counter(trace::names::UNITS_COMPILED), 5); // 4 + a
    assert_eq!(collector.counter(trace::names::CUTOFF_HITS), 1); // b
    assert_eq!(collector.counter(trace::names::UNITS_REUSED), 3); // b, c, d
                                                                  // Second build re-analyzed nothing: the comment-only edit to `a`
                                                                  // keeps its token digest, so even its dependency analysis hits.
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_MISSES), 4);
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_HITS), 4);
    // Per-unit compile phases produced histograms.
    assert_eq!(
        collector
            .histogram(trace::names::SPAN_PARSE)
            .unwrap()
            .count(),
        5
    );
    assert_eq!(
        collector
            .histogram(trace::names::SPAN_BUILD)
            .unwrap()
            .count(),
        2
    );
    // And the whole thing exports as a Chrome trace.
    let chrome = collector.chrome_trace_json();
    assert!(chrome.contains(r#""name":"irm.build""#), "{chrome}");
    assert!(chrome.contains(r#""name":"compile.elaborate""#), "{chrome}");
}

// ----- the Visible Compiler session -------------------------------------

#[test]
fn session_layers_and_shadows() {
    let mut s = Session::new();
    s.eval("structure A = struct val x = 1 end").unwrap();
    s.eval("structure B = struct val y = A.x + 1 end").unwrap();
    assert_eq!(s.show_value("B", "y").unwrap(), "2");
    // Redefining A shadows the old layer for *new* inputs...
    s.eval("structure A = struct val x = 100 end").unwrap();
    s.eval("structure C = struct val z = A.x + 1 end").unwrap();
    assert_eq!(s.show_value("C", "z").unwrap(), "101");
    // ...but B's already-evaluated value is unchanged (§3: no
    // re-initialization of existing bindings).
    assert_eq!(s.show_value("B", "y").unwrap(), "2");
}

#[test]
fn session_reports_bindings_and_pids() {
    let mut s = Session::new();
    let out = s
        .eval("structure M = struct fun id x = x val n = 3 end")
        .unwrap();
    assert_eq!(out.bindings.len(), 1);
    assert!(
        out.bindings[0].contains("structure M"),
        "{:?}",
        out.bindings
    );
    assert!(out.bindings[0].contains("n : int"), "{:?}", out.bindings);
    assert_ne!(out.export_pid, Pid::NULL);
    // Same interface evaluated again hashes identically even though the
    // unit name differs... pids are derived from unit names, but the
    // *export* pid is interface-only.
    let out2 = s
        .eval("structure M = struct fun id x = x val n = 3 end")
        .unwrap();
    assert_eq!(out.export_pid, out2.export_pid);
}

#[test]
fn session_errors_leave_state_intact() {
    let mut s = Session::new();
    s.eval("structure A = struct val x = 1 end").unwrap();
    assert!(s
        .eval("structure B = struct val y = A.missing end")
        .is_err());
    assert_eq!(s.len(), 1);
    // Still usable.
    s.eval("structure C = struct val z = A.x end").unwrap();
    assert_eq!(s.show_value("C", "z").unwrap(), "1");
}

#[test]
fn session_functors_and_exceptions() {
    let mut s = Session::new();
    s.eval(
        "signature S = sig val n : int end
         functor Add (X : S) = struct val m = X.n + 1 end",
    )
    .unwrap();
    s.eval("structure Base = struct val n = 41 end").unwrap();
    s.eval("structure R = Add(Base)").unwrap();
    assert_eq!(s.show_value("R", "m").unwrap(), "42");
    s.eval(
        r#"structure E = struct
             exception Nope
             val caught = (raise Nope) handle Nope => "ok"
           end"#,
    )
    .unwrap();
    assert_eq!(s.show_value("E", "caught").unwrap(), "\"ok\"");
}

#[test]
fn session_describe_lists_layers() {
    let mut s = Session::new();
    s.eval("structure A = struct val x = 1 end").unwrap();
    s.eval("signature S = sig val x : int end").unwrap();
    let desc = s.describe();
    assert!(desc.iter().any(|d| d.starts_with("structure A")));
    assert!(desc.iter().any(|d| d.starts_with("signature S")));
}

#[test]
fn primitive_values_work_end_to_end() {
    let mut s = Session::new();
    s.load_stdlib().unwrap();
    s.eval(
        r#"structure P = struct
             val shown = Int.toString ~42
             val n = Str.size "hello"
             val joined = Str.concatWith ", " (List.map Int.toString [1, 2, 3])
             (* primitives are first-class values too *)
             val lens = List.map size ["a", "bb", "ccc"]
           end"#,
    )
    .unwrap();
    assert_eq!(s.show_value("P", "shown").unwrap(), "\"~42\"");
    assert_eq!(s.show_value("P", "n").unwrap(), "5");
    assert_eq!(s.show_value("P", "joined").unwrap(), "\"1, 2, 3\"");
    assert_eq!(s.show_value("P", "lens").unwrap(), "[1, 2, 3]");
}

#[test]
fn primitives_survive_bin_roundtrip() {
    // A structure re-exporting a primitive pickles (KIND_PRIM) and comes
    // back usable from the bin cache.
    let dir = std::env::temp_dir().join(format!("smlsc-prim-{}", std::process::id()));
    let mut p = Project::new();
    p.add(
        "lib",
        "structure Lib = struct val toS = itos val strLen = size end",
    );
    p.add(
        "use",
        r#"structure Use = struct val s = Lib.toS 7 val n = Lib.strLen "abc" end"#,
    );
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    irm.save_bins(&dir).unwrap();
    let mut irm2 = Irm::new(Strategy::Cutoff);
    irm2.load_bins(&dir).unwrap();
    let report = irm2.build(&p).unwrap();
    assert!(report.recompiled.is_empty(), "{:?}", report.recompiled);
    let (_, env) = irm2.execute(&p).unwrap();
    assert_eq!(env.len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn session_loads_compiled_units_through_the_irm() {
    // §6's future work, implemented: the interactive loop consumes bin
    // files rather than re-elaborating source.
    let mut p = Project::new();
    p.add("lib", "structure Lib = struct fun triple x = x * 3 end");
    p.add("app", "structure App = struct val base = Lib.triple 5 end");
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut s = Session::new();
    let order = s.load_compiled(&mut irm, &p).unwrap();
    assert_eq!(order.len(), 2);
    assert_eq!(s.len(), 2);
    // The loaded statenvs are fully usable interactively.
    s.eval("structure More = struct val v = Lib.triple App.base end")
        .unwrap();
    assert_eq!(s.show_value("More", "v").unwrap(), "45");

    // Edit the library body; reload reuses what cutoff allows and the
    // fresh layers shadow the stale ones.
    p.edit("lib", "structure Lib = struct fun triple x = x * 3 + 1 end")
        .unwrap();
    let mut s2 = Session::new();
    let _ = s2.load_compiled(&mut irm, &p).unwrap();
    s2.eval("structure Check = struct val v = Lib.triple 5 end")
        .unwrap();
    assert_eq!(s2.show_value("Check", "v").unwrap(), "16");
}

#[test]
fn session_load_compiled_uses_cached_bins() {
    let mut p = Project::new();
    p.add("a", "structure A = struct val x = 1 end");
    let mut irm = Irm::new(Strategy::Cutoff);
    irm.build(&p).unwrap();
    // The session load triggers no recompilation.
    let mut s = Session::new();
    s.load_compiled(&mut irm, &p).unwrap();
    let report = irm.build(&p).unwrap();
    assert!(report.recompiled.is_empty());
    assert_eq!(s.show_value("A", "x").unwrap(), "1");
}

#[test]
fn session_step_limit_stops_runaway_recursion() {
    // The interpreter recurses on the host stack, so the guard needs an
    // adequately sized stack to trip cleanly (callers of
    // `set_step_limit` run their sessions on real threads, not 2 MiB
    // test threads).
    std::thread::Builder::new()
        .stack_size(256 * 1024 * 1024)
        .spawn(|| {
            let mut s = Session::new();
            s.set_step_limit(100_000);
            let err = s
                .eval(
                    "structure Loop = struct fun spin (x : int) : int = spin x val v = spin 0 end",
                )
                .unwrap_err();
            let msg = err.to_string();
            assert!(
                msg.contains("step limit") || msg.contains("depth limit"),
                "{msg}"
            );
            // The session is still usable afterwards.
            s.eval("structure Ok = struct val x = 1 end").unwrap();
            assert_eq!(s.show_value("Ok", "x").unwrap(), "1");
        })
        .unwrap()
        .join()
        .unwrap();
}

#[test]
fn comment_only_edit_keeps_the_cached_dependency_analysis() {
    use smlsc_core::trace;
    let collector = trace::Collector::new();
    collector.install();
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = Project::new();
    p.add("a", "structure A = struct val n = 1 end");
    p.add("b", "structure B = struct val m = A.n end");
    irm.build(&p).unwrap();
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_MISSES), 2);

    // A comment-only edit changes the source pid but not the token
    // stream: the *analysis* is served from cache (`a` by token digest,
    // `b` by source pid), even though `a` itself still recompiles.
    p.edit("a", "(* tweak *) structure A = struct val n = 1 end")
        .unwrap();
    let report = irm.build(&p).unwrap();
    trace::uninstall();
    assert!(report.was_recompiled("a"));
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_MISSES), 2);
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_HITS), 2);
}

#[test]
fn import_adding_edit_invalidates_the_cached_dependency_analysis() {
    use smlsc_core::trace;
    let collector = trace::Collector::new();
    collector.install();
    let mut irm = Irm::new(Strategy::Cutoff);
    let mut p = Project::new();
    p.add("a", "structure A = struct val n = 1 end");
    p.add("c", "structure C = struct val k = 5 end");
    p.add("b", "structure B = struct val m = A.n end");
    irm.build(&p).unwrap();
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_MISSES), 3);

    // Adding a reference to `C` changes the token stream: `b` must be
    // re-analyzed (one fresh miss) and the new import edge is live.
    p.edit("b", "structure B = struct val m = A.n + C.k end")
        .unwrap();
    irm.build(&p).unwrap();
    assert_eq!(collector.counter(trace::names::DEPS_CACHE_MISSES), 4);
    let imports: Vec<&str> = irm
        .bin_meta("b")
        .unwrap()
        .imports
        .iter()
        .map(|i| i.unit.as_str())
        .collect();
    assert!(imports.contains(&"c"), "{imports:?}");

    // ... and the edge really is live: an interface change to `c` now
    // recompiles `b`.
    p.edit("c", "structure C = struct val k = 5 val extra = 1 end")
        .unwrap();
    let report = irm.build(&p).unwrap();
    trace::uninstall();
    assert!(report.was_recompiled("b"), "{:?}", report.decisions);
}
